"""Superblock (translated-block) execution engine for the emulator hot path.

The stepping interpreter in :mod:`repro.emulator.machine` pays Python
dispatch cost on every instruction: a decode-cache lookup, a handler
dispatch, generic operand evaluation, and a :meth:`_Costing.charge` call.
This module predecodes straight-line instruction runs into immutable
:class:`Superblock` objects whose ops are *specialized closures* (direct
register-list access, precomputed immediates and branch targets) and
dispatches whole blocks from :meth:`Machine.run`.

Design rules (DESIGN.md §10, §15):

* a block ends at the first branch, trap instruction (``svc``/``brk``/
  ``hlt``), registered host entry, undecodable word, or page boundary —
  blocks never cross a page, so invalidation is page-exact;
* verified guard sequences named by the loader's ``guard_map`` are fused
  into a single op that performs both architectural effects and both cost
  updates in one dispatch;
* a block ending in the runtime-call idiom (``ldr x30, [x21, #n]``;
  ``blr x30`` — the rewriter's :func:`is_runtime_call_load` predicate)
  carries a fused ``rtcall`` closure; the dispatch loops execute it and
  hand control straight to the runtime's *springboard*
  (``machine.springboard``) instead of raising ``HostCallTrap``, and the
  springboard resumes translated execution inline when the scheduler
  allows (DESIGN.md §15);
* blocks chain: each block caches its observed fall-through and taken
  successors, validated by a ``valid`` flag plus start-pc check, so hot
  loops dispatch block-to-block without a host-entry check or cache
  lookup; invalidation clears ``valid``, which lazily unlinks every
  chain through the dead block;
* cycle accounting replicates the stepping interpreter's float operation
  order exactly, so cycle counts, trace timestamps, and metrics snapshots
  are bit-identical between engines;
* a block never overruns the remaining fuel: oversized blocks fall back
  to per-instruction stepping for the tail of the timeslice;
* the block cache invalidates on any mapping change (``mmap``/``munmap``/
  ``mprotect``/``share_region``/image load) via the
  :class:`~repro.memory.pages.PagedMemory` map observer, which also covers
  fork (the child's slot is freshly shared into).

The engine is *not* used when per-instruction observability is active:
any registered step probe (profiler, metrics, sampling tracer), a
process's ``step_mode`` flag, or ``engine="stepping"`` forces the
original interpreter, whose behaviour is unchanged.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..arm64.decoder import decode_word
from ..arm64.instructions import Instruction, access_bytes
from ..arm64.operands import Extended, Imm, Mem, POST_INDEX, PRE_INDEX, \
    Shifted, ShiftedImm, VecReg, canonical_condition
from ..arm64.registers import LR, Reg
from ..core.rewriter import is_runtime_call_load
from ..memory.pages import MemoryFault
from .cpu import MASK32, MASK64

__all__ = ["Superblock", "SuperblockEngine"]

#: Op kinds — the first element of every op tuple.  The execute loops
#: branch on these instead of unpacking a generic handler result.
K_SIMPLE = 0   # exec() -> None; no memory access, never taken
K_MEM = 1      # exec() -> address int; load/store, never taken
K_BRANCH = 2   # exec() -> taken bool; terminator
K_GENERIC = 3  # exec() -> (taken, mem_addr); original handler semantics
K_FUSED_MEM = 4     # guard add + load/store; exec() -> address
K_FUSED_BRANCH = 5  # guard add + br/blr/ret; exec() -> None, always taken
K_FUSED_SIMPLE = 6  # sp guard pair; exec() -> None

#: Costed blocks are compiled into specialized closures once they show
#: signs of re-execution; cold blocks stay on the interpretive loop so
#: straight-line code never pays the ~2ms/block codegen cost (measured:
#: threshold 8 compiles only the hot loop bodies of the Table-4 kernels
#: while 2 compiles every init block for no wall-clock gain).
_COMPILE_THRESHOLD = 8
#: Blocks larger than this stay interpretive: generated source for a
#: page-spanning straight-line run would cost more to compile than the
#: dispatch overhead it saves.
_COMPILE_MAX_OPS = 256

_TERMINATOR_BASES = frozenset([
    "b", "bl", "br", "blr", "ret", "cbz", "cbnz", "tbz", "tbnz",
    "svc", "brk", "hlt",
])

_UNSIGNED_LOADS = frozenset(["ldr", "ldrb", "ldrh", "ldur"])
_SIGNED_LOADS = {"ldrsb": 8, "ldrsh": 16, "ldrsw": 32}
_SIMPLE_STORES = frozenset(["str", "strb", "strh", "stur"])

#: Generic handlers that read ``cpu.pc`` (link registers, trap pcs).
#: Inside a block ``cpu.pc`` is stale, so their generic fallbacks are
#: wrapped to restore it first.  Every one of them is a terminator.
_PC_READING = frozenset(["bl", "blr", "svc", "brk", "hlt"])


def _pc_fix(cpu, pc, call):
    def run():
        cpu.pc = pc
        return call()
    return run


class Superblock:
    """A predecoded straight-line run of instructions.

    ``ops`` is a list of ``(kind, exec, pc, icost, lat, uses, defs,
    fused)`` tuples; ``count`` is the run's fuel cost (fused ops count
    two, a trailing trap instruction counts one for the attempt);
    ``next_pc`` is the fall-through address; ``end`` is the exclusive
    byte bound used for invalidation overlap checks.

    ``rtcall`` is the fused runtime-call tail (``ldr x30, [x21, #n]`` +
    ``blr x30``): ``(exec, ldr_pc, ldr_icost, ldr_lat, ldr_uses,
    ldr_defs, blr_icost, blr_lat, blr_uses, blr_defs)``, or ``None``.
    The pair is kept out of ``ops`` so the per-op dispatch stays
    branch-free; its two instructions are included in ``count``.

    ``link_fall``/``link_taken`` are the block-chaining inline caches
    (observed successor blocks); ``valid`` is cleared on invalidation so
    stale links are rejected by the dispatch loops without needing to
    find and unlink every predecessor.

    ``fn`` is the block's specialized closure, compiled by
    :meth:`SuperblockEngine._compile_block` once ``hits`` shows the
    block re-executing under the cost model; None until then (and
    forever, on the uncosted path).
    """

    __slots__ = ("start", "end", "ops", "count", "next_pc", "rtcall",
                 "valid", "link_fall", "link_taken", "fn", "hits")

    def __init__(self, start: int, end: int, ops: list, count: int,
                 next_pc: int, rtcall: Optional[tuple] = None):
        self.start = start
        self.end = end
        self.ops = ops
        self.count = count
        self.next_pc = next_pc
        self.rtcall = rtcall
        self.valid = True
        self.link_fall: Optional["Superblock"] = None
        self.link_taken: Optional["Superblock"] = None
        self.fn = None
        self.hits = 0

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Superblock({self.start:#x}..{self.end:#x}, "
                f"{len(self.ops)} ops, fuel {self.count})")


class _BlockFault(Exception):
    """Carrier for partial cost state when a compiled block traps.

    A compiled block keeps ``t_issue``/``t_done``/``n`` in locals for
    speed; when an op raises mid-block those partials must still be
    committed (exactly as the interpretive loop's ``finally`` would), so
    the generated code wraps any escaping exception with the state
    accumulated so far and the dispatch loop unwraps it.
    """

    __slots__ = ("t_issue", "t_done", "n", "exc")

    def __init__(self, t_issue, t_done, n, exc):
        self.t_issue = t_issue
        self.t_done = t_done
        self.n = n
        self.exc = exc


# ---------------------------------------------------------------------------
# Specialized op thunk factories.
#
# Every factory closes over the CPU register list (kept identity-stable by
# CpuState.restore) and precomputed constants; each replicates the exact
# architectural effect of the corresponding machine.py handler.
# ---------------------------------------------------------------------------

def _is_plain_gpr(reg) -> bool:
    return (isinstance(reg, Reg) and reg.is_gpr and not reg.is_zero
            and not reg.is_sp)


_COND_EVAL = {
    "eq": lambda cpu: cpu.z == 1,
    "ne": lambda cpu: cpu.z == 0,
    "cs": lambda cpu: cpu.c == 1,
    "cc": lambda cpu: cpu.c == 0,
    "mi": lambda cpu: cpu.n == 1,
    "pl": lambda cpu: cpu.n == 0,
    "vs": lambda cpu: cpu.v == 1,
    "vc": lambda cpu: cpu.v == 0,
    "hi": lambda cpu: cpu.c == 1 and cpu.z == 0,
    "ls": lambda cpu: not (cpu.c == 1 and cpu.z == 0),
    "ge": lambda cpu: cpu.n == cpu.v,
    "lt": lambda cpu: cpu.n != cpu.v,
    "gt": lambda cpu: cpu.z == 0 and cpu.n == cpu.v,
    "le": lambda cpu: not (cpu.z == 0 and cpu.n == cpu.v),
    "al": lambda cpu: True,
    "nv": lambda cpu: True,
}


def _t_add_imm(regs, d, a_i, b, width, sub):
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i] - b) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i] + b) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32) - b) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32) + b) & MASK32
    return run


def _t_add_reg(regs, d, a_i, b_i, width, sub):
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i] - regs[b_i]) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i] + regs[b_i]) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (regs[b_i] & MASK32)) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (regs[b_i] & MASK32)) & MASK32
    return run


def _t_add_uxtw(regs, d, a_i, w_i):
    """``add Xd, Xn, wM, uxtw`` — the LFI guard form, unfused."""
    def run():
        regs[d] = (regs[a_i] + (regs[w_i] & MASK32)) & MASK64
    return run


def _flag_thunk(cpu, regs, d, a_i, width, get_b, carry_in):
    """Shared flags body for adds/subs/cmp/cmn (b already inverted for
    subtraction).  Replicates Machine._set_add_flags exactly."""
    mask = (1 << width) - 1
    top = 1 << (width - 1)
    wrap = 1 << width
    if width == 64:
        def read_a():
            return regs[a_i]
    else:
        def read_a():
            return regs[a_i] & MASK32

    def run():
        a = read_a()
        b = get_b()
        raw = a + b + carry_in
        result = raw & mask
        cpu.n = 1 if result & top else 0
        cpu.z = 1 if result == 0 else 0
        cpu.c = 1 if raw > mask else 0
        sa = a - wrap if a & top else a
        sb = b - wrap if b & top else b
        sres = result - wrap if result & top else result
        cpu.v = 1 if (sa + sb + carry_in != sres) else 0
        if d is not None:
            regs[d] = result
    return run


def _t_addsub_flags_imm(cpu, regs, d, a_i, b, width, sub):
    mask = (1 << width) - 1
    if sub:
        b = (~b) & mask
        carry = 1
    else:
        b = b & mask
        carry = 0
    return _flag_thunk(cpu, regs, d, a_i, width, lambda: b, carry)


def _t_addsub_flags_reg(cpu, regs, d, a_i, b_i, width, sub):
    mask = (1 << width) - 1
    if width == 64:
        if sub:
            def get_b():
                return (~regs[b_i]) & mask
        else:
            def get_b():
                return regs[b_i]
    else:
        if sub:
            def get_b():
                return (~(regs[b_i] & MASK32)) & mask
        else:
            def get_b():
                return regs[b_i] & MASK32
    return _flag_thunk(cpu, regs, d, a_i, width, get_b, 1 if sub else 0)


def _t_mov_const(regs, d, const):
    def run():
        regs[d] = const
    return run


def _t_mov_reg(regs, d, s_i, width):
    if width == 64:
        def run():
            regs[d] = regs[s_i]
    else:
        def run():
            regs[d] = regs[s_i] & MASK32
    return run


def _t_movk(regs, d, keep, bits, width):
    if width == 64:
        def run():
            regs[d] = (regs[d] & keep) | bits
    else:
        def run():
            regs[d] = ((regs[d] & MASK32) & keep) | bits
    return run


def _t_logic_imm(regs, d, a_i, b, width, op):
    if width == 64:
        if op == "and":
            def run():
                regs[d] = regs[a_i] & b
        elif op == "orr":
            def run():
                regs[d] = regs[a_i] | b
        else:
            def run():
                regs[d] = regs[a_i] ^ b
    else:
        if op == "and":
            def run():
                regs[d] = (regs[a_i] & MASK32) & b
        elif op == "orr":
            def run():
                regs[d] = (regs[a_i] & MASK32) | b
        else:
            def run():
                regs[d] = (regs[a_i] & MASK32) ^ b
    return run


def _t_logic_reg(regs, d, a_i, b_i, width, op):
    if width == 64:
        if op == "and":
            def run():
                regs[d] = regs[a_i] & regs[b_i]
        elif op == "orr":
            def run():
                regs[d] = regs[a_i] | regs[b_i]
        else:
            def run():
                regs[d] = regs[a_i] ^ regs[b_i]
    else:
        if op == "and":
            def run():
                regs[d] = (regs[a_i] & regs[b_i]) & MASK32
        elif op == "orr":
            def run():
                regs[d] = (regs[a_i] | regs[b_i]) & MASK32
        else:
            def run():
                regs[d] = (regs[a_i] ^ regs[b_i]) & MASK32
    return run


def _t_shift_imm(regs, d, a_i, amount, width, op):
    mask = (1 << width) - 1
    if op == "lsl":
        if width == 64:
            def run():
                regs[d] = (regs[a_i] << amount) & MASK64
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32) << amount) & MASK32
    elif op == "lsr":
        if width == 64:
            def run():
                regs[d] = regs[a_i] >> amount
        else:
            def run():
                regs[d] = (regs[a_i] & MASK32) >> amount
    else:  # asr
        top = 1 << (width - 1)
        wrap = 1 << width

        def run():
            a = regs[a_i] if width == 64 else regs[a_i] & MASK32
            if a & top:
                a -= wrap
            regs[d] = (a >> amount) & mask
    return run


def _t_addsub_shifted(regs, d, a_i, b_i, amount, width, sub):
    """``add/sub Xd, Xn, Xm, lsl #k`` (array indexing in the FP kernels)."""
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i]
                           - ((regs[b_i] << amount) & MASK64)) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i]
                           + ((regs[b_i] << amount) & MASK64)) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (((regs[b_i] & MASK32) << amount)
                              & MASK32)) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (((regs[b_i] & MASK32) << amount)
                              & MASK32)) & MASK32
    return run


def _t_madd(regs, d, n_i, m_i, a_i, width, msub):
    mask = (1 << width) - 1
    if width == 64:
        if msub:
            def run():
                regs[d] = (regs[a_i] - regs[n_i] * regs[m_i]) & mask
        else:
            def run():
                regs[d] = (regs[a_i] + regs[n_i] * regs[m_i]) & mask
    else:
        if msub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (regs[n_i] & MASK32)
                           * (regs[m_i] & MASK32)) & mask
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (regs[n_i] & MASK32)
                           * (regs[m_i] & MASK32)) & mask
    return run


def _t_bitfield(regs, d, n_i, width, immr, imms, signed):
    """ubfm/sbfm with precomputed field geometry (lsr/lsl/ubfx aliases)."""
    mask = (1 << width) - 1
    if imms >= immr:
        length = imms - immr + 1
        rshift = immr
        shift = 0
    else:
        length = imms + 1
        rshift = 0
        shift = width - immr
    fmask = (1 << length) - 1
    sign_bit = 1 << (length - 1)
    sign_fill = mask & ~((1 << min(shift + length, width)) - 1)
    src64 = width == 64

    def run():
        src = regs[n_i] if src64 else regs[n_i] & MASK32
        field = (src >> rshift) & fmask
        result = (field << shift) & mask
        if signed and field & sign_bit:
            result |= sign_fill
        regs[d] = result
    return run


# -- scalar floating point factories ------------------------------------------

def _t_fp2(vregs, d, n_i, m_i, bits, op, b2f, f2b):
    """Scalar fadd/fsub/fmul with equal-width d/s operands."""
    vmask = (1 << bits) - 1
    if op == "fadd":
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           + b2f(vregs[m_i] & vmask, bits), bits)
    elif op == "fsub":
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           - b2f(vregs[m_i] & vmask, bits), bits)
    else:  # fmul
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           * b2f(vregs[m_i] & vmask, bits), bits)
    return run


def _t_fp3(vregs, d, n_i, m_i, a_i, bits, msub, b2f, f2b):
    """Scalar fmadd/fmsub (the FP kernels' hottest data op)."""
    vmask = (1 << bits) - 1
    if msub:
        def run():
            prod = b2f(vregs[n_i] & vmask, bits) \
                * b2f(vregs[m_i] & vmask, bits)
            vregs[d] = f2b(b2f(vregs[a_i] & vmask, bits) - prod, bits)
    else:
        def run():
            prod = b2f(vregs[n_i] & vmask, bits) \
                * b2f(vregs[m_i] & vmask, bits)
            vregs[d] = f2b(b2f(vregs[a_i] & vmask, bits) + prod, bits)
    return run


# -- vector integer factories -------------------------------------------------

def _t_vec3_bitwise(vregs, d, n_i, m_i, full_mask, op):
    """Lane-independent vector and/orr/eor collapse to one bitop."""
    if op == "and":
        def run():
            vregs[d] = (vregs[n_i] & vregs[m_i]) & full_mask
    elif op == "orr":
        def run():
            vregs[d] = (vregs[n_i] | vregs[m_i]) & full_mask
    else:  # eor
        def run():
            vregs[d] = (vregs[n_i] ^ vregs[m_i]) & full_mask
    return run


def _t_vec3_lanes(vregs, d, n_i, m_i, lanes, bits, op):
    """Lane-wise vector add/sub/mul over a same-arrangement triple."""
    mask = (1 << bits) - 1
    shifts = tuple(range(0, lanes * bits, bits))
    if op == "add":
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) + ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    elif op == "sub":
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) - ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    else:  # mul
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) * ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    return run


# -- memory op factories ------------------------------------------------------

def _t_load(regs, cpu, read, t, base_i, imm, size, signed_bits, tbits,
            sp_base):
    """Loads with a register+immediate address into a GPR target."""
    if signed_bits is None:
        if sp_base:
            def run():
                addr = (cpu.sp + imm) & MASK64
                regs[t] = int.from_bytes(read(addr, size), "little")
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                regs[t] = int.from_bytes(read(addr, size), "little")
                return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32
        if sp_base:
            def run():
                addr = (cpu.sp + imm) & MASK64
                raw = int.from_bytes(read(addr, size), "little")
                if raw & sign:
                    raw -= wrap
                regs[t] = raw & tmask
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                raw = int.from_bytes(read(addr, size), "little")
                if raw & sign:
                    raw -= wrap
                regs[t] = raw & tmask
                return addr
    return run


def _t_load_uxtw(regs, read, t, base_i, w_i, size, signed_bits, tbits):
    """``ldr Xt, [x21, wM, uxtw]`` — the zero-instruction guard mode."""
    if signed_bits is None:
        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_store(regs, cpu, write, t, base_i, imm, size, sp_base, zero_src):
    smask = (1 << (size * 8)) - 1
    if sp_base:
        if zero_src:
            data = (0).to_bytes(size, "little")

            def run():
                addr = (cpu.sp + imm) & MASK64
                write(addr, data)
                return addr
        else:
            def run():
                addr = (cpu.sp + imm) & MASK64
                write(addr, (regs[t] & smask).to_bytes(size, "little"))
                return addr
    else:
        if zero_src:
            data = (0).to_bytes(size, "little")

            def run():
                addr = (regs[base_i] + imm) & MASK64
                write(addr, data)
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                write(addr, (regs[t] & smask).to_bytes(size, "little"))
                return addr
    return run


def _t_store_uxtw(regs, write, t, base_i, w_i, size, zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_vload(vregs, regs, cpu, read, t, base_i, imm, size, vmask, sp_base):
    """FP/SIMD register load (``ldr d0, [x1, #8]`` and friends)."""
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
            return addr
    return run


def _t_vload_uxtw(vregs, regs, read, t, base_i, w_i, size, vmask):
    def run():
        addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
        vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
        return addr
    return run


def _t_vstore(vregs, regs, cpu, write, t, base_i, imm, size, vmask, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
            return addr
    return run


def _t_vstore_uxtw(vregs, regs, write, t, base_i, w_i, size, vmask):
    def run():
        addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
        write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
        return addr
    return run


def _t_ldp(regs, cpu, read, t1, t2, base_i, imm, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            regs[t1] = int.from_bytes(read(addr, 8), "little")
            regs[t2] = int.from_bytes(read(addr + 8, 8), "little")
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            regs[t1] = int.from_bytes(read(addr, 8), "little")
            regs[t2] = int.from_bytes(read(addr + 8, 8), "little")
            return addr
    return run


def _t_stp(regs, cpu, write, t1, t2, base_i, imm, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            write(addr, (regs[t1] & MASK64).to_bytes(8, "little"))
            write(addr + 8, (regs[t2] & MASK64).to_bytes(8, "little"))
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            write(addr, (regs[t1] & MASK64).to_bytes(8, "little"))
            write(addr + 8, (regs[t2] & MASK64).to_bytes(8, "little"))
            return addr
    return run


# -- branch factories ---------------------------------------------------------

def _t_b(cpu, target):
    def run():
        cpu.pc = target
        return True
    return run


def _t_bl(cpu, regs, target, link):
    def run():
        regs[30] = link
        cpu.pc = target
        return True
    return run


def _t_bcond(cpu, cond, target):
    holds = _COND_EVAL[cond]

    def run():
        if holds(cpu):
            cpu.pc = target
            return True
        return False
    return run


def _t_cb(cpu, regs, t_i, width, want_zero, target):
    if width == 64:
        def read_t():
            return regs[t_i]
    else:
        def read_t():
            return regs[t_i] & MASK32
    if want_zero:
        def run():
            if read_t() == 0:
                cpu.pc = target
                return True
            return False
    else:
        def run():
            if read_t() != 0:
                cpu.pc = target
                return True
            return False
    return run


def _t_tb(cpu, regs, t_i, bit, want_set, target):
    if want_set:
        def run():
            if (regs[t_i] >> bit) & 1:
                cpu.pc = target
                return True
            return False
    else:
        def run():
            if not ((regs[t_i] >> bit) & 1):
                cpu.pc = target
                return True
            return False
    return run


def _t_br(cpu, regs, t_i):
    def run():
        cpu.pc = regs[t_i] & MASK64
        return True
    return run


def _t_blr(cpu, regs, t_i, link):
    def run():
        target = regs[t_i] & MASK64
        regs[30] = link
        cpu.pc = target
        return True
    return run


def _t_rtcall(cpu, regs, read, base_i, imm, link):
    """``ldr x30, [x21, #n]`` + ``blr x30`` — the runtime-call pair (§4.4).

    Net architectural effect of executing both instructions: ``x30``
    holds the return address and ``pc`` the loaded entry point.  A fault
    in the table load raises before any register is written, exactly as
    the stepping ``ldr`` would.  Returns the table address for the
    dispatch loop's TLB/cache charging.
    """
    def run():
        addr = (regs[base_i] + imm) & MASK64
        target = int.from_bytes(read(addr, 8), "little")
        regs[30] = link
        cpu.pc = target
        return addr
    return run


def _t_trap(cpu, pc, exc_factory):
    def run():
        cpu.pc = pc
        raise exc_factory()
    return run


# -- fused guard factories ----------------------------------------------------

def _t_fused_guard_load(regs, read, g_d, g_s, t, imm, size, signed_bits,
                        tbits, base_i):
    """``add Xg, x21, wS, uxtw`` + ``ldr Xt, [Xg(, #imm)]``."""
    if signed_bits is None:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_fused_guard_store(regs, write, g_d, g_s, t, imm, size, base_i,
                         zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_fused_offset_load(regs, read, o_d, o_s, o_imm, o_sub, t, size,
                         signed_bits, tbits, base_i):
    """``add wD, wS, #imm`` + ``ldr Xt, [x21, wD, uxtw]`` (Table 3)."""
    if signed_bits is None:
        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_fused_offset_store(regs, write, o_d, o_s, o_imm, o_sub, t, size,
                          base_i, zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_fused_guard_branch(cpu, regs, g_d, g_s, base_i, link):
    """``add Xg, x21, wS, uxtw`` + ``br/blr/ret Xg`` (branch guard)."""
    if link is None:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            cpu.pc = g
    else:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            regs[30] = link
            cpu.pc = g
    return run


def _t_fused_sp_guard(cpu, regs, w_d, base_i):
    """``mov w22, wsp`` + ``add sp, x21, x22`` (sp guard pair)."""
    def run():
        w = cpu.sp & MASK32
        regs[w_d] = w
        cpu.sp = (regs[base_i] + w) & MASK64
    return run


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class SuperblockEngine:
    """Block cache + translator + block-dispatch loops for one Machine."""

    def __init__(self, machine):
        # Imported lazily: machine.py imports this module at its top.
        from . import machine as M
        self._M = M
        self.machine = machine
        self._blocks: Dict[int, Superblock] = {}
        config = getattr(machine, "engine_config", None)
        #: Whether the dispatch loops follow block successor links.
        self.chaining = config.chaining if config is not None else True
        #: Translation-cache flush threshold (None = unbounded).
        self.block_cache_cap = (config.block_cache_cap
                                if config is not None else None)
        #: Counters exposed for tests and diagnostics.
        self.translations = 0
        self.invalidations = 0
        self.chain_links = 0
        self.fused_calls = 0
        self.compiled_blocks = 0

    # -- cache management ---------------------------------------------------

    def invalidate_range(self, address: int, size: int) -> None:
        """Drop every block overlapping ``[address, address + size)``.

        Dropped blocks are also marked ``valid = False`` so chained
        predecessors reject their stale links on the next dispatch —
        invalidation unlinks chains without a reverse-edge index.
        """
        blocks = self._blocks
        if not blocks:
            return
        end = address + size
        dead = [start for start, block in blocks.items()
                if start < end and block.end > address]
        for start in dead:
            blocks.pop(start).valid = False
        if dead:
            self.invalidations += len(dead)

    def invalidate_all(self) -> None:
        self.invalidations += len(self._blocks)
        for block in self._blocks.values():
            block.valid = False
        self._blocks.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)

    def block_at(self, pc: int) -> Optional[Superblock]:
        return self._blocks.get(pc)

    # -- driving ------------------------------------------------------------

    def run(self, fuel: Optional[int]) -> None:
        """Run blocks until a trap; raises OutOfFuel when fuel runs out.

        Semantics match ``Machine.run``'s stepping loop exactly: with
        fuel ``n``, exactly ``n`` instructions retire (the ``n+1``-th may
        raise its trap first) and then ``OutOfFuel`` is raised.
        """
        machine = self.machine
        remaining = fuel if fuel is not None else (1 << 62)
        if remaining <= 0:
            raise self._M.OutOfFuel()
        if machine._costing is not None:
            remaining = self._run_costed(remaining)
        else:
            remaining = self._run_fast(remaining)
        # A block larger than the remaining fuel: fall back to stepping
        # for the tail of the slice, then report preemption.
        step = machine.step
        for _ in range(remaining):
            step()
        raise self._M.OutOfFuel()

    def _compile_block(self, block: Superblock):
        """Compile ``block.ops`` into one specialized straight-line closure.

        The interpretive costed loop pays per-op Python overhead on every
        execution: an 8-tuple unpack, a kind switch, and scoreboard loops
        over ``uses``/``defs``.  For a block that re-executes (a loop
        body) all of that is static, so it is unrolled here into
        generated source with every static quantity — issue costs,
        latencies, scoreboard keys, pcs, model miss charges — folded in
        as literals (``repr`` of a float round-trips exactly).  The
        generated function performs the *same float operations in the
        same order* as the interpretive loop, so cycle totals stay
        bit-identical; compilation is pure host-side speedup
        (DESIGN.md §15).

        Partial state on a mid-block trap is carried out via
        :class:`_BlockFault` so the dispatch loop commits exactly what
        the interpretive loop would have.  Returns None when the block
        is not worth compiling (empty or oversized ops list).
        """
        ops = block.ops
        if not ops or len(ops) > _COMPILE_MAX_OPS:
            return None
        machine = self.machine
        model = machine.model
        has_tlb = machine.tlb is not None
        has_l1 = machine.l1 is not None
        walk_f = model.tlb_walk_cycles * machine.tlb_walk_scale
        walk = repr(walk_f)
        walk_bw = repr(walk_f * model.tlb_walk_issue_fraction)
        l1_cyc = repr(model.l1_miss_cycles)
        l1_bw = repr(model.l1_miss_issue)
        l2_cyc = repr(model.l2_miss_cycles)
        l2_bw = repr(model.l2_miss_issue)
        tb = model.taken_branch_cost

        lines: List[str] = []
        emit = lines.append

        def tail(ind, uses, lat_expr, defs):
            # Everything after the issue charge: dep-chain start, result
            # latency, scoreboard writes, completion horizon.
            emit(f"{ind}start = t_issue")
            for key in uses:
                emit(f"{ind}t = ready_get({key!r})")
                emit(f"{ind}if t is not None and t > start:")
                emit(f"{ind}    start = t")
            emit(f"{ind}finish = start + {lat_expr}")
            for key in defs:
                emit(f"{ind}ready[{key!r}] = finish")
            emit(f"{ind}if finish > t_done:")
            emit(f"{ind}    t_done = finish")

        def probe_checks(ind):
            if has_tlb:
                emit(f"{ind}if not tlb_lookup(addr):")
                emit(f"{ind}    extra += {walk}")
                emit(f"{ind}    bw += {walk_bw}")
            if has_l1:
                emit(f"{ind}if not l1_lookup(addr):")
                emit(f"{ind}    extra += {l1_cyc}")
                emit(f"{ind}    bw += {l1_bw}")
                emit(f"{ind}    if not l2_lookup(addr):")
                emit(f"{ind}        extra += {l2_cyc}")
                emit(f"{ind}        bw += {l2_bw}")

        def guarded(ind, stmt, pc):
            emit(f"{ind}try:")
            emit(f"{ind}    {stmt}")
            emit(f"{ind}except MemoryFault as fault:")
            emit(f"{ind}    cpu.pc = {pc}")
            emit(f"{ind}    raise MemTrap({pc}, fault) from None")

        ind = "            "
        for i, (kind, _exec, pc, icost, lat, uses, defs, fused) in \
                enumerate(ops):
            ic, lt = repr(icost), repr(lat)
            if kind == 0:  # simple
                guarded(ind, f"e{i}()", pc)
                emit(f"{ind}t_issue += {ic}")
                tail(ind, uses, lt, defs)
                emit(f"{ind}n += 1")
            elif kind == 1:  # load/store
                guarded(ind, f"addr = e{i}()", pc)
                emit(f"{ind}extra = 0.0")
                emit(f"{ind}bw = 0.0")
                probe_checks(ind)
                emit(f"{ind}t_issue += {ic} + bw")
                tail(ind, uses, f"{lt} + extra", defs)
                emit(f"{ind}n += 1")
            elif kind == 2:  # branch terminator
                guarded(ind, f"taken = e{i}()", pc)
                emit(f"{ind}if taken:")
                emit(f"{ind}    t_issue += {repr(icost + tb)}")
                emit(f"{ind}else:")
                emit(f"{ind}    t_issue += {ic}")
                tail(ind, uses, lt, defs)
                emit(f"{ind}n += 1")
            elif kind == 4:  # fused guard + load/store
                g_icost, g_lat, g_uses, g_defs, a_pc = fused
                g_ic, g_lt = repr(g_icost), repr(g_lat)
                emit(f"{ind}try:")
                emit(f"{ind}    addr = e{i}()")
                emit(f"{ind}except MemoryFault as fault:")
                # The guard half retired before the access faulted.
                emit(f"{ind}    t_issue += {g_ic}")
                tail(ind + "    ", g_uses, g_lt, g_defs)
                emit(f"{ind}    n += 1")
                emit(f"{ind}    cpu.pc = {a_pc}")
                emit(f"{ind}    raise MemTrap({a_pc}, fault) from None")
                emit(f"{ind}t_issue += {g_ic}")
                tail(ind, g_uses, g_lt, g_defs)
                emit(f"{ind}extra = 0.0")
                emit(f"{ind}bw = 0.0")
                probe_checks(ind)
                emit(f"{ind}t_issue += {ic} + bw")
                tail(ind, uses, f"{lt} + extra", defs)
                emit(f"{ind}n += 2")
            elif kind == 5:  # fused guard + indirect branch
                g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                guarded(ind, f"e{i}()", pc)
                emit(f"{ind}t_issue += {repr(g_icost)}")
                tail(ind, g_uses, repr(g_lat), g_defs)
                emit(f"{ind}t_issue += {repr(icost + tb)}")
                tail(ind, uses, lt, defs)
                emit(f"{ind}n += 2")
                emit(f"{ind}taken = True")
            elif kind == 6:  # fused sp guard pair
                g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                guarded(ind, f"e{i}()", pc)
                emit(f"{ind}t_issue += {repr(g_icost)}")
                tail(ind, g_uses, repr(g_lat), g_defs)
                emit(f"{ind}t_issue += {ic}")
                tail(ind, uses, lt, defs)
                emit(f"{ind}n += 2")
            else:  # generic handler semantics
                guarded(ind, f"taken, addr = e{i}()", pc)
                emit(f"{ind}extra = 0.0")
                emit(f"{ind}bw = 0.0")
                emit(f"{ind}if addr is not None:")
                probe_checks(ind + "    ")
                emit(f"{ind}if taken:")
                emit(f"{ind}    t_issue += {repr(icost + tb)} + bw")
                emit(f"{ind}else:")
                emit(f"{ind}    t_issue += {ic} + bw")
                tail(ind, uses, f"{lt} + extra", defs)
                emit(f"{ind}n += 1")

        binds = ", ".join(
            [f"e{i}=ops[{i}][1]" for i in range(len(ops))]
            + ["ready=ready", "ready_get=ready_get", "cpu=cpu",
               "tlb_lookup=tlb_lookup", "l1_lookup=l1_lookup",
               "l2_lookup=l2_lookup", "MemoryFault=MemoryFault",
               "MemTrap=MemTrap", "BlockFault=BlockFault"])
        src = "\n".join(
            ["def _factory(ops, ready, ready_get, cpu, tlb_lookup,",
             "             l1_lookup, l2_lookup, MemoryFault, MemTrap,",
             "             BlockFault):",
             f"    def run(t_issue, t_done, {binds}):",
             "        n = 0",
             "        taken = False",
             "        try:",
             *lines,
             "        except BaseException as exc:",
             "            raise BlockFault(t_issue, t_done, n, exc) "
             "from None",
             "        return t_issue, t_done, n, taken",
             "    return run",
             ""])
        namespace: Dict[str, object] = {}
        exec(compile(src, f"<superblock {block.start:#x}>", "exec"),
             namespace)
        costing = machine._costing
        fn = namespace["_factory"](
            ops, costing.ready, costing.ready.get, machine.cpu,
            machine.tlb.lookup if has_tlb else None,
            machine.l1.lookup if has_l1 else None,
            machine.l2.lookup if machine.l2 is not None else None,
            MemoryFault, self._M.MemTrap, _BlockFault)
        self.compiled_blocks += 1
        return fn

    def _run_costed(self, remaining: int) -> int:
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        host = machine._host_entries
        blocks = self._blocks
        translate = self._translate
        costing = machine._costing
        model = machine.model
        tlb = machine.tlb
        l1 = machine.l1
        l2 = machine.l2
        tlb_lookup = tlb.lookup if tlb is not None else None
        l1_lookup = l1.lookup if l1 is not None else None
        l2_lookup = l2.lookup if l2 is not None else None
        walk = model.tlb_walk_cycles * machine.tlb_walk_scale
        walk_bw = walk * model.tlb_walk_issue_fraction
        l1_cyc = model.l1_miss_cycles
        l1_bw = model.l1_miss_issue
        l2_cyc = model.l2_miss_cycles
        l2_bw = model.l2_miss_issue
        tb = model.taken_branch_cost
        ready = costing.ready
        ready_get = ready.get
        springboard = machine.springboard
        chaining = self.chaining
        t_issue = costing.t_issue
        t_done = costing.t_done
        n = 0
        links = 0
        kind = pc = fused = None
        prev = None
        prev_taken = False
        try:
            while True:
                pc0 = cpu.pc
                block = None
                if prev is not None:
                    nxt = prev.link_taken if prev_taken else prev.link_fall
                    if nxt is not None and nxt.valid and nxt.start == pc0:
                        # Chain follow: a valid linked block can never
                        # start at a host entry (registering one
                        # invalidates every covering block), so the host
                        # check and the cache lookup are both skipped.
                        block = nxt
                        links += 1
                if block is None:
                    if pc0 in host:
                        raise M.HostCallTrap(pc0, pc0)
                    block = blocks.get(pc0)
                    if block is None:
                        block = translate(pc0)
                    if prev is not None:
                        if prev_taken:
                            prev.link_taken = block
                        else:
                            prev.link_fall = block
                count = block.count
                if count > remaining:
                    return remaining
                fn = block.fn
                if fn is None and block.hits >= 0:
                    block.hits += 1
                    if block.hits >= _COMPILE_THRESHOLD:
                        fn = block.fn = self._compile_block(block)
                        if fn is None:
                            block.hits = -1  # not compilable; stop trying
                if fn is not None:
                    # Compiled fast path: the interpretive loop below
                    # sees an empty op list and falls through to the
                    # shared block tail with ``taken`` from the closure.
                    try:
                        t_issue, t_done, dn, taken = fn(t_issue, t_done)
                    except _BlockFault as bf:
                        t_issue = bf.t_issue
                        t_done = bf.t_done
                        n += bf.n
                        raise bf.exc from None
                    n += dn
                    ops_iter = ()
                else:
                    taken = False
                    ops_iter = block.ops
                try:
                    for kind, exec_, pc, icost, lat, uses, defs, fused \
                            in ops_iter:
                        if kind == 0:  # simple: no memory, never taken
                            exec_()
                            t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 1:  # load/store
                            addr = exec_()
                            extra = 0.0
                            bw = 0.0
                            if tlb_lookup is not None \
                                    and not tlb_lookup(addr):
                                extra += walk
                                bw += walk_bw
                            if l1_lookup is not None and not l1_lookup(addr):
                                extra += l1_cyc
                                bw += l1_bw
                                if not l2_lookup(addr):
                                    extra += l2_cyc
                                    bw += l2_bw
                            t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 2:  # branch terminator
                            taken = exec_()
                            if taken:
                                t_issue += icost + tb
                            else:
                                t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 4:  # fused guard + load/store
                            addr = exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            extra = 0.0
                            bw = 0.0
                            if tlb_lookup is not None \
                                    and not tlb_lookup(addr):
                                extra += walk
                                bw += walk_bw
                            if l1_lookup is not None and not l1_lookup(addr):
                                extra += l1_cyc
                                bw += l1_bw
                                if not l2_lookup(addr):
                                    extra += l2_cyc
                                    bw += l2_bw
                            t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                        elif kind == 5:  # fused guard + indirect branch
                            exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            t_issue += icost + tb
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                            taken = True
                        elif kind == 6:  # fused sp guard pair
                            exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                        else:  # generic handler semantics
                            taken, addr = exec_()
                            extra = 0.0
                            bw = 0.0
                            if addr is not None:
                                if tlb_lookup is not None \
                                        and not tlb_lookup(addr):
                                    extra += walk
                                    bw += walk_bw
                                if l1_lookup is not None \
                                        and not l1_lookup(addr):
                                    extra += l1_cyc
                                    bw += l1_bw
                                    if not l2_lookup(addr):
                                        extra += l2_cyc
                                        bw += l2_bw
                            if taken:
                                t_issue += icost + tb + bw
                            else:
                                t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                except MemoryFault as fault:
                    if kind == 4:
                        # The guard half retired before the access faulted.
                        g_icost, g_lat, g_uses, g_defs, a_pc = fused
                        t_issue += g_icost
                        start = t_issue
                        for key in g_uses:
                            t = ready_get(key)
                            if t is not None and t > start:
                                start = t
                        finish = start + g_lat
                        for key in g_defs:
                            ready[key] = finish
                        if finish > t_done:
                            t_done = finish
                        n += 1
                        cpu.pc = a_pc
                        raise M.MemTrap(a_pc, fault) from None
                    cpu.pc = pc
                    raise M.MemTrap(pc, fault) from None
                rtcall = block.rtcall
                if rtcall is None:
                    if not taken:
                        cpu.pc = block.next_pc
                    remaining -= count
                    if remaining == 0:
                        raise M.OutOfFuel()
                    if chaining:
                        prev = block
                        prev_taken = taken
                    continue
                # Fused runtime-call tail: execute the pair, charge the
                # table load exactly like a kind-1 op and the blr exactly
                # like a taken branch, then springboard into the runtime
                # without raising HostCallTrap.
                (exec_, r_pc, l_icost, l_lat, l_uses, l_defs,
                 b_icost, b_lat, b_uses, b_defs) = rtcall
                try:
                    addr = exec_()
                except MemoryFault as fault:
                    cpu.pc = r_pc
                    raise M.MemTrap(r_pc, fault) from None
                extra = 0.0
                bw = 0.0
                if tlb_lookup is not None and not tlb_lookup(addr):
                    extra += walk
                    bw += walk_bw
                if l1_lookup is not None and not l1_lookup(addr):
                    extra += l1_cyc
                    bw += l1_bw
                    if not l2_lookup(addr):
                        extra += l2_cyc
                        bw += l2_bw
                t_issue += l_icost + bw
                start = t_issue
                for key in l_uses:
                    t = ready_get(key)
                    if t is not None and t > start:
                        start = t
                finish = start + l_lat + extra
                for key in l_defs:
                    ready[key] = finish
                if finish > t_done:
                    t_done = finish
                t_issue += b_icost + tb
                start = t_issue
                for key in b_uses:
                    t = ready_get(key)
                    if t is not None and t > start:
                        start = t
                finish = start + b_lat
                for key in b_defs:
                    ready[key] = finish
                if finish > t_done:
                    t_done = finish
                n += 2
                remaining -= count
                if remaining == 0:
                    # The blr was the slice's last fueled instruction:
                    # preemption wins over the call, as in stepping (the
                    # next slice's host check raises HostCallTrap).
                    raise M.OutOfFuel()
                prev = None
                entry = cpu.pc
                if springboard is None or entry not in host:
                    continue
                costing.t_issue = t_issue
                costing.t_done = t_done
                machine.instret += n
                n = 0
                try:
                    remaining, force_step = springboard(entry)
                finally:
                    t_issue = costing.t_issue
                    t_done = costing.t_done
                if force_step:
                    return remaining
        finally:
            costing.t_issue = t_issue
            costing.t_done = t_done
            machine.instret += n
            self.chain_links += links

    def _run_fast(self, remaining: int) -> int:
        """Block dispatch without a cost model (fuzz oracles)."""
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        host = machine._host_entries
        blocks = self._blocks
        translate = self._translate
        springboard = machine.springboard
        chaining = self.chaining
        n = 0
        links = 0
        kind = pc = fused = None
        prev = None
        prev_taken = False
        try:
            while True:
                pc0 = cpu.pc
                block = None
                if prev is not None:
                    nxt = prev.link_taken if prev_taken else prev.link_fall
                    if nxt is not None and nxt.valid and nxt.start == pc0:
                        block = nxt
                        links += 1
                if block is None:
                    if pc0 in host:
                        raise M.HostCallTrap(pc0, pc0)
                    block = blocks.get(pc0)
                    if block is None:
                        block = translate(pc0)
                    if prev is not None:
                        if prev_taken:
                            prev.link_taken = block
                        else:
                            prev.link_fall = block
                count = block.count
                if count > remaining:
                    return remaining
                taken = False
                try:
                    for kind, exec_, pc, icost, lat, uses, defs, fused \
                            in block.ops:
                        if kind == 0 or kind == 1:
                            exec_()
                            n += 1
                        elif kind == 2:
                            taken = exec_()
                            n += 1
                        elif kind == 4 or kind == 6:
                            exec_()
                            n += 2
                        elif kind == 5:
                            exec_()
                            n += 2
                            taken = True
                        else:
                            taken, _addr = exec_()
                            n += 1
                except MemoryFault as fault:
                    if kind == 4:
                        a_pc = fused[4]
                        n += 1
                        cpu.pc = a_pc
                        raise M.MemTrap(a_pc, fault) from None
                    cpu.pc = pc
                    raise M.MemTrap(pc, fault) from None
                rtcall = block.rtcall
                if rtcall is None:
                    if not taken:
                        cpu.pc = block.next_pc
                    remaining -= count
                    if remaining == 0:
                        raise M.OutOfFuel()
                    if chaining:
                        prev = block
                        prev_taken = taken
                    continue
                try:
                    rtcall[0]()
                except MemoryFault as fault:
                    r_pc = rtcall[1]
                    cpu.pc = r_pc
                    raise M.MemTrap(r_pc, fault) from None
                n += 2
                remaining -= count
                if remaining == 0:
                    raise M.OutOfFuel()
                prev = None
                entry = cpu.pc
                if springboard is None or entry not in host:
                    continue
                machine.instret += n
                n = 0
                remaining, force_step = springboard(entry)
                if force_step:
                    return remaining
        finally:
            machine.instret += n
            self.chain_links += links

    # -- translation --------------------------------------------------------

    def _translate(self, start: int) -> Superblock:
        """Predecode the straight-line run starting at ``start``.

        Raises the same trap ``Machine.step`` would raise if the *first*
        instruction is unfetchable or undecodable; later problems simply
        end the block (the next dispatch raises them with the exact pc).
        """
        M = self._M
        machine = self.machine
        memory = machine.memory
        dispatch = machine._exec
        host = machine._host_entries
        page_size = memory.page_size
        limit = (start // page_size + 1) * page_size
        cap = self.block_cache_cap
        if cap is not None and len(self._blocks) >= cap:
            # Deterministic full flush: same translation pressure on every
            # run with the same config, so counters stay reproducible.
            self.invalidate_all()

        decoded: List[Tuple[int, Instruction, object]] = []
        pc = start
        while pc < limit:
            if pc in host and pc != start:
                break
            try:
                word = memory.fetch(pc)
            except MemoryFault as fault:
                if not decoded:
                    raise M.MemTrap(pc, fault) from None
                break
            inst = decode_word(word, pc)
            handler = dispatch.get(inst.base) if inst is not None else None
            if handler is None:
                if not decoded:
                    raise M.UnknownInstructionTrap(pc, word)
                break
            decoded.append((pc, inst, handler))
            if inst.base in _TERMINATOR_BASES:
                break
            pc += 4

        last_pc = decoded[-1][0]

        # Springboard fusion: a block ending in the verified runtime-call
        # idiom (``ldr x30, [x21, #n]; blr x30`` — recognized by the same
        # predicate the rewriter uses) compiles the pair into a single
        # closure so the dispatch loop can hand control to the runtime
        # springboard without trap-based unwinding.
        rtcall = None
        if len(decoded) >= 2 and decoded[-1][1].base == "blr" \
                and is_runtime_call_load(
                    [decoded[-2][1], decoded[-1][1]], 0):
            ldr_pc, ldr_inst, _ = decoded[-2]
            blr_pc, blr_inst, _ = decoded[-1]
            form = self._mem_form(ldr_inst.mem)
            if form is not None and form[0] == "imm" and not form[2]:
                exec_ = _t_rtcall(machine.cpu, machine.cpu.regs,
                                  memory.read, form[1], form[3],
                                  blr_pc + 4)
                l_icost, l_lat, l_uses, l_defs = self._cost_entry(ldr_inst)
                b_icost, b_lat, b_uses, b_defs = self._cost_entry(blr_inst)
                rtcall = (exec_, ldr_pc, l_icost, l_lat, l_uses, l_defs,
                          b_icost, b_lat, b_uses, b_defs)
                decoded = decoded[:-2]
                self.fused_calls += 1

        guard_map = machine.guard_map
        ops = []
        count = 2 if rtcall is not None else 0
        i = 0
        while i < len(decoded):
            pc_i, inst, handler = decoded[i]
            if guard_map and pc_i in guard_map and i + 1 < len(decoded):
                fused = self._try_fuse(pc_i, inst, decoded[i + 1][1])
                if fused is not None:
                    ops.append(fused)
                    count += 2
                    i += 2
                    continue
            ops.append(self._build_op(pc_i, inst, handler))
            count += 1
            i += 1

        block = Superblock(start, last_pc + 4, ops, count, last_pc + 4,
                           rtcall)
        self._blocks[start] = block
        self.translations += 1
        return block

    # -- op construction ----------------------------------------------------

    def _cost_entry(self, inst: Instruction):
        """(icost, lat, uses, defs) exactly as Machine.step caches them."""
        M = self._M
        machine = self.machine
        klass = M._classify(inst)
        model = machine.model
        if model is not None:
            icost = model.issue_cost(klass)
            lat = model.result_latency(klass)
        else:
            icost = lat = 0.0
        uses = tuple(k for k in (M._reg_key(r) for r in inst.uses())
                     if k is not None)
        defs = tuple(k for k in (M._reg_key(r) for r in inst.defs())
                     if k is not None)
        return icost, lat, uses, defs

    def _build_op(self, pc: int, inst: Instruction, handler) -> tuple:
        icost, lat, uses, defs = self._cost_entry(inst)
        spec = self._specialize(pc, inst)
        if spec is None:
            exec_ = partial(handler, inst)
            if inst.base in _PC_READING:
                exec_ = _pc_fix(self.machine.cpu, pc, exec_)
            return (K_GENERIC, exec_, pc, icost, lat, uses, defs, None)
        kind, exec_ = spec
        return (kind, exec_, pc, icost, lat, uses, defs, None)

    def _specialize(self, pc: int, inst: Instruction):
        """Build a specialized thunk, or None for the generic fallback."""
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        regs = cpu.regs
        mem = machine.memory
        base = inst.base
        m = inst.mnemonic
        ops = inst.operands

        # -- traps (block terminators; pc set before the raise) -----------
        if base == "svc":
            imm = ops[0].value if ops else 0
            return (K_GENERIC,
                    _t_trap(cpu, pc, lambda: M.SvcTrap(pc, imm)))
        if base == "brk":
            imm = ops[0].value if ops else 0
            return (K_GENERIC,
                    _t_trap(cpu, pc, lambda: M.BrkTrap(pc, imm)))
        if base == "hlt":
            return (K_GENERIC, _t_trap(cpu, pc, lambda: M.HltTrap(pc)))

        # -- branches ------------------------------------------------------
        if base == "b":
            target = ops[0].value & MASK64 if isinstance(ops[0], Imm) \
                else None
            if target is None:
                return None
            if m == "b":
                return (K_BRANCH, _t_b(cpu, target))
            cond = self._canonical(m[2:])
            if cond is None:
                return None
            return (K_BRANCH, _t_bcond(cpu, cond, target))
        if base == "bl":
            if not isinstance(ops[0], Imm):
                return None
            return (K_BRANCH,
                    _t_bl(cpu, regs, ops[0].value & MASK64, pc + 4))
        if base == "br":
            if not _is_plain_gpr(ops[0]):
                return None
            return (K_BRANCH, _t_br(cpu, regs, ops[0].index))
        if base == "blr":
            if not _is_plain_gpr(ops[0]):
                return None
            return (K_BRANCH, _t_blr(cpu, regs, ops[0].index, pc + 4))
        if base == "ret":
            reg = ops[0] if ops else LR
            if not _is_plain_gpr(reg):
                return None
            return (K_BRANCH, _t_br(cpu, regs, reg.index))
        if base in ("cbz", "cbnz"):
            rt, target = ops
            if not _is_plain_gpr(rt) or not isinstance(target, Imm):
                return None
            return (K_BRANCH, _t_cb(cpu, regs, rt.index, rt.bits,
                                    base == "cbz", target.value & MASK64))
        if base in ("tbz", "tbnz"):
            rt, bit, target = ops
            if not _is_plain_gpr(rt) or not isinstance(target, Imm):
                return None
            return (K_BRANCH, _t_tb(cpu, regs, rt.index, bit.value,
                                    base == "tbnz", target.value & MASK64))

        # -- vector / floating point ---------------------------------------
        if ops and isinstance(ops[0], VecReg):
            return self._specialize_vector(inst)

        if base in ("fadd", "fsub", "fmul") and len(ops) == 3:
            rd, rn, rm = ops
            if all(isinstance(r, Reg) and r.is_vector for r in ops) \
                    and rd.bits == rn.bits == rm.bits \
                    and rd.bits in (32, 64):
                return (K_SIMPLE, _t_fp2(
                    cpu.vregs, rd.index, rn.index, rm.index, rd.bits,
                    base, M._bits_to_float, M._float_to_bits))
            return None

        if base in ("fmadd", "fmsub") and len(ops) == 4:
            rd, rn, rm, ra = ops
            if all(isinstance(r, Reg) and r.is_vector for r in ops) \
                    and rd.bits == rn.bits == rm.bits == ra.bits \
                    and rd.bits in (32, 64):
                return (K_SIMPLE, _t_fp3(
                    cpu.vregs, rd.index, rn.index, rm.index, ra.index,
                    rd.bits, base == "fmsub",
                    M._bits_to_float, M._float_to_bits))
            return None

        # -- data processing ----------------------------------------------
        if base in ("add", "sub", "adds", "subs"):
            rd, rn, rm = ops[0], ops[1], ops[2]
            if not isinstance(rd, Reg) or rd.is_vector:
                return None
            setflags = base.endswith("s")
            sub = base.startswith("sub")
            width = rd.bits
            if not _is_plain_gpr(rn):
                return None
            if setflags:
                if not (rd.is_zero or _is_plain_gpr(rd)):
                    return None
                d = None if rd.is_zero else rd.index
                if isinstance(rm, (Imm, ShiftedImm)):
                    b = (rm.value << rm.shift if isinstance(rm, ShiftedImm)
                         else rm.value) & ((1 << width) - 1)
                    return (K_SIMPLE, _t_addsub_flags_imm(
                        cpu, regs, d, rn.index, b, width, sub))
                if _is_plain_gpr(rm) and rm.bits == width:
                    return (K_SIMPLE, _t_addsub_flags_reg(
                        cpu, regs, d, rn.index, rm.index, width, sub))
                return None
            if not _is_plain_gpr(rd):
                return None
            if isinstance(rm, (Imm, ShiftedImm)):
                b = (rm.value << rm.shift if isinstance(rm, ShiftedImm)
                     else rm.value) & ((1 << width) - 1)
                return (K_SIMPLE, _t_add_imm(regs, rd.index, rn.index, b,
                                             width, sub))
            if isinstance(rm, Reg) and _is_plain_gpr(rm) \
                    and rm.bits == width:
                return (K_SIMPLE, _t_add_reg(regs, rd.index, rn.index,
                                             rm.index, width, sub))
            if not sub and width == 64 and isinstance(rm, Extended) \
                    and rm.kind == "uxtw" and not rm.amount \
                    and _is_plain_gpr(rm.reg):
                return (K_SIMPLE, _t_add_uxtw(regs, rd.index, rn.index,
                                              rm.reg.index))
            if isinstance(rm, Shifted) and rm.kind == "lsl" \
                    and _is_plain_gpr(rm.reg) and rm.reg.bits == width:
                return (K_SIMPLE, _t_addsub_shifted(
                    regs, rd.index, rn.index, rm.reg.index,
                    rm.amount % width, width, sub))
            return None

        if base in ("mov", "movz", "movn"):
            rd, src = ops
            if not isinstance(rd, Reg) or not _is_plain_gpr(rd):
                return None
            mask = (1 << rd.bits) - 1
            if isinstance(src, (Imm, ShiftedImm)):
                v = src.value << src.shift if isinstance(src, ShiftedImm) \
                    else src.value
                if base == "movn":
                    v = ~v
                return (K_SIMPLE, _t_mov_const(regs, rd.index, v & mask))
            if base == "mov" and _is_plain_gpr(src):
                return (K_SIMPLE, _t_mov_reg(regs, rd.index, src.index,
                                             rd.bits))
            return None

        if base == "movk":
            rd, src = ops
            if not _is_plain_gpr(rd):
                return None
            shift = src.shift if isinstance(src, ShiftedImm) else 0
            imm = src.value
            keep = ((1 << rd.bits) - 1) & ~(0xFFFF << shift)
            return (K_SIMPLE, _t_movk(regs, rd.index, keep, imm << shift,
                                      rd.bits))

        if base in ("adr", "adrp"):
            rd, src = ops
            if not _is_plain_gpr(rd) or not isinstance(src, Imm):
                return None
            return (K_SIMPLE,
                    _t_mov_const(regs, rd.index, src.value & MASK64))

        if base in ("and", "orr", "eor"):
            rd, rn, rm = ops
            if not isinstance(rd, Reg) or rd.is_vector \
                    or not _is_plain_gpr(rd) or not _is_plain_gpr(rn):
                return None
            width = rd.bits
            if isinstance(rm, Imm):
                b = rm.value & ((1 << width) - 1)
                return (K_SIMPLE, _t_logic_imm(regs, rd.index, rn.index, b,
                                               width, base))
            if isinstance(rm, Reg) and _is_plain_gpr(rm) \
                    and rm.bits == width:
                return (K_SIMPLE, _t_logic_reg(regs, rd.index, rn.index,
                                               rm.index, width, base))
            return None

        if base in ("lsl", "lsr", "asr"):
            rd, rn, src = ops
            if not _is_plain_gpr(rd) or not _is_plain_gpr(rn) \
                    or not isinstance(src, Imm):
                return None
            return (K_SIMPLE, _t_shift_imm(regs, rd.index, rn.index,
                                           src.value % rd.bits, rd.bits,
                                           base))

        if base in ("madd", "msub") and len(ops) == 4:
            rd, rn, rm, ra = ops
            if not (_is_plain_gpr(rd) and _is_plain_gpr(rn)
                    and _is_plain_gpr(rm) and _is_plain_gpr(ra)) \
                    or not rd.bits == rn.bits == rm.bits == ra.bits:
                return None
            return (K_SIMPLE, _t_madd(regs, rd.index, rn.index, rm.index,
                                      ra.index, rd.bits, base == "msub"))

        if base in ("ubfm", "sbfm") and len(ops) == 4:
            rd, rn, immr, imms = ops
            if not _is_plain_gpr(rd) or not _is_plain_gpr(rn) \
                    or rd.bits != rn.bits:
                return None
            return (K_SIMPLE, _t_bitfield(regs, rd.index, rn.index,
                                          rd.bits, immr.value, imms.value,
                                          base == "sbfm"))

        # -- memory --------------------------------------------------------
        if base in _UNSIGNED_LOADS or base in _SIGNED_LOADS:
            rt, memop = ops[0], ops[1]
            if not isinstance(memop, Mem) or isinstance(rt, VecReg):
                return None
            if rt.is_vector:
                if base in _SIGNED_LOADS:
                    return None
                form = self._mem_form(memop)
                if form is None:
                    return None
                mode, base_i, sp_base, imm, w_i = form
                size = access_bytes(inst)
                vmask = (1 << rt.bits) - 1
                if mode == "imm":
                    return (K_MEM, _t_vload(cpu.vregs, regs, cpu, mem.read,
                                            rt.index, base_i, imm, size,
                                            vmask, sp_base))
                return (K_MEM, _t_vload_uxtw(cpu.vregs, regs, mem.read,
                                             rt.index, base_i, w_i, size,
                                             vmask))
            if not (rt.is_zero or _is_plain_gpr(rt)):
                return None
            if rt.is_zero:
                return None  # prefetch-style form: keep generic
            signed_bits = _SIGNED_LOADS.get(base)
            size = access_bytes(inst)
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, w_i = form
            if mode == "imm":
                return (K_MEM, _t_load(regs, cpu, mem.read, rt.index,
                                       base_i, imm, size, signed_bits,
                                       rt.bits, sp_base))
            return (K_MEM, _t_load_uxtw(regs, mem.read, rt.index, base_i,
                                        w_i, size, signed_bits, rt.bits))

        if base in _SIMPLE_STORES:
            rt, memop = ops[0], ops[1]
            if not isinstance(memop, Mem) or isinstance(rt, VecReg):
                return None
            if rt.is_vector:
                form = self._mem_form(memop)
                if form is None:
                    return None
                mode, base_i, sp_base, imm, w_i = form
                size = access_bytes(inst)
                vmask = (1 << rt.bits) - 1
                if mode == "imm":
                    return (K_MEM, _t_vstore(cpu.vregs, regs, cpu,
                                             mem.write, rt.index, base_i,
                                             imm, size, vmask, sp_base))
                return (K_MEM, _t_vstore_uxtw(cpu.vregs, regs, mem.write,
                                              rt.index, base_i, w_i, size,
                                              vmask))
            if not (rt.is_zero or _is_plain_gpr(rt)):
                return None
            size = access_bytes(inst)
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, w_i = form
            t = 0 if rt.is_zero else rt.index
            if mode == "imm":
                return (K_MEM, _t_store(regs, cpu, mem.write, t, base_i,
                                        imm, size, sp_base, rt.is_zero))
            return (K_MEM, _t_store_uxtw(regs, mem.write, t, base_i, w_i,
                                         size, rt.is_zero))

        if base in ("ldp", "stp"):
            rt, rt2, memop = ops
            if rt.is_vector or rt2.is_vector or rt.bits != 64 \
                    or rt2.bits != 64:
                return None
            if not _is_plain_gpr(rt) or not _is_plain_gpr(rt2):
                return None
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, _w_i = form
            if mode != "imm":
                return None
            factory = _t_ldp if base == "ldp" else _t_stp
            accessor = mem.read if base == "ldp" else mem.write
            return (K_MEM, factory(regs, cpu, accessor, rt.index,
                                   rt2.index, base_i, imm, sp_base))

        return None

    def _specialize_vector(self, inst: Instruction):
        """Lane-arranged vector ops (``add v0.4s, v1.4s, v2.4s`` etc.).

        Only the same-arrangement integer triple forms are specialized;
        anything else (float lanes, movi/dup, mixed arrangements) keeps
        the generic handler.
        """
        base = inst.base
        ops = inst.operands
        if base not in ("add", "sub", "mul", "and", "orr", "eor") \
                or len(ops) != 3:
            return None
        rd, rn, rm = ops
        if not all(isinstance(o, VecReg) for o in ops):
            return None
        if not (rd.arrangement == rn.arrangement == rm.arrangement):
            return None
        vregs = self.machine.cpu.vregs
        d, n, m = rd.reg.index, rn.reg.index, rm.reg.index
        bits = rd.lane_bits
        lanes = rd.lanes
        if base in ("and", "orr", "eor"):
            full_mask = (1 << (lanes * bits)) - 1
            return (K_SIMPLE,
                    _t_vec3_bitwise(vregs, d, n, m, full_mask, base))
        return (K_SIMPLE, _t_vec3_lanes(vregs, d, n, m, lanes, bits, base))

    @staticmethod
    def _mem_form(memop: Mem):
        """Classify a Mem operand for specialization.

        Returns ``(mode, base_index, sp_base, imm, w_index)`` where mode
        is ``"imm"`` (base register + immediate) or ``"uxtw"`` (the guard
        addressing mode), or None if the form needs the generic handler.
        """
        if memop.mode in (PRE_INDEX, POST_INDEX):
            return None
        base = memop.base
        if not isinstance(base, Reg) or base.is_zero or base.is_vector:
            return None
        sp_base = base.is_sp
        base_i = None if sp_base else base.index
        off = memop.offset
        if off is None:
            return ("imm", base_i, sp_base, 0, None)
        if isinstance(off, Imm):
            return ("imm", base_i, sp_base, off.value, None)
        if isinstance(off, Extended) and off.kind == "uxtw" \
                and not off.amount and _is_plain_gpr(off.reg) \
                and not sp_base:
            return ("uxtw", base_i, sp_base, 0, off.reg.index)
        return None

    @staticmethod
    def _canonical(cond: str) -> Optional[str]:
        try:
            cond = canonical_condition(cond)
        except ValueError:
            return None
        return cond if cond in _COND_EVAL else None

    # -- guard fusion --------------------------------------------------------

    def _try_fuse(self, pc: int, guard: Instruction,
                  access: Instruction) -> Optional[tuple]:
        """Fuse a verified guard instruction with its consumer.

        Returns a complete op tuple (kind K_FUSED_*) or None.  The op's
        main cost fields describe the *access* instruction; the ``fused``
        slot carries ``(guard_icost, guard_lat, guard_uses, guard_defs,
        access_pc)`` so the execute loop charges both entries in retire
        order — cycle accounting stays bit-identical to stepping.
        """
        machine = self.machine
        cpu = machine.cpu
        regs = cpu.regs
        mem = machine.memory
        gops = guard.operands

        fused_exec = None
        kind = None

        # Pattern 1: address guard  add Xg, Xb, wS, uxtw  + consumer.
        if guard.mnemonic == "add" and len(gops) == 3 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 64 \
                and _is_plain_gpr(gops[1]) \
                and isinstance(gops[2], Extended) \
                and gops[2].kind == "uxtw" and not gops[2].amount \
                and _is_plain_gpr(gops[2].reg):
            g_d = gops[0].index
            base_i = gops[1].index
            g_s = gops[2].reg.index
            aops = access.operands
            ab = access.base
            if ab in ("br", "blr", "ret"):
                reg = aops[0] if aops else LR
                if _is_plain_gpr(reg) and reg.index == g_d:
                    link = pc + 8 if ab == "blr" else None
                    fused_exec = _t_fused_guard_branch(cpu, regs, g_d, g_s,
                                                       base_i, link)
                    kind = K_FUSED_BRANCH
            elif (ab in _UNSIGNED_LOADS or ab in _SIGNED_LOADS
                    or ab in _SIMPLE_STORES) and len(aops) == 2 \
                    and isinstance(aops[1], Mem):
                rt, memop = aops
                form = self._mem_form(memop)
                if form is not None and form[0] == "imm" \
                        and not form[2] and form[1] == g_d \
                        and not rt.is_vector:
                    imm = form[3]
                    size = access_bytes(access)
                    is_store = ab in _SIMPLE_STORES
                    if is_store and (rt.is_zero or _is_plain_gpr(rt)):
                        t = 0 if rt.is_zero else rt.index
                        fused_exec = _t_fused_guard_store(
                            regs, mem.write, g_d, g_s, t, imm, size,
                            base_i, rt.is_zero)
                        kind = K_FUSED_MEM
                    elif not is_store and _is_plain_gpr(rt):
                        fused_exec = _t_fused_guard_load(
                            regs, mem.read, g_d, g_s, rt.index, imm, size,
                            _SIGNED_LOADS.get(ab), rt.bits, base_i)
                        kind = K_FUSED_MEM

        # Pattern 2: offset fold  add/sub wD, wS, #imm  +
        #            op [Xb, wD, uxtw]  (Table 3 rows 2, 5-7).
        elif guard.mnemonic in ("add", "sub") and len(gops) == 3 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 32 \
                and _is_plain_gpr(gops[1]) and gops[1].bits == 32 \
                and isinstance(gops[2], Imm):
            o_d = gops[0].index
            o_s = gops[1].index
            o_imm = gops[2].value & MASK32
            o_sub = guard.mnemonic == "sub"
            aops = access.operands
            ab = access.base
            if (ab in _UNSIGNED_LOADS or ab in _SIGNED_LOADS
                    or ab in _SIMPLE_STORES) and len(aops) == 2 \
                    and isinstance(aops[1], Mem):
                rt, memop = aops
                form = self._mem_form(memop)
                if form is not None and form[0] == "uxtw" \
                        and form[4] == o_d and not rt.is_vector:
                    base_i = form[1]
                    size = access_bytes(access)
                    is_store = ab in _SIMPLE_STORES
                    if is_store and (rt.is_zero or _is_plain_gpr(rt)):
                        t = 0 if rt.is_zero else rt.index
                        fused_exec = _t_fused_offset_store(
                            regs, mem.write, o_d, o_s, o_imm, o_sub, t,
                            size, base_i, rt.is_zero)
                        kind = K_FUSED_MEM
                    elif not is_store and _is_plain_gpr(rt):
                        fused_exec = _t_fused_offset_load(
                            regs, mem.read, o_d, o_s, o_imm, o_sub,
                            rt.index, size, _SIGNED_LOADS.get(ab),
                            rt.bits, base_i)
                        kind = K_FUSED_MEM

        # Pattern 3: sp guard pair  mov wD, wsp + add sp, Xb, XD.
        elif guard.mnemonic == "mov" and len(gops) == 2 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 32 \
                and isinstance(gops[1], Reg) and gops[1].is_sp \
                and gops[1].bits == 32:
            w_d = gops[0].index
            aops = access.operands
            if access.mnemonic == "add" and len(aops) == 3 \
                    and isinstance(aops[0], Reg) and aops[0].is_sp \
                    and _is_plain_gpr(aops[1]):
                src = aops[2]
                src_reg = src.reg if isinstance(src, Extended) else src
                src_ok = isinstance(src, Reg) and _is_plain_gpr(src) \
                    and src.bits == 64
                if isinstance(src, Extended):
                    src_ok = src.kind in ("uxtx", "lsl") \
                        and not src.amount and _is_plain_gpr(src.reg) \
                        and src.reg.bits == 64
                if src_ok and src_reg.index == w_d:
                    fused_exec = _t_fused_sp_guard(cpu, regs, w_d,
                                                   aops[1].index)
                    kind = K_FUSED_SIMPLE

        if fused_exec is None:
            return None
        g_icost, g_lat, g_uses, g_defs = self._cost_entry(guard)
        a_icost, a_lat, a_uses, a_defs = self._cost_entry(access)
        fused_info = (g_icost, g_lat, g_uses, g_defs, pc + 4)
        return (kind, fused_exec, pc, a_icost, a_lat, a_uses, a_defs,
                fused_info)

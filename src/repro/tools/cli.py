"""Argument parsing and command implementations for ``repro.tools``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..arm64.decoder import decode_word
from ..arm64.parser import parse_assembly
from ..core.options import (
    O0,
    O1,
    O2,
    O2_FENCE,
    O2_MASK,
    O2_NO_LOADS,
    RewriteOptions,
)
from ..engine import ENGINE_KINDS, EngineConfig, SpeculationConfig
from ..errors import ReproError, RewriteError
from ..core.verifier import VerifierPolicy, verify_elf
from ..elf.format import read_elf, write_elf
from ..emulator.costs import MACHINE_MODELS
from ..runtime.runtime import Runtime
from ..toolchain import compile_lfi, compile_native

__all__ = ["main"]

_LEVELS = {"O0": O0, "O1": O1, "O2": O2, "O2-noloads": O2_NO_LOADS,
           "O2-fence": O2_FENCE, "O2-mask": O2_MASK}


def _options_from(args) -> RewriteOptions:
    options = _LEVELS[args.opt_level]
    if getattr(args, "no_exclusives", False):
        options = options.with_(allow_exclusives=False)
    return options


def _engine_from(args) -> EngineConfig:
    """The :class:`EngineConfig` the shared ``--engine`` flags describe."""
    speculation = None
    if getattr(args, "speculation", False):
        speculation = SpeculationConfig(seed=args.spec_seed,
                                        window=args.spec_window)
    return EngineConfig(kind=args.engine_kind,
                        fuel=args.fuel,
                        block_cache_cap=args.block_cache_cap,
                        chaining=not args.no_chaining,
                        batch_abi=not args.no_batch_abi,
                        speculation=speculation)


def _cmd_rewrite(args) -> int:
    from ..arm64.parser import parse_assembly
    from ..arm64.printer import print_assembly
    from ..core.rewriter import rewrite_program

    text = _read_text(args.input)
    try:
        result = rewrite_program(parse_assembly(text), _options_from(args))
    except RewriteError as exc:
        print(f"rewrite error: {exc}", file=sys.stderr)
        return 1
    _write_text(args.out, print_assembly(result.program))
    if args.stats:
        _print_guard_counts(result.stats)
    return 0


def _print_guard_counts(stats, file=None) -> None:
    """Guard sites by class — shared by ``rewrite`` and ``profile``."""
    counts = stats.guard_class_counts()
    line = " ".join(f"{name}={counts[name]}" for name in sorted(counts))
    print(f"guards: {line}", file=file if file is not None else sys.stderr)


def _cmd_compile(args) -> int:
    text = _read_text(args.input)
    try:
        if args.native:
            output = compile_native(text, bss_size=args.bss)
        else:
            output = compile_lfi(text, options=_options_from(args),
                                 bss_size=args.bss)
    except RewriteError as exc:
        print(f"compile error: {exc}", file=sys.stderr)
        return 1
    data = write_elf(output.elf)
    with open(args.output, "wb") as handle:
        handle.write(data)
    if output.rewrite is not None:
        stats = output.rewrite.stats
        print(f"{stats.input_instructions} -> {stats.output_instructions} "
              f"instructions (+{100 * stats.code_size_overhead:.1f}%)",
              file=sys.stderr)
    return 0


def _cmd_verify(args) -> int:
    with open(args.input, "rb") as handle:
        image = read_elf(handle.read())
    policy = VerifierPolicy(
        allow_exclusives=not args.no_exclusives,
        sandbox_loads=not args.no_loads,
    )
    result = verify_elf(image, policy)
    print(f"{result.instructions} instructions, "
          f"{result.bytes_verified} bytes")
    if result.ok:
        print("OK")
        return 0
    for violation in result.violations[: args.max_errors]:
        print(str(violation), file=sys.stderr)
    print(f"FAILED: {len(result.violations)} violation(s)", file=sys.stderr)
    return 1


def _cmd_run(args) -> int:
    with open(args.input, "rb") as handle:
        image = read_elf(handle.read())
    model = MACHINE_MODELS.get(args.machine) if args.machine else None
    runtime = Runtime(model=model, engine=_engine_from(args))
    policy = VerifierPolicy(sandbox_loads=not args.no_loads)
    proc = runtime.spawn(image, verify=not args.unsafe_no_verify,
                         policy=policy)
    code = runtime.run_until_exit(proc, max_instructions=args.max_insts)
    sys.stdout.write(runtime.stdout_of(proc))
    if args.stats:
        print(f"[{runtime.machine.instret} instructions, "
              f"{runtime.cycles:.0f} cycles]", file=sys.stderr)
    for fault in runtime.faults:
        print(f"[fault: pid {fault.pid} {fault.kind}: {fault.detail}]",
              file=sys.stderr)
    return code


def _cmd_fuzz(args) -> int:
    from ..fuzz import FuzzCampaign, replay_corpus
    from ..fuzz.genasm import GenConfig

    lines: List[str] = []

    def emit(line: str) -> None:
        lines.append(line)
        if not args.quiet:
            print(line)

    findings = []
    if not args.skip_corpus:
        findings.extend(replay_corpus(args.corpus, log=emit))
    if args.budget > 0:
        campaign = FuzzCampaign(
            seed=args.seed, budget=args.budget,
            mutants_per_program=args.mutants,
            config=GenConfig(exclusives=not args.no_exclusives),
            corpus_dir=args.save_corpus,
            checkpoint_points=args.checkpoint_points,
            )
        findings.extend(campaign.run())
        for line in campaign.lines:
            emit(line)
    if args.out not in (None, "-"):
        with open(args.out, "w") as handle:
            handle.write("\n".join(lines) + "\n")
    if findings:
        print(f"FAILED: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_prove(args) -> int:
    import json as _json

    from ..fuzz.corpus import save_entry
    from ..prove import (
        class_by_name,
        counterexample_entry,
        default_classes,
        nightly_classes,
        prove_class,
        render_reports,
    )

    if args.list:
        for cls in default_classes() + nightly_classes():
            tier = "default" if cls in default_classes() else "nightly"
            print(f"{cls.name:<16} space={cls.space():<12} [{tier}]")
        return 0

    if args.classes:
        try:
            classes = [class_by_name(name) for name in args.classes]
        except KeyError as exc:
            raise ReproError(exc.args[0]) from None
    elif args.all:
        classes = default_classes() + nightly_classes()
    else:
        classes = default_classes()

    policies = {
        "sandbox": [VerifierPolicy()],
        "store-only": [VerifierPolicy(sandbox_loads=False)],
        "both": [VerifierPolicy(), VerifierPolicy(sandbox_loads=False)],
    }[args.policy]

    reports = []
    for cls in classes:
        for policy in policies:
            reports.append(prove_class(
                cls, policy=policy, mode=args.mode, limit=args.limit,
                cross_check=args.cross_check, probe=args.probe,
                seed=args.seed))

    if args.save_corpus:
        for report in reports:
            policy = (VerifierPolicy() if report.policy == "sandbox"
                      else VerifierPolicy(sandbox_loads=False))
            for cx in report.counterexamples:
                path = save_entry(counterexample_entry(cx, policy),
                                  args.save_corpus)
                print(f"saved {path}", file=sys.stderr)

    text = (_json.dumps([r.to_dict() for r in reports], indent=2,
                        sort_keys=True) + "\n"
            if args.json else render_reports(reports))
    _write_text(args.out, text)
    return 0 if all(r.ok for r in reports) else 1


def _spawn_workload(args, setup=None):
    """(runtime, proc, rewrite_stats) for an ELF path or ``--bench`` name.

    ``setup(runtime)`` runs before the spawn so observers attached there
    (tracer, profiler) see the process-lifecycle events too.
    """
    from ..workloads.spec import arena_bss_size, build_benchmark

    model = MACHINE_MODELS[args.machine]
    runtime = Runtime(model=model, engine=_engine_from(args))
    if setup is not None:
        setup(runtime)
    if args.bench:
        asm = build_benchmark(args.input, target_instructions=args.target)
        output = compile_lfi(asm, options=_options_from(args),
                             bss_size=arena_bss_size(args.input))
        image, stats = output.elf, output.rewrite.stats
    else:
        with open(args.input, "rb") as handle:
            image = read_elf(handle.read())
        stats = None
    policy = VerifierPolicy(sandbox_loads=not getattr(args, "no_loads", False))
    proc = runtime.spawn(image, verify=not args.unsafe_no_verify,
                         policy=policy)
    return runtime, proc, stats


def _cmd_trace(args) -> int:
    from ..obs import MetricsHub, Tracer, export_chrome_trace, validate_trace

    tracer = Tracer(sample_every=args.sample)
    hub = MetricsHub() if args.metrics else None

    def setup(runtime):
        tracer.attach(runtime)
        if hub is not None:
            hub.attach(tracer, runtime)

    runtime, proc, _ = _spawn_workload(args, setup=setup)
    code = runtime.run_until_exit(proc, max_instructions=args.max_insts)
    if hub is not None:
        hub.collect(runtime)
        with open(args.metrics, "w") as handle:
            handle.write(hub.snapshot())
    to_file = args.out not in (None, "-")
    text = export_chrome_trace(tracer.events,
                               path=args.out if to_file else None)
    if not to_file:
        sys.stdout.write(text)
    print(f"[{len(tracer.events)} events -> {args.out}]", file=sys.stderr)
    if args.validate:
        problems = validate_trace(text)
        for problem in problems[:10]:
            print(f"invalid trace: {problem}", file=sys.stderr)
        if problems:
            return 1
    return code


def _cmd_profile(args) -> int:
    from ..obs import GuardProfiler
    from ..perf.measure import overhead_pct

    profiler = GuardProfiler()
    runtime, proc, stats = _spawn_workload(args, setup=profiler.attach)
    code = runtime.run_until_exit(proc, max_instructions=args.max_insts)
    profiler.detach()
    lines: List[str] = []
    if stats is not None:
        counts = stats.guard_class_counts()
        lines.append("guards: " + " ".join(
            f"{name}={counts[name]}" for name in sorted(counts)))
    lines.append(profiler.report())
    total = profiler.total_cycles()
    lines.append(
        f"attributed {total:.1f} of "
        f"{runtime.machine.cycles - profiler.start_cycles:.1f} cycles")
    if args.bench:
        from ..perf.measure import native_variant, run_variant
        from ..workloads.spec import arena_bss_size, build_benchmark

        asm = build_benchmark(args.input, target_instructions=args.target)
        native = run_variant(asm, arena_bss_size(args.input),
                             native_variant(), MACHINE_MODELS[args.machine],
                             engine=_engine_from(args))
        overhead_cycles = runtime.machine.cycles - native.cycles
        lines.append(
            f"overhead vs native: "
            f"{overhead_pct(native.cycles, runtime.machine.cycles):+.2f}% "
            f"({overhead_cycles:+.1f} cycles)")
        decomposed = profiler.decompose_overhead(overhead_cycles)
        lines.append("decomposition (amortized; sums to the overhead):")
        for bucket in sorted(decomposed):
            lines.append(
                f"  {bucket:<8} "
                f"{100.0 * decomposed[bucket] / native.cycles:+6.2f}% "
                f"({decomposed[bucket]:+.1f} cycles)")
        standalone = sum(profiler.standalone.values())
        if standalone > 0:
            hidden = max(0.0, 1.0 - overhead_cycles / standalone)
            lines.append(
                f"guard cost hidden by overlap: {100.0 * hidden:.1f}% "
                f"of {standalone:.1f} standalone cycles")
    _write_text(args.out, "\n".join(lines) + "\n")
    return code


def _cmd_cluster(args) -> int:
    from ..cluster import Cluster
    from ..elf.format import write_elf
    from ..toolchain import compile_lfi
    from ..workloads.rtlib import busy_program

    distinct = max(1, min(args.distinct, args.jobs))
    images = [
        write_elf(compile_lfi(busy_program(v, args.target),
                              options=_options_from(args)).elf)
        for v in range(distinct)
    ]
    with Cluster(workers=args.workers, warm_spawn=not args.cold,
                 engine=_engine_from(args)) as cluster:
        for i in range(args.jobs):
            cluster.submit(images[i % distinct])
        results = cluster.drain()
        report = cluster.metrics_report()
        fleet = cluster.fleet_report()
    codes = [r.exit_code for r in results]
    expected = [i % distinct for i in range(args.jobs)]
    print(f"[{args.jobs} jobs on {args.workers} worker(s): "
          f"warm {fleet['warm_hits']}/{fleet['warm_hits'] + fleet['warm_misses']}, "
          f"restarts {fleet['restarts']}]", file=sys.stderr)
    if args.out not in (None, "-"):
        with open(args.out, "w") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)
    if codes != expected:
        print(f"FAILED: exit codes {codes} != expected {expected}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json as _json

    from ..obs import prometheus_exposition, validate_exposition
    from ..serve import (
        Gateway,
        demo_loads,
        demo_policies,
        load_config,
        render_report,
        run_loadgen,
    )

    if args.config:
        try:
            config = _json.loads(_read_text(args.config))
        except _json.JSONDecodeError as exc:
            raise ReproError(
                f"config {args.config}: {exc}") from None
        gateway_kwargs, policies, loads, duration = load_config(config)
    else:
        gateway_kwargs = {"lanes": 4, "checkpoint_interval": 2000}
        policies, loads, duration = demo_policies(), demo_loads(), 1.0
    if args.duration is not None:
        duration = args.duration
    if args.lanes is not None:
        gateway_kwargs["lanes"] = args.lanes

    gateway = Gateway(policies, seed=args.seed,
                      engine=_engine_from(args), **gateway_kwargs)
    results = run_loadgen(gateway, loads, duration, seed=args.seed)
    ok = sum(1 for r in results if r.status == "ok")
    print(f"[{len(results)} requests over {duration:g} virtual s on "
          f"{gateway_kwargs['lanes']} lane(s): {ok} ok, "
          f"{len(results) - ok} shed]", file=sys.stderr)
    _write_text(args.out, render_report(results, policies))
    if args.metrics_out:
        gateway.report()  # refresh the lane/queue gauges
        exposition = prometheus_exposition(gateway.hub)
        problems = validate_exposition(exposition)
        for problem in problems[:10]:
            print(f"invalid exposition: {problem}", file=sys.stderr)
        if problems:
            return 1
        with open(args.metrics_out, "w") as handle:
            handle.write(exposition)
    return 0


def _checkpoint_image(args):
    """The ELF image a checkpoint/migrate command operates on."""
    if args.bench:
        from ..workloads.spec import arena_bss_size, build_benchmark

        asm = build_benchmark(args.input, target_instructions=args.target)
        return compile_lfi(asm, options=_options_from(args),
                           bss_size=arena_bss_size(args.input)).elf
    with open(args.input, "rb") as handle:
        return read_elf(handle.read())


def _cmd_checkpoint(args) -> int:
    from ..checkpoint import Checkpoint, capture_job, restore_job

    image = _checkpoint_image(args)

    if args.restore:
        with open(args.restore, "rb") as handle:
            ckpt = Checkpoint.from_bytes(handle.read())
        runtime = Runtime(model=None, timeslice=args.timeslice,
                          engine=_engine_from(args))
        proc = restore_job(runtime, ckpt)
        runtime.run_bounded(proc, args.max_insts)
        sys.stdout.write(runtime.stdout_of(proc))
        print(f"[resumed at {ckpt.consumed_instructions}, exit "
              f"{proc.exit_code}, {proc.instructions} instructions total]",
              file=sys.stderr)
        return proc.exit_code or 0

    runtime = Runtime(model=None, timeslice=args.timeslice,
                      engine=_engine_from(args))
    proc = runtime.spawn(image)
    done = runtime.run_bounded(proc, args.point)
    ckpt = capture_job(runtime, proc,
                       consumed_instructions=runtime.machine.instret,
                       consumed_cycles=runtime.machine.cycles)
    blob = ckpt.to_bytes()
    state = "exited" if done else "paused"
    print(f"[{state} at {runtime.machine.instret} instructions: "
          f"{len(ckpt.procs)} process(es), {ckpt.total_pages} page(s), "
          f"{len(blob)} bytes, digest {ckpt.digest()[:16]}]",
          file=sys.stderr)
    if args.save:
        with open(args.save, "wb") as handle:
            handle.write(blob)
    if args.verify:
        from ..fuzz.differential import check_checkpoint

        findings = check_checkpoint(image, points=(args.point,),
                                    budget=args.max_insts,
                                    timeslice=args.timeslice)
        for finding in findings:
            print(finding.line(), file=sys.stderr)
        if findings:
            print(f"FAILED: {len(findings)} finding(s)", file=sys.stderr)
            return 1
        print("VERIFIED: split run byte-identical to the uninterrupted "
              "run", file=sys.stderr)
    return 0


def _cmd_migrate(args) -> int:
    from ..cluster import Cluster
    from ..elf.format import write_elf
    from ..workloads.rtlib import busy_program

    images = [
        write_elf(compile_lfi(busy_program(v, args.target),
                              options=_options_from(args)).elf)
        for v in range(max(1, min(args.distinct, args.jobs)))
    ]
    batch = [images[i % len(images)] for i in range(args.jobs)]

    def run(workers, migrate):
        with Cluster(workers=workers, seed=args.seed,
                     checkpoint_interval=args.interval,
                     engine=_engine_from(args)) as cluster:
            for program in batch:
                cluster.submit(program)
            if migrate:
                cluster.migrate(0, 1)
            results = cluster.drain()
            return ([r.deterministic_key() for r in results],
                    cluster.metrics_report(), cluster.fleet_report())

    reference, ref_report, _ = run(1, migrate=False)
    migrated, mig_report, fleet = run(max(2, args.workers), migrate=True)
    print(f"[{args.jobs} jobs, migrations {fleet['migrations']}, "
          f"checkpoints {fleet['checkpoints']}, "
          f"restores {fleet['restores']}]", file=sys.stderr)
    if args.out not in (None, "-"):
        with open(args.out, "w") as handle:
            handle.write(mig_report)
    if (reference, ref_report) != (migrated, mig_report):
        print("FAILED: migrated batch diverged from the single-worker "
              "reference", file=sys.stderr)
        return 1
    print("VERIFIED: migrated batch byte-identical to the single-worker "
          "reference", file=sys.stderr)
    return 0


def _cmd_disasm(args) -> int:
    with open(args.input, "rb") as handle:
        image = read_elf(handle.read())
    for segment in image.segments:
        if not segment.flags & 0x1:
            continue
        data = bytes(segment.data)
        for offset in range(0, len(data) - len(data) % 4, 4):
            word = int.from_bytes(data[offset:offset + 4], "little")
            address = segment.vaddr + offset
            inst = decode_word(word, address)
            text = str(inst) if inst is not None else "<undecodable>"
            print(f"{address:10x}:  {word:08x}   {text}")
    return 0


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _write_text(path: Optional[str], text: str) -> None:
    if path in (None, "-"):
        sys.stdout.write(text)
        return
    with open(path, "w") as handle:
        handle.write(text)


def _shared_parents():
    """The one spelling of the flags every analysis tool shares.

    ``rewrite``/``fuzz``/``trace``/``profile`` take the same ``--seed``,
    ``--out`` and ``--opt-level`` flags with the same defaults, built once
    here as argparse parent parsers (DESIGN.md §10).
    """
    out = argparse.ArgumentParser(add_help=False)
    out.add_argument("-o", "--out", "--output", dest="out", default="-",
                     metavar="PATH",
                     help="output destination ('-' for stdout)")
    seed = argparse.ArgumentParser(add_help=False)
    seed.add_argument("--seed", type=int, default=0,
                      help="seed for randomized stages (same seed -> "
                           "byte-identical output)")
    opt = argparse.ArgumentParser(add_help=False)
    opt.add_argument("-O", "--opt-level", dest="opt_level", default="O2",
                     choices=sorted(_LEVELS),
                     help="rewriter optimization level (paper §6.1)")
    opt.add_argument("--no-exclusives", action="store_true",
                     help="disallow LL/SC (Spectre hardening, §7.1)")
    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument("--engine", dest="engine_kind",
                        default="superblock", choices=ENGINE_KINDS,
                        help="emulation engine for every runtime the "
                             "command creates")
    engine.add_argument("--fuel", type=int, default=None,
                        help="scheduler timeslice in instructions "
                             "(EngineConfig.fuel; default: the command's "
                             "own timeslice)")
    engine.add_argument("--block-cache-cap", type=int, default=None,
                        metavar="N",
                        help="flush the translated-block cache past N "
                             "blocks (default: unbounded)")
    engine.add_argument("--no-chaining", action="store_true",
                        help="disable superblock chaining (every block "
                             "returns to the dispatch loop)")
    engine.add_argument("--no-batch-abi", action="store_true",
                        help="reject RuntimeCall.BATCH with -ENOSYS")
    engine.add_argument("--speculation", action="store_true",
                        help="bounded-speculation emulator mode "
                             "(DESIGN.md §16); incompatible with per-step "
                             "probes (--probe, trace --sample)")
    engine.add_argument("--spec-seed", type=int, default=0, metavar="N",
                        help="branch predictor seed for --speculation")
    engine.add_argument("--spec-window", type=int, default=24, metavar="N",
                        help="max transient instructions per mispredict "
                             "window for --speculation")
    return out, seed, opt, engine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="LFI toolchain: rewrite, compile, verify, run, disasm",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    OUT, SEED, OPT, ENGINE = _shared_parents()

    p = sub.add_parser("rewrite", parents=[OUT, SEED, OPT],
                       help="insert SFI guards into assembly")
    p.add_argument("input", help="GNU assembly file ('-' for stdin)")
    p.add_argument("--stats", action="store_true",
                   help="print guard-site counts by class to stderr")
    p.set_defaults(func=_cmd_rewrite)

    p = sub.add_parser("compile", parents=[OPT],
                       help="assembly -> sandbox ELF")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--bss", type=int, default=0,
                   help="extra zero-initialized memory (bytes)")
    p.add_argument("--native", action="store_true",
                   help="skip the rewriter (unsandboxed baseline)")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("verify", help="statically verify an ELF")
    p.add_argument("input")
    p.add_argument("--no-exclusives", action="store_true")
    p.add_argument("--no-loads", action="store_true",
                   help="store-only isolation policy")
    p.add_argument("--max-errors", type=int, default=10)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("run", parents=[ENGINE],
                       help="run an ELF in the LFI runtime")
    p.add_argument("input")
    p.add_argument("--machine", choices=sorted(MACHINE_MODELS),
                   help="enable the cycle model for this machine")
    p.add_argument("--unsafe-no-verify", action="store_true",
                   help="skip verification (trusted native code)")
    p.add_argument("--no-loads", action="store_true")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--max-insts", type=int, default=None)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "fuzz", parents=[OUT, SEED, OPT],
        help="differential fuzzing of the rewriter/verifier/emulator",
    )
    p.add_argument("--budget", type=int, default=100,
                   help="number of generated programs (0 = corpus only)")
    p.add_argument("--mutants", type=int, default=4,
                   help="mutants probed per generated program")
    p.add_argument("--corpus", default=None,
                   help="corpus directory to replay (default tests/corpus)")
    p.add_argument("--skip-corpus", action="store_true",
                   help="skip the corpus replay before the campaign")
    p.add_argument("--save-corpus", default=None, metavar="DIR",
                   help="persist shrunk failures into DIR")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-iteration stdout")
    p.add_argument("--checkpoint-points", type=int, default=0,
                   metavar="N",
                   help="also run the checkpoint-transparency oracle at "
                        "N seeded interruption points per program")
    p.set_defaults(func=_cmd_fuzz)

    def _add_workload_args(p) -> None:
        p.add_argument("input", help="sandbox ELF path, or a Table 4 "
                                     "benchmark name with --bench")
        p.add_argument("--bench", action="store_true",
                       help="treat INPUT as a workload name "
                            "(e.g. 505.mcf) and compile it first")
        p.add_argument("--machine", choices=sorted(MACHINE_MODELS),
                       default="apple-m1",
                       help="cycle model to run under (required for "
                            "cycle-based timestamps)")
        p.add_argument("--target", type=int, default=60_000,
                       help="target instruction count for --bench")
        p.add_argument("--unsafe-no-verify", action="store_true")
        p.add_argument("--no-loads", action="store_true")
        p.add_argument("--max-insts", type=int, default=None)

    p = sub.add_parser(
        "trace", parents=[OUT, SEED, OPT, ENGINE],
        help="run a workload with the obs tracer; export a Chrome trace",
    )
    _add_workload_args(p)
    p.add_argument("--sample", type=int, default=0, metavar="N",
                   help="also sample every Nth retired instruction")
    p.add_argument("--validate", action="store_true",
                   help="check the exported JSON against the trace schema")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="also write a metrics snapshot to PATH")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile", parents=[OUT, SEED, OPT, ENGINE],
        help="attribute cycles to app vs guard classes (Table 4 decomposed)",
    )
    _add_workload_args(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "cluster", parents=[OUT, SEED, OPT, ENGINE],
        help="run a synthetic job batch on the sharded cluster runtime",
    )
    p.add_argument("--workers", type=int, default=2,
                   help="number of OS worker processes")
    p.add_argument("--jobs", type=int, default=8,
                   help="jobs in the batch")
    p.add_argument("--distinct", type=int, default=4,
                   help="distinct images in the batch (warm-spawn reuse)")
    p.add_argument("--target", type=int, default=20_000,
                   help="target instructions per job")
    p.add_argument("--cold", action="store_true",
                   help="disable warm spawn (cold load+verify per job)")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser(
        "checkpoint", parents=[OPT, ENGINE],
        help="pause a sandbox, snapshot it, optionally verify the resume",
    )
    p.add_argument("input", help="sandbox ELF path, or a Table 4 "
                                 "benchmark name with --bench")
    p.add_argument("--bench", action="store_true",
                   help="treat INPUT as a workload name and compile it")
    p.add_argument("--target", type=int, default=60_000,
                   help="target instruction count for --bench")
    p.add_argument("--point", type=int, default=20_000,
                   help="instructions to run before checkpointing")
    p.add_argument("--timeslice", type=int, default=1_000,
                   help="scheduler timeslice (determinism-neutral)")
    p.add_argument("--max-insts", type=int, default=20_000_000,
                   help="budget for full runs (reference and resume)")
    p.add_argument("--save", metavar="PATH",
                   help="write the serialized checkpoint to PATH")
    p.add_argument("--restore", metavar="PATH",
                   help="restore a saved checkpoint and run to completion "
                        "instead of taking one")
    p.add_argument("--verify", action="store_true",
                   help="differentially verify: the split run must be "
                        "byte-identical to the uninterrupted run")
    p.set_defaults(func=_cmd_checkpoint)

    p = sub.add_parser(
        "migrate", parents=[OUT, SEED, OPT, ENGINE],
        help="live-migrate a job mid-batch and verify byte-identity",
    )
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes in the migrated run")
    p.add_argument("--jobs", type=int, default=4,
                   help="jobs in the batch")
    p.add_argument("--distinct", type=int, default=2,
                   help="distinct images in the batch")
    p.add_argument("--target", type=int, default=300_000,
                   help="target instructions per job")
    p.add_argument("--interval", type=int, default=20_000,
                   help="checkpoint interval (instructions)")
    p.set_defaults(func=_cmd_migrate)

    p = sub.add_parser(
        "serve", parents=[OUT, SEED, ENGINE],
        help="serve a seeded open-loop load through the admission gateway",
    )
    p.add_argument("--config", metavar="PATH",
                   help="JSON tenant policy/load config ('-' for stdin; "
                        "default: the built-in 8-tenant demo)")
    p.add_argument("--duration", type=float, default=None,
                   help="virtual seconds of offered load "
                        "(overrides the config)")
    p.add_argument("--lanes", type=int, default=None,
                   help="serving lanes (overrides the config)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the validated Prometheus exposition to PATH")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "prove", parents=[OUT, SEED],
        help="exhaustively prove the verifier sound over encoding classes",
    )
    p.add_argument("--class", dest="classes", action="append",
                   metavar="NAME",
                   help="instruction class to prove (repeatable; "
                        "default: every default-tier class)")
    p.add_argument("--all", action="store_true",
                   help="prove the nightly-tier classes too")
    p.add_argument("--list", action="store_true",
                   help="list known classes and exit")
    p.add_argument("--mode", choices=("auto", "shapes", "words"),
                   default="auto",
                   help="enumeration strategy (auto: symbolic shapes for "
                        "large classes)")
    p.add_argument("--policy", choices=("sandbox", "store-only", "both"),
                   default="both",
                   help="verifier policy/policies to prove under")
    p.add_argument("--limit", type=int, default=None,
                   help="truncate each class after N shapes/words "
                        "(report marked TRUNCATED)")
    p.add_argument("--cross-check", type=int, default=0, metavar="N",
                   help="re-analyze N seeded shapes concretely and "
                        "compare against the symbolic verdicts")
    p.add_argument("--probe", type=int, default=0, metavar="N",
                   help="single-step N accepted words on the emulator "
                        "and check the abstract hulls")
    p.add_argument("--save-corpus", default=None, metavar="DIR",
                   help="persist shrunk counterexamples into DIR")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON reports")
    p.set_defaults(func=_cmd_prove)

    p = sub.add_parser("disasm", help="disassemble an ELF text segment")
    p.add_argument("input")
    p.set_defaults(func=_cmd_disasm)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and run; tool failures become one-line diagnostics.

    Anything the package itself raises (:class:`ReproError` — malformed
    ELF, verification failure, cluster exhaustion, ...) or the OS raises
    (unreadable input, unwritable ``-o`` target) exits 1 with a single
    ``repro.tools: error:`` line instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"repro.tools: error: {exc}", file=sys.stderr)
        return 1

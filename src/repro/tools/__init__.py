"""Command-line tools mirroring the paper's artifact (`zyedidia/lfi`).

``python -m repro.tools <command>`` provides:

* ``rewrite`` — the assembly transformer (the artifact's ``lfi-clang``
  rewriting stage): ``.s`` in, sandboxed ``.s`` out;
* ``compile`` — assembly in, verified-ready ELF out;
* ``verify``  — the static verifier (``lfi-verify``);
* ``run``     — load and execute an ELF in the runtime (``lfi-run``);
* ``disasm``  — disassemble an ELF's text segment.
"""

from .cli import main

__all__ = ["main"]

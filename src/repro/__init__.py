"""Reproduction of "Lightweight Fault Isolation" (Yedidia, ASPLOS 2024).

The most common entry points, re-exported for convenience::

    from repro import compile_lfi, Runtime, O2, verify_elf

    out = compile_lfi(asm_text, options=O2)   # rewrite -> assemble -> ELF
    verify_elf(out.elf).raise_if_failed()     # the trusted linear pass
    runtime = Runtime()
    proc = runtime.spawn(out.elf)             # load into a 4GiB slot
    runtime.run_until_exit(proc)

See README.md for the architecture overview, DESIGN.md for the system
inventory and substitution map, and EXPERIMENTS.md for paper-vs-measured
results.
"""

from .engine import ENGINE_KINDS, EngineConfig, SpeculationConfig
from .errors import ConfigError, ReproError
from .core import (
    O0,
    O1,
    O2,
    O2_NO_LOADS,
    RewriteOptions,
    VerificationError,
    Verifier,
    VerifierPolicy,
    rewrite_assembly,
    rewrite_program,
    verify_elf,
    verify_text,
)
from .checkpoint import (
    Checkpoint,
    CheckpointSession,
    capture_job,
    restore_job,
)
from .runtime import Runtime, RuntimeCall
from .toolchain import CompileOutput, compile_lfi, compile_native

__version__ = "1.0.0"

__all__ = [
    "ENGINE_KINDS",
    "EngineConfig",
    "SpeculationConfig",
    "ConfigError",
    "ReproError",
    "O0",
    "O1",
    "O2",
    "O2_NO_LOADS",
    "RewriteOptions",
    "VerificationError",
    "Verifier",
    "VerifierPolicy",
    "rewrite_assembly",
    "rewrite_program",
    "verify_elf",
    "verify_text",
    "Runtime",
    "RuntimeCall",
    "Checkpoint",
    "CheckpointSession",
    "capture_job",
    "restore_job",
    "CompileOutput",
    "compile_lfi",
    "compile_native",
    "__version__",
]

#!/usr/bin/env python3
"""Elastic cluster: crash recovery, live migration, and resizing.

``repro.checkpoint`` (DESIGN.md §12) gives the cluster a deterministic
snapshot of any running job.  Workers checkpoint long jobs every
``checkpoint_interval`` consumed instructions and ship the blobs to the
coordinator, which turns one primitive into three capabilities:

* **crash recovery** — a worker killed mid-job is restarted with
  exponential backoff and the job resumes from its last checkpoint
  (re-executed work is bounded by the interval), with results
  byte-identical to an undisturbed run;
* **live migration** — ``cluster.migrate(job_id, worker)`` asks the
  owning worker to yield a checkpoint and re-dispatches it elsewhere;
* **elastic resize** — ``cluster.resize(n)`` grows the pool with fresh
  workers or drains the highest-numbered ones, checkpointing their
  in-flight jobs onto the survivors.

The proof in every scene is the same: deterministic result keys and the
merged metrics report match the 1-worker reference byte for byte.

Run:  python examples/elastic_cluster.py
"""

from repro.cluster import Cluster
from repro.elf.format import write_elf
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program

KW = dict(checkpoint_interval=50_000, timeslice=10_000)


def build_batch():
    long = write_elf(compile_lfi(busy_program(7, 400_000)).elf)
    short = write_elf(compile_lfi(busy_program(3, 4_000)).elf)
    return [long, short, long, short, long]


def run_batch(workers, hook=None, **kwargs):
    with Cluster(workers=workers, **KW, **kwargs) as cluster:
        for program in build_batch():
            cluster.submit(program)
        if hook is not None:
            hook(cluster)
        results = cluster.drain()
        return ([r.deterministic_key() for r in results],
                cluster.metrics_report(), cluster.fleet_report())


def main():
    print("== reference: undisturbed batch on one worker ==")
    ref_keys, ref_report, _ = run_batch(workers=1)
    print(f"  {len(ref_keys)} jobs, exit codes {[k[1] for k in ref_keys]}")

    print("\n== crash recovery: kill worker 0 on its first job ==")
    keys, report, fleet = run_batch(workers=2, chaos={0: 0})
    print(f"  restarts={fleet['restarts']}  "
          f"checkpoints={fleet['checkpoints']}  "
          f"restores={fleet['restores']}")
    for line in fleet["incidents"]:
        print(f"    {line}")
    print(f"  results byte-identical to reference: "
          f"{(keys, report) == (ref_keys, ref_report)}")

    print("\n== live migration: move job 0 from worker 0 to worker 1 ==")
    keys, report, fleet = run_batch(
        workers=2, hook=lambda c: c.migrate(0, 1))
    print(f"  migrations={fleet['migrations']}  "
          f"restores={fleet['restores']}")
    print(f"  results byte-identical to reference: "
          f"{(keys, report) == (ref_keys, ref_report)}")

    print("\n== elastic resize: grow 2 -> 4 mid-batch, shrink to 1 ==")

    def resize_hook(cluster):
        cluster.resize(4)   # scale out while jobs are in flight
        cluster.resize(1)   # drain three workers; jobs checkpoint over

    keys, report, fleet = run_batch(workers=2, hook=resize_hook)
    print(f"  final pool size={fleet['workers']}  "
          f"checkpoints={fleet['checkpoints']}")
    print(f"  results byte-identical to reference: "
          f"{(keys, report) == (ref_keys, ref_report)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scale-out cluster: sharded workers, warm spawn, crash recovery.

``repro.cluster`` (DESIGN.md §11) partitions a batch of sandbox jobs
across N OS worker processes, each owning a private superblock runtime.
This example demonstrates the three contract points:

* **determinism** — the same batch on 1 worker and on 4 workers yields
  byte-identical results (exit codes, stdout, fault kinds, per-sandbox
  metrics counters);
* **warm spawn** — each worker verifies an image once and then spawns
  sandboxes as COW snapshot restores of a loaded template;
* **fault tolerance** — a worker killed mid-batch is restarted by the
  supervisor and its in-flight jobs re-dispatched; no result is lost.

Run:  python examples/cluster_throughput.py
"""

from repro.cluster import Cluster
from repro.elf.format import write_elf
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program

JOBS = 12
DISTINCT = 3


def build_batch():
    images = [
        write_elf(compile_lfi(busy_program(v, 8_000)).elf)
        for v in range(DISTINCT)
    ]
    return [images[i % DISTINCT] for i in range(JOBS)]


def run_batch(workers, **kwargs):
    with Cluster(workers=workers, **kwargs) as cluster:
        for program in build_batch():
            cluster.submit(program)
        results = cluster.drain()
        return ([r.deterministic_key() for r in results],
                cluster.metrics_report(), cluster.fleet_report())


def main():
    print("== determinism: same batch on 1 vs 4 workers ==")
    keys1, report1, fleet1 = run_batch(workers=1)
    keys4, report4, _ = run_batch(workers=4)
    print(f"  {JOBS} jobs, exit codes "
          f"{[k[1] for k in keys4]}")
    print(f"  1-worker == 4-worker results: {keys1 == keys4}")
    print(f"  merged metrics reports byte-identical: {report1 == report4}")

    print("\n== warm spawn: verify once, restore many ==")
    print(f"  {DISTINCT} distinct images, {JOBS} jobs on one worker -> "
          f"warm hits {fleet1['warm_hits']}, "
          f"cold loads {fleet1['warm_misses']}")

    print("\n== fault tolerance: kill worker 0 after its 2nd job ==")
    keys_chaos, _, fleet = run_batch(workers=2, chaos={0: 2})
    print(f"  results still identical to clean run: "
          f"{keys_chaos == keys1}")
    print(f"  restarts: {fleet['restarts']}")
    for line in fleet["incidents"]:
        print(f"    {line}")


if __name__ == "__main__":
    main()

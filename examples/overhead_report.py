#!/usr/bin/env python3
"""Mini evaluation: measure LFI overhead on a few benchmarks (Figure 3).

Uses the public perf API to run three SPEC stand-ins natively and under
LFI O0/O1/O2 on the Apple M1 cost model, then prints the overhead table —
a small-scale version of `benchmarks/bench_fig3_opt_levels.py`.

Run:  python examples/overhead_report.py  [target_instructions]
"""

import sys

from repro.core import O0, O1, O2
from repro.emulator import APPLE_M1
from repro.perf import (
    format_overhead_table,
    geomean,
    lfi_variant,
    measure_benchmark,
)

BENCHMARKS = ("541.leela", "519.lbm", "505.mcf")
VARIANTS = (
    lfi_variant(O0, "LFI O0"),
    lfi_variant(O1, "LFI O1"),
    lfi_variant(O2, "LFI O2"),
)


def main():
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    table = {}
    for name in BENCHMARKS:
        print(f"running {name} (native + {len(VARIANTS)} LFI levels, "
              f"~{target} instructions each)...")
        result = measure_benchmark(
            name, list(VARIANTS), APPLE_M1, target_instructions=target
        )
        table[name] = result["overheads"]

    print()
    print(format_overhead_table(
        table, columns=[v.name for v in VARIANTS],
        title="Overhead over native runtime (apple-m1 cost model)",
    ))
    o2_mean = geomean([row["LFI O2"] for row in table.values()])
    print(f"\nLFI O2 geomean on this subset: {o2_mean:.1f}% "
          f"(paper, full suite: 6.4% on M1)")
    print("leela is branchy unhoistable search (the paper's worst case); "
          "lbm and mcf are\nmemory-bound, which hides guard cost — "
          "the same shape as the paper's Figure 3.")


if __name__ == "__main__":
    main()

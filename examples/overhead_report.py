#!/usr/bin/env python3
"""Mini evaluation: measure LFI overhead on a few benchmarks (Figure 3).

Uses the public perf API to run three SPEC stand-ins natively and under
LFI O0/O1/O2 on the Apple M1 cost model, then prints the overhead table —
a small-scale version of `benchmarks/bench_fig3_opt_levels.py` — and
decomposes each O2 overhead into per-guard-class components with the obs
profiler (Table 4, taken apart).

Run:  python examples/overhead_report.py  [target_instructions]
"""

import sys

from repro.core import O0, O1, O2
from repro.emulator import APPLE_M1
from repro.obs import profile_workload
from repro.perf import (
    format_overhead_table,
    geomean,
    lfi_variant,
    measure_benchmark,
)

BENCHMARKS = ("541.leela", "519.lbm", "505.mcf")
VARIANTS = (
    lfi_variant(O0, "LFI O0"),
    lfi_variant(O1, "LFI O1"),
    lfi_variant(O2, "LFI O2"),
)


def main():
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    table = {}
    for name in BENCHMARKS:
        print(f"running {name} (native + {len(VARIANTS)} LFI levels, "
              f"~{target} instructions each)...")
        result = measure_benchmark(
            name, list(VARIANTS), APPLE_M1, target_instructions=target
        )
        table[name] = result["overheads"]

    print()
    print(format_overhead_table(
        table, columns=[v.name for v in VARIANTS],
        title="Overhead over native runtime (apple-m1 cost model)",
    ))
    o2_mean = geomean([row["LFI O2"] for row in table.values()])
    print(f"\nLFI O2 geomean on this subset: {o2_mean:.1f}% "
          f"(paper, full suite: 6.4% on M1)")
    print("leela is branchy unhoistable search (the paper's worst case); "
          "lbm and mcf are\nmemory-bound, which hides guard cost — "
          "the same shape as the paper's Figure 3.")

    print("\nO2 overhead decomposed by guard class "
          "(amortized; rows sum to the overhead):")
    classes = ("memory", "branch", "sp", "x30", "hoist", "other")
    print(f"{'benchmark':<12}" + "".join(f"{c:>9}" for c in classes)
          + f"{'total':>9}")
    for name in BENCHMARKS:
        report = profile_workload(name, options=O2, model=APPLE_M1,
                                  target_instructions=target)
        parts = report.decomposed_overhead_pct()
        row = "".join(f"{parts.get(c, 0.0):>8.2f}%" for c in classes)
        print(f"{name:<12}{row}{report.overhead_pct:>8.2f}%")


if __name__ == "__main__":
    main()

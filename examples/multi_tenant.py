#!/usr/bin/env python3
"""Multi-tenant serving: many sandboxes, one address space, fast switches.

The paper's motivating scenario (§1): cloud platforms running thousands of
short-lived untrusted programs need cheap isolation-domain switches.  This
example:

* spawns a batch of tenant sandboxes in one 48-bit address space
  (the scheme supports ~65,000 slots; we use a few dozen);
* runs them under preemptive scheduling (instruction-fuel timeslices
  standing in for ``setitimer`` alarms, §5.3);
* demonstrates the ~50-cycle direct-invoke ``yield`` between two
  cooperating sandboxes — microkernel-style IPC without hardware context
  switches;
* shows per-tenant filesystem policy (a denied directory).

Run:  python examples/multi_tenant.py
"""

from repro.emulator import APPLE_M1
from repro.memory import MAX_SANDBOXES_48BIT
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall


def tenant_source(tenant_id: int) -> str:
    """Each tenant computes something and reports via its exit code."""
    return prologue() + f"""
    movz x19, #{tenant_id}
    mov x1, #0
    movz x2, #5000
work:
    add x1, x1, x19
    subs x2, x2, #1
    b.ne work
""" + rtcall(RuntimeCall.YIELD) + """
    and x0, x19, #0xff
""" + rt_exit()


def batch_demo():
    print("== batch of tenants, one address space ==")
    runtime = Runtime(model=APPLE_M1, timeslice=2_000)
    tenants = [
        runtime.spawn(compile_lfi(tenant_source(i)).elf)
        for i in range(32)
    ]
    runtime.run()
    codes = [t.exit_code for t in tenants]
    print(f"  {len(tenants)} sandboxes finished "
          f"(address space supports {MAX_SANDBOXES_48BIT} slots)")
    print(f"  exit codes: {codes[:8]}... all correct: "
          f"{codes == list(range(32))}")
    switched = sum(1 for t in tenants if t.instructions > 2_000)
    print(f"  preemption interleaved {switched} tenants across timeslices")


def ipc_demo():
    print("\n== direct-invoke yield: microkernel-style IPC (§5.3) ==")
    runtime = Runtime(model=APPLE_M1)

    def pinger(other: int, rounds: int) -> str:
        return prologue() + f"""
    movz x27, #{rounds}
ping:
    mov x0, #{other}
""" + rtcall(RuntimeCall.YIELD_TO) + """
    subs x27, x27, #1
    b.ne ping
    mov x0, #0
""" + rt_exit()

    rounds = 300
    a = runtime.spawn(compile_lfi(pinger(2, rounds)).elf)
    b = runtime.spawn(compile_lfi(pinger(1, rounds)).elf)
    runtime.run()
    per_switch = runtime.cycles / (2 * rounds)
    print(f"  {2 * rounds} cross-sandbox calls, "
          f"{per_switch:.0f} cycles each "
          f"({per_switch / APPLE_M1.freq_ghz:.1f}ns at "
          f"{APPLE_M1.freq_ghz}GHz)")
    print("  (paper: ~50 cycles / 17ns; hardware-protection IPC floor: "
          "~400 cycles)")


def policy_demo():
    print("\n== per-runtime filesystem policy ==")
    runtime = Runtime()
    runtime.vfs.mkdir("/public")
    runtime.vfs.mkdir("/private")
    runtime.vfs.write_file("/public/data", b"ok")
    runtime.vfs.write_file("/private/key", b"secret")
    runtime.vfs.deny("/private")

    snoop = prologue() + """
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
""" + rtcall(RuntimeCall.OPEN) + """
    neg x0, x0
""" + rt_exit() + """
.rodata
path: .asciz "/private/key"
"""
    proc = runtime.spawn(compile_lfi(snoop).elf)
    errno_value = runtime.run_until_exit(proc)
    print(f"  open('/private/key') from a sandbox -> errno {errno_value} "
          f"(EACCES=13): {'denied' if errno_value == 13 else 'LEAKED'}")


def main():
    batch_demo()
    ipc_demo()
    policy_demo()


if __name__ == "__main__":
    main()

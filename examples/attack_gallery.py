#!/usr/bin/env python3
"""Attack gallery: what the verifier rejects, and what the guards contain.

Demonstrates the layers of LFI's security story:

1. the *static verifier* rejects machine code that could escape
   (paper §5.2's three properties);
2. code that passes verification is *dynamically confined*: wild pointers
   are forced back into the sandbox by the guards, and guard-region /
   permission traps kill only the offending sandbox; and
3. under the *speculative* threat model (DESIGN.md §16), the Spectre
   gallery attacks recover a secret byte through transiently-executed
   guards at every unhardened level — and leak exactly zero under the
   fence/mask hardened rewrites.

Run:  python examples/attack_gallery.py
"""

from repro.core import (
    O0,
    O2,
    O2_FENCE,
    O2_MASK,
    VerificationError,
    VerifierPolicy,
    verify_elf,
)
from repro.engine import SpeculationConfig
from repro.runtime import ProcessState, Runtime, RuntimeCall
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall
from repro.workloads.spectre import ATTACKS, measure_attack

REJECTED_ATTACKS = [
    ("raw out-of-sandbox store", "str x0, [x1]"),
    ("overwrite the sandbox base", "movz x21, #0"),
    ("corrupt the guard scratch register", "add x18, x18, #4096"),
    ("jump through an unguarded register", "br x0"),
    ("load the link register without re-guarding",
     "ldr x30, [sp, #8]\n ret"),
    ("direct system call", "mov x8, #221\n svc #0"),
    ("walk sp out of the sandbox",
     "sub sp, sp, #1008\n sub sp, sp, #1008\n str x0, [sp]"),
    ("sign-extended escape through the guard form",
     "ldr x0, [x21, w1, sxtw]"),
    ("scaled escape through the guard form",
     "ldr x0, [x21, w1, uxtw #3]"),
]


def demo_verifier_rejections():
    print("== layer 1: the static verifier ==")
    for title, body in REJECTED_ATTACKS:
        src = f".text\n.globl _start\n_start:\n {body}\n ret\n"
        elf = compile_native(src).elf  # malicious toolchain: no rewriter
        result = verify_elf(elf)
        status = "REJECTED" if not result.ok else "!! accepted !!"
        reason = result.violations[0].reason if result.violations else ""
        print(f"  [{status}] {title}")
        print(f"      {reason}")
        assert not result.ok


def demo_wild_pointer_confinement():
    print("\n== layer 2: guards confine verified code ==")
    runtime = Runtime()

    # An honest sandbox holding a secret.
    victim_src = prologue() + """
    adrp x1, secret
    add x1, x1, :lo12:secret
    movz x2, #0x5ec7
    str x2, [x1]
    mov x0, #0
""" + rt_exit() + """
.data
.balign 8
secret: .quad 0
"""
    victim = runtime.spawn(compile_lfi(victim_src).elf)
    runtime.run_until_exit(victim)

    # A verified-but-hostile sandbox forging the victim's address.  The
    # guard replaces the top 32 bits with its own base: it reads itself.
    attacker_src = prologue() + f"""
    adrp x1, secret
    add x1, x1, :lo12:secret
    movz x2, #{victim.layout.slot}, lsl #32
    orr x1, x1, x2             // absolute address inside the *victim*
    add x18, x21, w1, uxtw     // the guard
    ldr x0, [x18]
    and x0, x0, #0xffff
""" + rt_exit() + """
.data
.balign 8
secret: .quad 0
"""
    attacker = runtime.spawn(compile_native(attacker_src).elf, verify=True)
    stolen = runtime.run_until_exit(attacker)
    print(f"  victim secret:  0x5ec7 at "
          f"{victim.layout.base:#x}+data")
    print(f"  attacker read:  {stolen:#x}  "
          f"({'SECRET LEAKED!' if stolen == 0x5EC7 else 'own (zero) memory'})")
    assert stolen != 0x5EC7


def demo_trap_containment():
    print("\n== layer 3: traps kill only the offender ==")
    runtime = Runtime()
    good_src = prologue() + "    mov x0, #42\n" + rt_exit()
    good = runtime.spawn(compile_lfi(good_src).elf)

    # Verified code that drifts sp into a guard region: the next access
    # traps (this is exactly why the sp elision of §4.2 is safe).
    evil_src = prologue() + """
spin:
    sub sp, sp, #1008
    ldr x0, [sp]
    b spin
"""
    evil = runtime.spawn(compile_lfi(evil_src).elf)
    runtime.run()
    print(f"  honest sandbox exit code: {good.exit_code}")
    print(f"  evil sandbox: {evil.state} "
          f"(fault: {runtime.faults[0].kind} at "
          f"{runtime.faults[0].pc:#x})")
    assert good.exit_code == 42
    assert evil.state == ProcessState.ZOMBIE


def demo_spectre_gallery():
    print("\n== layer 4: the speculative threat model ==")
    spec = SpeculationConfig(seed=0)
    titles = {"pht": "Spectre-PHT (bounds-check bypass)",
              "rsb": "Spectre-RSB (return-stack underflow)"}
    for attack in sorted(ATTACKS):
        print(f"  {titles[attack]}:")
        for label, options in (("O0", O0), ("O2", O2),
                               ("O2+fence", O2_FENCE), ("O2+mask", O2_MASK)):
            result = measure_attack(attack, options=options, speculation=spec)
            recovered = "/".join(
                "none" if byte is None else f"{byte:#04x}"
                for byte in result.recovered)
            verdict = ("SECRET RECOVERED" if result.leakage
                       else "no leakage")
            print(f"    [{label:<8}] leakage={result.leakage} "
                  f"transient-recovered={recovered:<11} {verdict}")
            if options in (O2_FENCE, O2_MASK):
                assert result.leakage == 0
            else:
                assert result.leakage > 0
                assert result.recovered == result.secrets


def main():
    demo_verifier_rejections()
    demo_wild_pointer_confinement()
    demo_trap_containment()
    demo_spectre_gallery()
    print("\nAll attacks contained.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: sandbox a program end to end with the LFI toolchain.

Pipeline (paper §5): assembly from an off-the-shelf compiler
-> LFI rewriter (inserts guards) -> assembler -> ELF -> static verifier
-> runtime (loads it into a 4GiB sandbox slot and runs it).

Run:  python examples/quickstart.py
"""

from repro.core import O2, verify_elf
from repro.emulator import APPLE_M1
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall

# What Clang would emit for a small C program: compute a checksum over a
# buffer and print a message via the runtime (write to stdout).
PROGRAM = prologue() + """
    // checksum loop: sum bytes of the message
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #0               // sum
    mov x3, #0               // index
checksum:
    ldrb w4, [x1, x3]        // <- will get a zero-instruction guard
    cbz w4, done
    add x2, x2, x4
    add x3, x3, #1
    b checksum
done:
    mov x19, x2              // keep the checksum
    // write(1, msg, len): x3 holds the scanned length
    mov x0, #1
    mov x2, x3
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, x19
    and x0, x0, #0xff
""" + rt_exit() + """
.rodata
msg: .asciz "hello from inside an LFI sandbox!\\n"
"""


def main():
    # 1. Rewrite + assemble.  The rewriter is untrusted (like the
    #    compiler); its output is plain machine code.
    out = compile_lfi(PROGRAM, options=O2)
    stats = out.rewrite.stats
    print("== rewriter ==")
    print(f"  instructions: {stats.input_instructions} -> "
          f"{stats.output_instructions} "
          f"(+{100 * stats.code_size_overhead:.1f}% code size)")
    print(f"  zero-cost guards: {stats.zero_cost_guards}, "
          f"one-add guards: {stats.memory_guards}, "
          f"hoisted: {stats.hoisted_accesses}")

    # 2. Verify: the trusted linear pass over the machine code (§5.2).
    result = verify_elf(out.elf)
    print("== verifier ==")
    print(f"  {result.instructions} instructions, "
          f"{result.bytes_verified} bytes: "
          f"{'OK' if result.ok else result.violations}")
    result.raise_if_failed()

    # 3. Load into a sandbox slot and run under the cycle model.
    runtime = Runtime(model=APPLE_M1)
    proc = runtime.spawn(out.elf, verify=True)
    print("== runtime ==")
    print(f"  sandbox slot {proc.layout.slot} at {proc.layout.base:#x}")
    code = runtime.run_until_exit(proc)
    print(f"  stdout: {runtime.stdout_of(proc)!r}")
    print(f"  exit code (checksum & 0xff): {code}")
    print(f"  {runtime.machine.instret} instructions, "
          f"{runtime.cycles:.0f} modeled cycles "
          f"({runtime.virtual_ns():.0f}ns at {APPLE_M1.freq_ghz}GHz)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chaos-testing a multi-tenant host: seeded faults, zero escapes.

The paper claims one host process can run many mutually untrusted
sandboxes (§5.3).  This example *attacks* that claim deterministically:

* 8+ tenants (CPU workers, heap users, and a forker with pipe IPC) run
  under a :class:`Supervisor` with on-failure restart policies and
  per-sandbox resource quotas;
* a seeded :class:`FaultInjector` delivers hundreds of faults — text bit
  flips, post-verification guard corruption, transient runtime-call
  errors, trap storms — through the ``Machine.run`` / ``Runtime._dispatch``
  hook points;
* a :class:`ContainmentAuditor` attributes every guest store and walks
  mappings + register state after every fault.

The run must end with **zero containment violations and zero host-loop
crashes**, and the incident + delivery logs are bit-identical for the
same seed.

Run:  PYTHONPATH=src python examples/chaos_tenants.py
      PYTHONPATH=src python examples/chaos_tenants.py --faults 40  # smoke
"""

import argparse
import hashlib
import sys

from repro.robustness import (
    ContainmentAuditor,
    FaultInjector,
    RestartPolicy,
    Supervisor,
)
from repro.runtime import ResourceQuota, Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall


def worker_source(tenant_id: int) -> str:
    """CPU-bound tenant: compute, store progress, call the runtime."""
    return prologue() + f"""
    movz x19, #{tenant_id}
    movz x25, #6
outer:
    mov x1, #0
    movz x2, #300
inner:
    add x1, x1, x19
    subs x2, x2, #1
    b.ne inner
    adrp x3, cell
    add x3, x3, :lo12:cell
    str x1, [x3]
""" + rtcall(RuntimeCall.GETPID) + rtcall(RuntimeCall.YIELD) + """
    subs x25, x25, #1
    b.ne outer
""" + f"    mov x0, #{tenant_id}\n" + rt_exit() + """
.data
.balign 8
cell: .quad 0
"""


def heaper_source(tenant_id: int) -> str:
    """Heap tenant: grows the brk (exercising the page quota) and uses it.

    Defensive against injected transient errors: a negative brk result
    skips the heap accesses instead of dereferencing garbage."""
    return prologue() + """
    mov x0, #0
""" + rtcall(RuntimeCall.BRK) + """
    mov x19, x0
    tbnz x19, #63, done
    add x0, x19, #0x4000
""" + rtcall(RuntimeCall.BRK) + """
    tbnz x0, #63, done
    str x0, [x19]
    ldr x1, [x19]
""" + rtcall(RuntimeCall.YIELD) + """
done:
""" + f"    mov x0, #{tenant_id}\n" + rt_exit() + """
"""


def forker_source(tenant_id: int) -> str:
    """Fork + pipe tenant: the child blocks on a pipe read; if either side
    is killed mid-protocol the survivor deadlocks — which the supervisor
    must convert into a per-sandbox incident, not a host crash."""
    return prologue() + """
    adrp x19, fds
    add x19, x19, :lo12:fds
    mov x0, x19
""" + rtcall(RuntimeCall.PIPE) + """
    tbnz x0, #63, solo
""" + rtcall(RuntimeCall.FORK) + """
    tbnz x0, #63, solo
    cbnz x0, parent
    ldr w20, [x19]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x0, x20
    mov x2, #1
""" + rtcall(RuntimeCall.READ) + """
    mov x0, #0
""" + rt_exit() + """
parent:
    movz x2, #2000
pwork:
    subs x2, x2, #1
    b.ne pwork
    ldr w20, [x19, #4]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x3, #65
    strb w3, [x1]
    mov x0, x20
    mov x2, #1
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #0
""" + rtcall(RuntimeCall.WAIT) + """
solo:
""" + f"    mov x0, #{tenant_id}\n" + rt_exit() + """
.data
.balign 8
fds: .skip 8
buf: .skip 8
"""


def build_tenants(count: int):
    """Compile a diverse batch of tenant programs (one ELF each)."""
    elfs = []
    for i in range(count):
        if i % 4 == 3:
            src = forker_source(i)
        elif i % 4 == 2:
            src = heaper_source(i)
        else:
            src = worker_source(i)
        elfs.append(compile_lfi(src).elf)
    return elfs


def run_chaos(seed: int = 1234, tenants: int = 8, faults: int = 200,
              timeslice: int = 500, verbose: bool = False) -> dict:
    """One seeded chaos run; returns everything needed for assertions."""
    runtime = Runtime(timeslice=timeslice, stack_size=256 * 1024)
    auditor = ContainmentAuditor(runtime)
    supervisor = Supervisor(runtime, watchdog_fault_limit=6, auditor=auditor)
    injector = FaultInjector(runtime, seed=seed)

    policy = RestartPolicy(mode="on-failure", max_restarts=4,
                           backoff_base=1, backoff_factor=2)
    quota = ResourceQuota(max_mapped_pages=64, max_fds=12,
                          max_instructions=100_000)
    names = [f"tenant-{i}" for i in range(tenants)]
    for name, elf in zip(names, build_tenants(tenants)):
        supervisor.submit(name, elf, policy=policy, quota=quota)

    injector.arm(injector.plan(faults))

    waves = 0
    while waves == 0 or (injector.delivered_count < faults
                         and waves < 1000):
        if waves:
            for name in names:
                supervisor.revive(name)
        supervisor.run()
        waves += 1

    incident_log = supervisor.incident_log()
    delivery_log = injector.delivery_log()
    digest = hashlib.sha256(
        ("\n".join(incident_log) + "\n" + "\n".join(delivery_log))
        .encode()
    ).hexdigest()

    if verbose:
        for line in incident_log:
            print("  " + line)

    return {
        "runtime": runtime,
        "supervisor": supervisor,
        "injector": injector,
        "auditor": auditor,
        "incident_log": incident_log,
        "delivery_log": delivery_log,
        "digest": digest,
        "waves": waves,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--faults", type=int, default=200)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    print(f"== chaos: {args.tenants} tenants, {args.faults} seeded faults "
          f"(seed {args.seed}) ==")
    result = run_chaos(seed=args.seed, tenants=args.tenants,
                       faults=args.faults, verbose=args.verbose)

    injector = result["injector"]
    auditor = result["auditor"]
    supervisor = result["supervisor"]

    by_kind = {}
    for _seq, kind, _pid, _detail in injector.delivered:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    print(f"  delivered {injector.delivered_count} faults over "
          f"{result['waves']} wave(s): "
          + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())))

    inc_kinds = {}
    for inc in supervisor.incidents:
        inc_kinds[inc.kind] = inc_kinds.get(inc.kind, 0) + 1
    print(f"  {len(supervisor.incidents)} incidents: "
          + ", ".join(f"{k}={v}" for k, v in sorted(inc_kinds.items())))
    print(f"  containment audits: {auditor.audits}, "
          f"violations: {len(auditor.violations)}")
    print(f"  incident-log digest: {result['digest'][:16]}... "
          f"(rerun with the same seed to compare)")

    if auditor.violations:
        print("  CONTAINMENT VIOLATIONS:")
        for v in auditor.violations:
            print("    " + v.line())
        return 1
    print("  all faults contained; host loop never crashed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""fork() without page tables: the paper's single-address-space fork (§5.3).

Because every memory access goes through a guard that resets the top 32
bits of the pointer, sandbox pointers are really 32-bit offsets into
*whichever* 4GiB slot the process occupies.  The runtime can therefore
implement fork by copying the image to a new slot: stored pointers carry
stale top bits, but the guards rebase them on every access.

This example builds a linked list in the parent, forks, and has the child
walk the list — through pointers that literally point into the *parent's*
slot — summing the payloads correctly.

Run:  python examples/fork_in_one_address_space.py
"""

from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall

PROGRAM = prologue() + """
    // Build a 5-node linked list: node[i] = {next, payload=i+1}
    adrp x19, nodes
    add x19, x19, :lo12:nodes
    mov x2, #0
build:
    lsl x3, x2, #4
    add x3, x19, x3            // &node[i]
    add x4, x3, #16            // &node[i+1] (absolute: parent's slot!)
    str x4, [x3]
    add x5, x2, #1
    str x5, [x3, #8]
    add x2, x2, #1
    cmp x2, #5
    b.ne build
    str xzr, [x3]              // terminate the list

""" + rtcall(RuntimeCall.FORK) + """
    cbnz x0, parent

    // ----- child: walk the list through the stale parent pointers -----
    adrp x1, nodes
    add x1, x1, :lo12:nodes
    mov x2, #0
walk:
    ldr x3, [x1, #8]           // payload
    add x2, x2, x3
    ldr x1, [x1]               // next (top 32 bits: the PARENT's base!)
    cbnz x1, walk              // the guard rebases it on each access
    mov x0, x2                 // 1+2+3+4+5 = 15
""" + rt_exit() + """

parent:
    adrp x1, status
    add x1, x1, :lo12:status
    mov x0, x1
""" + rtcall(RuntimeCall.WAIT) + """
    adrp x1, status
    add x1, x1, :lo12:status
    ldr w0, [x1]               // child's exit status
""" + rt_exit() + """
.data
.balign 16
nodes:  .skip 96
status: .skip 8
"""


def main():
    runtime = Runtime()
    parent = runtime.spawn(compile_lfi(PROGRAM).elf)
    runtime.run()

    child = next(
        (p for p in runtime.processes.values() if p.parent == parent.pid),
        None,
    )
    print("== single-address-space fork ==")
    print(f"  parent slot: {parent.layout.slot} "
          f"(base {parent.layout.base:#x})")
    if child is not None:
        print(f"  child slot:  {child.layout.slot} "
              f"(base {child.layout.base:#x}) — a fresh 4GiB region")
    print(f"  child walked the list through pointers aimed at the "
          f"parent's slot")
    print(f"  parent exit code (child's list sum): {parent.exit_code} "
          f"(expected 15)")
    assert parent.exit_code == 15


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Always-on serving: admission control, priorities, policy hot-reload.

``repro.serve`` (DESIGN.md §14) turns the batch cluster into a gateway
that keeps answering under load.  This example drives the built-in
8-tenant demo fleet — two gold tenants (priority 0, 50 ms SLA), three
silver (priority 1), three bronze (priority 2) — with seeded open-loop
Poisson traffic for two virtual seconds, and shows the three contract
points:

* **bounded admission** — tenant ``bronze-3`` offers ~8x the rate its
  token bucket allows; the gateway throttles it with typed rejections
  while every SLA-bearing tenant stays within its target;
* **policy hot-reload** — mid-run, ``gold-1`` gets a tighter
  instruction quota under a monotonic version token; the running guest
  picks it up at its next chunk boundary without restarting (same pid,
  same slot), and a stale token is refused deterministically;
* **determinism** — the same seed replays the entire serving schedule
  (admission log, per-tenant report, Prometheus exposition)
  byte-identically.

Run:  python examples/serve_loadgen.py
"""

from repro.elf.format import write_elf
from repro.obs import prometheus_exposition, validate_exposition
from repro.serve import (
    Gateway,
    TenantPolicy,
    demo_loads,
    demo_policies,
    render_report,
    run_loadgen,
)
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program

SEED = 2026
DURATION = 2.0


def serve_once():
    gateway = Gateway(demo_policies(), lanes=4, checkpoint_interval=2000,
                      seed=SEED)
    # One long gold request (~40 ms of virtual time) arrives just before
    # the reload, so the new policy provably lands on a *running* guest.
    long_image = write_elf(compile_lfi(busy_program(9, 40_000)).elf)
    long_id = gateway.offer("gold-1", long_image, at=0.95)
    tightened = TenantPolicy(priority=0, rate=40.0, burst=8.0,
                             queue_limit=16, sla_s=0.05,
                             quota={"max_instructions": 45_000})
    gateway.reload("gold-1", tightened, token=1, at=0.97)
    # A duplicate of the same deploy arriving late: its token (still 1)
    # no longer advances the version, so it is refused.
    gateway.reload("gold-1", tightened, token=1, at=1.1)
    results = run_loadgen(gateway, demo_loads(), DURATION, seed=SEED)
    return gateway, results, long_id


def main():
    print("== 8 tenants, 4 lanes, 2 virtual seconds of open-loop load ==")
    gateway, results, long_id = serve_once()
    print(render_report(results, demo_policies()))

    shed = [r for r in results if r.status == "rejected"]
    misbehaving = [r for r in shed if r.tenant == "bronze-3"]
    print(f"shed {len(shed)} requests ({len(misbehaving)} from the "
          f"misbehaving bronze-3), all with typed reasons")

    print("\n== policy hot-reload without guest restart ==")
    applied = [line for line in gateway.log if " apply-policy " in line]
    stale = [line for line in gateway.log if " reload-stale " in line]
    long_result = next(r for r in results if r.request_id == long_id)
    for line in applied[:3]:
        print(f"  {line}")
    print(f"  stale reload refused: {stale[0] if stale else 'MISSING'}")
    reload_ok = (len(applied) == 1
                 and f"pid={long_result.pid}" in applied[0]
                 and f"slot={hex(long_result.slot)}" in applied[0]
                 and long_result.status == "ok"
                 and long_result.exit_code == 9)
    print(f"  guest kept pid {long_result.pid} / slot "
          f"{hex(long_result.slot)} across the reload and finished "
          f"cleanly: {reload_ok}")

    print("\n== determinism: replay under the same seed ==")
    gateway2, results2, _ = serve_once()
    same_log = gateway.log == gateway2.log
    same_results = ([r.deterministic_key() for r in results]
                    == [r.deterministic_key() for r in results2])
    print(f"  admission logs byte-identical: {same_log}")
    print(f"  results byte-identical: {same_results}")

    gateway.report()
    exposition = prometheus_exposition(gateway.hub)
    problems = validate_exposition(exposition)
    print(f"\nPrometheus exposition: {len(exposition.splitlines())} lines, "
          f"{len(problems)} validation problem(s)")
    if not (same_log and same_results and reload_ok and not problems):
        raise SystemExit(1)


if __name__ == "__main__":
    main()

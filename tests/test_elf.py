"""ELF writer/reader tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.elf import (
    ElfError,
    ElfImage,
    ElfSegment,
    PF_R,
    PF_W,
    PF_X,
    build_elf,
    read_elf,
    write_elf,
)


def roundtrip(image):
    return read_elf(write_elf(image))


class TestFormat:
    def test_roundtrip_basic(self):
        image = ElfImage(
            entry=0x40000,
            segments=[
                ElfSegment(0x40000, b"\x1f\x20\x03\xd5", 4, PF_R | PF_X),
                ElfSegment(0x80000, b"hello", 16, PF_R | PF_W),
            ],
        )
        out = roundtrip(image)
        assert out.entry == 0x40000
        assert len(out.segments) == 2
        assert out.segments[0].data == b"\x1f\x20\x03\xd5"
        assert out.segments[0].flags == PF_R | PF_X
        assert out.segments[1].memsz == 16

    def test_magic_checked(self):
        with pytest.raises(ElfError):
            read_elf(b"NOPE" + bytes(100))

    def test_truncated(self):
        with pytest.raises(ElfError):
            read_elf(b"\x7fELF")

    def test_memsz_validation(self):
        with pytest.raises(ElfError):
            ElfSegment(0, b"123456", 2, PF_R)

    def test_text_property(self):
        image = ElfImage(
            entry=0,
            segments=[
                ElfSegment(0x1000 * 16, b"abcd", 4, PF_R | PF_X),
                ElfSegment(0x2000 * 16, b"data", 4, PF_R | PF_W),
            ],
        )
        assert image.text.vaddr == 0x1000 * 16

    def test_segment_containing(self):
        seg = ElfSegment(0x4000, b"", 0x1000, PF_R | PF_W)
        image = ElfImage(entry=0, segments=[seg])
        assert image.segment_containing(0x4800) is seg
        with pytest.raises(ElfError):
            image.segment_containing(0x9000)

    @given(
        st.integers(min_value=0, max_value=2**48 - 1),
        st.binary(min_size=0, max_size=256),
        st.integers(min_value=0, max_value=1024),
    )
    @settings(max_examples=50)
    def test_property_roundtrip(self, entry, data, extra):
        image = ElfImage(
            entry=entry,
            segments=[ElfSegment(0x4000, data, len(data) + extra, PF_R)],
        )
        out = roundtrip(image)
        assert out.entry == entry
        assert out.segments[0].data == data
        assert out.segments[0].memsz == len(data) + extra


class TestBuilder:
    SRC = """
    .text
_start:
    mov x0, #7
    ret
    .rodata
msg: .asciz "hi"
    .data
counter: .quad 5
    """

    def test_build_from_assembly(self):
        image = assemble(parse_assembly(self.SRC))
        elf = build_elf(image)
        flags = {seg.flags for seg in elf.segments}
        assert PF_R | PF_X in flags  # text
        assert PF_R in flags  # rodata
        assert PF_R | PF_W in flags  # data
        assert elf.entry == image.symbols["_start"]

    def test_bss_extension(self):
        image = assemble(parse_assembly(self.SRC))
        elf = build_elf(image, bss_size=0x8000)
        bss = [s for s in elf.segments if s.memsz > s.filesz]
        assert bss and bss[0].memsz - bss[0].filesz == 0x8000

    def test_roundtrip_through_bytes(self):
        image = assemble(parse_assembly(self.SRC))
        elf = roundtrip(build_elf(image))
        text = elf.text
        assert len(text.data) == 8  # two instructions

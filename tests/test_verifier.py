"""Verifier tests: every class of attack the paper's §5.2 rules must stop.

The attack programs are assembled directly (bypassing the rewriter, as a
malicious toolchain would) and must be rejected with the right reason.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.core import (
    O2,
    VerificationError,
    Verifier,
    VerifierPolicy,
    rewrite_program,
    verify_elf,
    verify_text,
)
from repro.elf import build_elf


def verify_src(src, policy=None):
    image = assemble(parse_assembly(src))
    return verify_text(bytes(image.text.data), image.text.base, policy)


def assert_rejected(src, fragment, policy=None):
    result = verify_src(src, policy)
    assert not result.ok, f"expected rejection: {src!r}"
    reasons = " | ".join(v.reason for v in result.violations)
    assert fragment in reasons, f"wanted {fragment!r} in {reasons!r}"


def assert_accepted(src, policy=None):
    result = verify_src(src, policy)
    assert result.ok, "; ".join(str(v) for v in result.violations)


class TestUnsafeAddressing:
    def test_naked_load(self):
        assert_rejected("ldr x0, [x1]", "unguarded base")

    def test_naked_store(self):
        assert_rejected("str x0, [x1, #8]", "unguarded base")

    def test_naked_pair(self):
        assert_rejected("ldp x0, x1, [x2]", "unguarded base")

    def test_register_offset_from_sp(self):
        assert_rejected("ldr x0, [sp, x1]", "register-offset addressing from sp")

    def test_register_offset_from_scratch(self):
        assert_rejected("ldr x0, [x18, x1]", "register-offset addressing")

    def test_writeback_on_scratch(self):
        assert_rejected("ldr x0, [x18], #8", "writeback would modify")

    def test_writeback_on_hoist_register(self):
        assert_rejected("ldr x0, [x23, #8]!", "writeback would modify")

    def test_x21_sxtw_escape(self):
        # sxtw can go negative: addr = x21 + sx(w1) can exit the sandbox.
        assert_rejected("ldr x0, [x21, w1, sxtw]", "unsafe extend")

    def test_x21_shifted_uxtw_escape(self):
        # uxtw #3 reaches 8 * 4GiB past the base.
        assert_rejected("ldr x0, [x21, w1, uxtw #3]", "unsafe extend")

    def test_store_through_table(self):
        assert_rejected("str x0, [x21, #8]", "read-only")

    def test_safe_forms_accepted(self):
        assert_accepted(
            """
            ldr x0, [x21, w1, uxtw]
            str x0, [x21, w2, uxtw]
            ldr x0, [x18]
            ldr x0, [x18, #32]
            str x0, [x23, #8]
            ldr x0, [x24, #-16]
            ldr x0, [sp, #64]
            stp x29, x30, [sp, #-16]!
            ldr x5, [x21, #128]
            """
        )


class TestReservedRegisters:
    def test_write_to_base(self):
        assert_rejected("mov x21, #0", "x21")

    def test_write_to_base_32bit(self):
        assert_rejected("mov w21, #0", "x21")

    def test_arith_on_scratch(self):
        assert_rejected("add x18, x18, #8", "x18 modified")

    def test_hoist_reg_add_wrong_base(self):
        # add x23, x20, w1, uxtw guards against the WRONG base register.
        assert_rejected("add x23, x20, w1, uxtw", "x23 modified")

    def test_guard_with_shift_rejected(self):
        assert_rejected("add x18, x21, w1, uxtw #2", "x18 modified")

    def test_64bit_write_to_x22(self):
        assert_rejected("mov x22, x1", "x22")

    def test_32bit_write_to_x22_allowed(self):
        assert_accepted("mov w22, w1")
        assert_accepted("add w22, w1, #8")

    def test_guards_accepted(self):
        assert_accepted(
            """
            add x18, x21, w1, uxtw
            add x23, x21, w9, uxtw
            add x24, x21, w22, uxtw
            add x30, x21, w30, uxtw
            """
        )

    def test_load_into_scratch(self):
        assert_rejected("ldr x18, [sp]", "reserved register x18")

    def test_load_into_base(self):
        assert_rejected("ldr x21, [sp]", "x21")

    def test_stxr_status_into_reserved(self):
        assert_rejected("stxr w18, x0, [x23]", "reserved register x18")


class TestStackPointer:
    def test_sp_guard_accepted(self):
        assert_accepted("mov w22, wsp\n add sp, x21, x22")

    def test_mov_sp_from_register_rejected(self):
        assert_rejected("mov sp, x0", "unsafe sp modification")

    def test_small_arith_with_access(self):
        assert_accepted("sub sp, sp, #32\n str x0, [sp]")

    def test_small_arith_without_access(self):
        assert_rejected("sub sp, sp, #32\n ret", "without a following sp access")

    def test_small_arith_access_after_branch_rejected(self):
        assert_rejected(
            "sub sp, sp, #32\n b over\nover: str x0, [sp]",
            "without a following sp access",
        )

    def test_large_arith_rejected_even_with_access(self):
        assert_rejected("sub sp, sp, #2048\n str x0, [sp]",
                        "unsafe sp modification")

    def test_sp_add_register_rejected(self):
        assert_rejected("add sp, sp, x1", "unsafe sp modification")

    def test_another_sp_write_interrupts_scan(self):
        src = """
        sub sp, sp, #16
        sub sp, sp, #16
        str x0, [sp]
        """
        # The first sub's scan hits the second sp write before an access.
        result = verify_src(src)
        assert not result.ok


class TestLinkRegister:
    def test_restore_with_guard(self):
        assert_accepted("ldr x30, [sp, #8]\n add x30, x21, w30, uxtw\n ret")

    def test_restore_without_guard(self):
        assert_rejected("ldr x30, [sp, #8]\n ret", "link-register guard")

    def test_mov_with_following_guard(self):
        assert_accepted("mov x30, x9\n add x30, x21, w30, uxtw")

    def test_mov_without_guard(self):
        assert_rejected("mov x30, x9\n ret", "x30 modified")

    def test_adr_into_x30_rejected(self):
        assert_rejected("adr x30, target\ntarget: ret", "x30 modified")

    def test_runtime_call_idiom(self):
        assert_accepted("ldr x30, [x21, #16]\n blr x30")

    def test_table_load_without_blr(self):
        assert_rejected("ldr x30, [x21, #16]\n ret", "link-register guard")

    def test_table_load_then_br_rejected(self):
        # Only blr x30 resets the invariant (§4.4).
        assert_rejected("ldr x30, [x21, #16]\n br x30", "link-register guard")


class TestIndirectBranches:
    def test_br_unguarded(self):
        assert_rejected("br x0", "unguarded register")

    def test_blr_unguarded(self):
        assert_rejected("blr x7", "unguarded register")

    def test_ret_other_register(self):
        assert_rejected("ret x5", "unguarded register")

    def test_br_through_guarded(self):
        assert_accepted("add x18, x21, w0, uxtw\n br x18")
        assert_accepted("ret")
        assert_accepted("add x23, x21, w0, uxtw\n blr x23")


class TestUnsafeInstructions:
    def test_svc(self):
        assert_rejected("svc #0", "safe list")

    def test_hlt(self):
        assert_rejected("hlt #0", "safe list")

    def test_undecodable(self):
        result = verify_text(struct.pack("<I", 0xD51B4200))  # msr
        assert not result.ok
        assert "undecodable" in result.violations[0].reason

    def test_arbitrary_data_rejected(self):
        result = verify_text(b"\xff" * 16)
        assert not result.ok

    def test_misaligned_text(self):
        result = verify_text(b"\x1f\x20\x03\xd5\x00")
        assert not result.ok

    def test_spectre_hardening_rejects_exclusives(self):
        """§7.1: LL/SC can be disallowed by policy to stop timerless
        side-channel attacks."""
        policy = VerifierPolicy(allow_exclusives=False)
        assert_rejected("add x18, x21, w1, uxtw\n ldxr x0, [x18]",
                        "disallowed by policy", policy)
        assert_rejected("add x18, x21, w1, uxtw\n ldar x0, [x18]",
                        "disallowed by policy", policy)

    def test_exclusives_allowed_by_default(self):
        assert_accepted("add x18, x21, w1, uxtw\n ldxr x0, [x18]")


class TestNoLoadsPolicy:
    POLICY = VerifierPolicy(sandbox_loads=False)

    def test_naked_load_allowed(self):
        assert_accepted("ldr x0, [x1]", self.POLICY)

    def test_naked_store_still_rejected(self):
        assert_rejected("str x0, [x1]", "unguarded base", self.POLICY)

    def test_load_into_reserved_still_rejected(self):
        assert_rejected("ldr x18, [x1]", "reserved register", self.POLICY)

    def test_x30_load_still_needs_guard(self):
        assert_rejected("ldr x30, [x1]\n ret", "link-register guard",
                        self.POLICY)


class TestElfVerification:
    def test_verify_elf_all_exec_segments(self):
        src = "_start:\n add x18, x21, w0, uxtw\n ldr x1, [x18]\n ret\n"
        image = assemble(parse_assembly(src))
        result = verify_elf(build_elf(image))
        assert result.ok
        assert result.instructions == 3

    def test_verify_elf_rejects_bad_text(self):
        src = "_start:\n ldr x1, [x0]\n ret\n"
        image = assemble(parse_assembly(src))
        result = verify_elf(build_elf(image))
        assert not result.ok

    def test_raise_if_failed(self):
        src = "_start:\n ldr x1, [x0]\n ret\n"
        image = assemble(parse_assembly(src))
        result = verify_elf(build_elf(image))
        with pytest.raises(VerificationError):
            result.raise_if_failed()

    def test_data_segments_not_verified(self):
        """Only executable segments are checked (hardware W^X covers data)."""
        src = "_start:\n ret\n.data\n .word 0xdeadbeef\n"
        image = assemble(parse_assembly(src))
        result = verify_elf(build_elf(image))
        assert result.ok


class TestVerifierRobustness:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_never_crashes_on_garbage(self, data):
        data = data[: len(data) - len(data) % 4]
        verify_text(data)  # must not raise

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=500, deadline=None)
    def test_single_word_never_crashes(self, word):
        verify_text(struct.pack("<I", word))

    def test_counts(self):
        result = verify_src("nop\n nop\n ret")
        assert result.instructions == 3
        assert result.bytes_verified == 12

"""Direct unit tests for the core submodules: guards, hoisting planning,
branch range fixing, and rewrite options."""

import pytest

from repro.arm64 import Imm, Label, Mem, X, parse_assembly
from repro.arm64.instructions import ins
from repro.arm64.program import LabelDef, Program
from repro.core import O1, O2, RewriteOptions
from repro.core.branches import TB_RANGE, fix_branch_ranges
from repro.core.constants import (
    ADDRESS_REGS,
    BASE_REG,
    HOIST_REGS,
    LO32_REG,
    RESERVED_REGS,
    SCRATCH_REG,
)
from repro.errors import GuardError
from repro.core.guards import (
    guard_address,
    guarded_mem,
    sp_guard_pair,
    transform_indirect_branch,
    transform_memory_basic,
    transform_memory_guarded,
    x30_guard,
)
from repro.core.hoisting import is_hoistable, plan_hoisting


def insts_of(src):
    return list(parse_assembly(src).instructions())


class TestConstants:
    def test_paper_register_assignment(self):
        """§3: x21 base, x18 scratch, x22 32-bit, x23/x24 hoisting."""
        assert BASE_REG is X[21]
        assert SCRATCH_REG is X[18]
        assert LO32_REG is X[22]
        assert HOIST_REGS == (X[23], X[24])
        assert len(RESERVED_REGS) == 5
        assert ADDRESS_REGS == {X[18], X[23], X[24]}

    def test_callee_caller_balance(self):
        """§3: 'roughly equal numbers of callee- and caller-saved'.
        x18 is caller-ish (platform), x21-x24 are callee-saved."""
        callee_saved = [r for r in RESERVED_REGS if 19 <= r.index <= 28]
        assert len(callee_saved) == 4


class TestGuards:
    def test_guard_address_shape(self):
        guard = guard_address(X[5])
        assert str(guard) == "add x18, x21, w5, uxtw"

    def test_guard_into_hoist_register(self):
        guard = guard_address(X[5], X[23])
        assert str(guard) == "add x23, x21, w5, uxtw"

    def test_guarded_mem(self):
        assert str(guarded_mem(X[7])) == "[x21, w7, uxtw]"

    def test_x30_guard(self):
        assert str(x30_guard()) == "add x30, x21, w30, uxtw"

    def test_sp_guard_pair(self):
        pair = sp_guard_pair()
        assert [str(i) for i in pair] == ["mov w22, wsp",
                                          "add sp, x21, x22"]

    def test_transform_guarded_requires_memory(self):
        with pytest.raises(GuardError):
            transform_memory_guarded(ins("add", X[0], X[1], Imm(1)))

    def test_transform_basic_base_only(self):
        g, access = transform_memory_basic(insts_of("ldr x0, [x1]")[0])
        assert str(g) == "add x18, x21, w1, uxtw"
        assert str(access) == "ldr x0, [x18]"

    def test_indirect_branch_requires_register(self):
        with pytest.raises(GuardError):
            transform_indirect_branch(ins("br", Label("foo")))


class TestHoistingUnits:
    def test_is_hoistable_positive(self):
        inst = insts_of("ldr x0, [x1, #8]")[0]
        assert is_hoistable(inst)

    @pytest.mark.parametrize("src", [
        "ldr x0, [sp, #8]",        # sp base: already free
        "ldr x0, [x1, x2]",        # register offset
        "ldr x0, [x1], #8",        # writeback
        "ldr x30, [x1, #8]",       # link-register restore path
        "ldxr x0, [x1]",           # exclusives: base-only instruction
    ])
    def test_is_hoistable_negative(self, src):
        assert not is_hoistable(insts_of(src)[0])

    def test_load_not_hoistable_in_no_loads_mode(self):
        inst = insts_of("ldr x0, [x1, #8]")[0]
        assert not is_hoistable(inst, sandbox_loads=False)
        store = insts_of("str x0, [x1, #8]")[0]
        assert is_hoistable(store, sandbox_loads=False)

    def test_plan_requires_two_accesses(self):
        plan = plan_hoisting(insts_of("ldr x0, [x1]"))
        assert not plan.guards and not plan.redirects

    def test_plan_assigns_first_hoist_register(self):
        block = insts_of("ldr x0, [x1]\n ldr x2, [x1, #8]")
        plan = plan_hoisting(block)
        assert plan.guards == {0: (X[23], X[1])}
        assert set(plan.redirects) == {0, 1}
        assert plan.eliminated == 1

    def test_three_overlapping_bases_third_unhoisted(self):
        block = insts_of(
            "ldr x0, [x1]\n ldr x2, [x3]\n ldr x4, [x5]\n"
            " ldr x0, [x1, #8]\n ldr x2, [x3, #8]\n ldr x4, [x5, #8]"
        )
        plan = plan_hoisting(block)
        assert len(plan.guards) == 2  # only two hoisting registers
        assert len(plan.redirects) == 4

    def test_register_freed_after_segment_end(self):
        block = insts_of(
            "ldr x0, [x1]\n ldr x2, [x1, #8]\n"
            " mov x1, x9\n"  # ends segment for x1
            " ldr x0, [x4]\n ldr x2, [x4, #8]"
        )
        plan = plan_hoisting(block)
        # Both segments fit on x23 (sequential, not overlapping).
        regs = {reg for reg, _ in plan.guards.values()}
        assert regs == {X[23]}


class TestBranchRangeUnits:
    def _program_with_distance(self, nops):
        program = Program()
        program.add(ins("tbz", X[0], Imm(3), Label("far")))
        for _ in range(nops):
            program.add(ins("nop"))
        program.add(LabelDef("far"))
        program.add(ins("ret"))
        return program

    def test_under_threshold_untouched(self):
        program = self._program_with_distance(100)
        assert fix_branch_ranges(program) == 0

    def test_over_threshold_fixed(self):
        program = self._program_with_distance(TB_RANGE // 4 + 100)
        assert fix_branch_ranges(program) == 1
        mnemonics = [i.mnemonic for i in program.instructions()][:2]
        assert mnemonics == ["tbnz", "b"]

    def test_backward_branch_fixed_too(self):
        program = Program()
        program.add(LabelDef("back"))
        for _ in range(TB_RANGE // 4 + 100):
            program.add(ins("nop"))
        program.add(ins("tbnz", X[1], Imm(5), Label("back")))
        assert fix_branch_ranges(program) == 1

    def test_unknown_label_ignored(self):
        program = Program()
        program.add(ins("tbz", X[0], Imm(1), Label("elsewhere")))
        assert fix_branch_ranges(program) == 0


class TestOptions:
    def test_levels(self):
        assert not RewriteOptions(opt_level=0).zero_instruction_guards
        assert RewriteOptions(opt_level=1).zero_instruction_guards
        assert not RewriteOptions(opt_level=1).hoisting
        assert RewriteOptions(opt_level=2).hoisting

    def test_labels(self):
        assert RewriteOptions(opt_level=2).label == "O2"
        assert RewriteOptions(opt_level=2,
                              sandbox_loads=False).label == "O2, no loads"

    def test_invalid(self):
        with pytest.raises(ValueError):
            RewriteOptions(opt_level=3)
        with pytest.raises(ValueError):
            RewriteOptions(hoist_registers=5)

    def test_with_(self):
        base = RewriteOptions()
        derived = base.with_(sp_block_elision=False)
        assert base.sp_block_elision and not derived.sp_block_elision

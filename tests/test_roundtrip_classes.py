"""Per-class encoder/decoder round-trip properties (ISSUE 7 satellite).

The prover's enumeration (``repro.prove.enumerate``) relies on the
decoder/encoder pair being a bijection on the decodable subset of each
class space: every word the decoder claims must re-encode to exactly the
same word, or the prover's acceptance counts would not correspond to real
machine code.

Two tiers: a small seeded deterministic sample per class runs in tier-1;
the Hypothesis property (marked ``slow``) drives far more samples and
shrinks failures.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64.decoder import decode_word, decoding_class, decoder_names
from repro.arm64.encoder import reencode_word
from repro.prove import default_classes, nightly_classes

ALL_CLASSES = default_classes() + nightly_classes()


def _sample_word(cls, rng: random.Random) -> int:
    word = cls.template
    for f in cls.fields:
        value = (rng.choice(f.values) if f.values is not None
                 else rng.randrange(1 << f.width))
        word |= value << f.lo
    return word


def _assert_roundtrip(cls, word: int) -> None:
    inst = decode_word(word)
    if inst is None:
        assert reencode_word(word) is None
        return
    back = reencode_word(word)
    assert back == word, (
        f"{cls.name}: {word:#010x} ({inst}) re-encoded to "
        f"{back:#010x}" if back is not None else
        f"{cls.name}: {word:#010x} ({inst}) failed to re-encode")


@pytest.mark.parametrize("cls", ALL_CLASSES, ids=[c.name for c in ALL_CLASSES])
def test_seeded_sample_roundtrip(cls):
    rng = random.Random(0xC0DE ^ hash(cls.name) & 0xFFFF)
    for _ in range(64):
        _assert_roundtrip(cls, _sample_word(cls, rng))


@pytest.mark.parametrize("cls",
                         [c for c in ALL_CLASSES if c.space() <= 4096],
                         ids=[c.name for c in ALL_CLASSES
                              if c.space() <= 4096])
def test_small_class_exhaustive_roundtrip(cls):
    for word in cls.words():
        _assert_roundtrip(cls, word)


def test_decoding_class_names_are_known():
    names = decoder_names()
    assert "movi" in names or len(names) > 10
    # Every claimed word reports a claiming decoder.
    assert decoding_class(0xD4200000) is not None  # brk #0
    assert decoding_class(0xFFFFFFFF) is None


@pytest.mark.slow
@pytest.mark.parametrize("cls", ALL_CLASSES, ids=[c.name for c in ALL_CLASSES])
@given(data=st.data())
@settings(max_examples=500, deadline=None)
def test_property_roundtrip(cls, data):
    word = cls.template
    for f in cls.fields:
        if f.values is not None:
            value = data.draw(st.sampled_from(f.values), label=f.name)
        else:
            value = data.draw(
                st.integers(min_value=0, max_value=(1 << f.width) - 1),
                label=f.name)
        word |= value << f.lo
    _assert_roundtrip(cls, word)

"""Guard-attribution profiler: provenance threading, attribution
completeness, and the amortized overhead decomposition.

Provenance flows rewriter -> assembler -> ELF PT_NOTE -> loader; the
profiler then charges every emulated cycle to a guard class or to the
application, and the telescoping-delta property of the cost model makes
the attribution *exact* (it sums to ``machine.cycles`` with no slack).
"""

import pytest

from repro.core import O0, O2
from repro.elf.format import read_elf, write_elf
from repro.emulator import APPLE_M1
from repro.obs import BUCKET_ORDER, GuardProfiler, profile_workload
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall


STORE_LOOP = prologue() + """
    mov x0, #32
    adrp x1, buf
    add x1, x1, :lo12:buf
loop:
    str w0, [x1, x0, lsl #2]
    sub x0, x0, #1
    cbnz x0, loop
    mov x0, #0
""" + rt_exit() + """
.bss
buf: .zero 256
"""

FORK_STORE = prologue() + rtcall(RuntimeCall.FORK) + """
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x0, #5
    str w0, [x1, x0, lsl #2]
    mov x0, #0
""" + rt_exit() + """
.bss
buf: .zero 64
"""


class TestProvenancePipeline:
    def test_rewriter_tags_reach_assembled_image(self):
        compiled = compile_lfi(STORE_LOOP, options=O0)
        assert compiled.image.provenance
        assert set(compiled.image.provenance.values()) <= {
            "memory", "branch", "sp", "x30", "hoist"
        }

    def test_static_counts_match_provenance(self):
        compiled = compile_lfi(STORE_LOOP, options=O0)
        counts = compiled.rewrite.stats.guard_class_counts()
        # every provenance class was counted at least once statically
        for klass in set(compiled.image.provenance.values()):
            assert counts.get(klass, 0) > 0

    def test_elf_note_roundtrip(self):
        compiled = compile_lfi(STORE_LOOP, options=O0)
        blob = write_elf(compiled.elf)
        loaded = read_elf(blob)
        assert loaded.provenance == compiled.elf.provenance
        assert loaded.provenance == compiled.image.provenance

    def test_loader_rebases_guard_map(self):
        compiled = compile_lfi(STORE_LOOP, options=O0)
        runtime = Runtime(model=APPLE_M1)
        proc = runtime.spawn(compiled.elf, verify=True)
        base = proc.layout.base
        expected = {
            base + addr: klass
            for addr, klass in compiled.image.provenance.items()
        }
        assert proc.guard_map == expected

    def test_fork_rebases_guard_map_to_child(self):
        runtime = Runtime(model=APPLE_M1)
        parent = runtime.spawn(compile_lfi(FORK_STORE, options=O0).elf,
                               verify=True)
        runtime.run_until_exit(parent)
        runtime.run()
        child = next(p for p in runtime.processes.values()
                     if p.pid != parent.pid)
        delta = child.layout.base - parent.layout.base
        assert child.guard_map == {
            addr + delta: klass for addr, klass in parent.guard_map.items()
        }


class TestAttribution:
    def profiled_run(self, src, options=O0):
        runtime = Runtime(model=APPLE_M1)
        profiler = GuardProfiler().attach(runtime)
        proc = runtime.spawn(compile_lfi(src, options=options).elf,
                             verify=True)
        assert runtime.run_until_exit(proc) == 0
        return runtime, profiler, proc

    def test_attribution_is_complete(self):
        """Every cycle lands in some bucket: totals match exactly."""
        runtime, profiler, _ = self.profiled_run(STORE_LOOP)
        assert profiler.total_cycles() == pytest.approx(
            runtime.machine.cycles, abs=1e-9
        )

    def test_guard_buckets_populated(self):
        _, profiler, proc = self.profiled_run(STORE_LOOP)
        breakdown = profiler.breakdown(proc.pid)
        assert breakdown.get("app", 0.0) > 0.0
        executed_classes = {
            klass for klass in proc.guard_map.values()
        }
        for klass in executed_classes & {"memory", "branch", "sp", "x30"}:
            # the loop executes its memory guards many times
            if klass == "memory":
                assert profiler.instructions[proc.pid][klass] > 0

    def test_bucket_order_is_stable(self):
        assert BUCKET_ORDER == (
            "memory", "branch", "sp", "x30", "hoist", "fence", "mask",
            "app", "call", "host"
        )

    def test_decompose_overhead_sums_exactly(self):
        _, profiler, _ = self.profiled_run(STORE_LOOP)
        parts = profiler.decompose_overhead(1234.5)
        assert sum(parts.values()) == pytest.approx(1234.5)

    def test_decompose_without_weights_is_other(self):
        profiler = GuardProfiler()
        assert profiler.decompose_overhead(50.0) == {"other": 50.0}

    def test_report_mentions_buckets(self):
        _, profiler, _ = self.profiled_run(STORE_LOOP)
        text = profiler.report()
        assert "app" in text and "memory" in text


class TestProfileWorkload:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_workload("505.mcf", options=O2, model=APPLE_M1,
                                target_instructions=20_000)

    def test_overhead_positive(self, report):
        assert report.lfi.cycles > report.native.cycles
        assert report.overhead_pct > 0.0

    def test_decomposition_matches_measured_overhead(self, report):
        """Acceptance criterion: per-class cycles sum to the perf-style
        overhead within 0.1%."""
        overhead_cycles = report.lfi.cycles - report.native.cycles
        parts = report.decomposed_overhead()
        assert sum(parts.values()) == pytest.approx(
            overhead_cycles, rel=1e-3
        )
        pct = report.decomposed_overhead_pct()
        assert sum(pct.values()) == pytest.approx(
            report.overhead_pct, rel=1e-3
        )

    def test_static_counts_are_rewrite_stats(self, report):
        from repro.workloads.spec import arena_bss_size, build_benchmark

        asm = build_benchmark("505.mcf", target_instructions=20_000)
        compiled = compile_lfi(asm, options=O2,
                               bss_size=arena_bss_size("505.mcf"))
        assert report.static_counts \
            == compiled.rewrite.stats.guard_class_counts()

    def test_attribution_complete_on_benchmark(self, report):
        assert report.profiler.total_cycles() == pytest.approx(
            report.lfi.cycles, abs=1e-6
        )

"""Supervision, quotas, fault injection, and containment auditing.

The acceptance bar for this layer: hundreds of seeded faults across many
concurrent sandboxes, zero containment violations, zero host-loop
crashes, and bit-identical incident logs per seed."""

import errno
import importlib.util
import pathlib
import types

from repro.robustness import (
    ContainmentAuditor,
    FaultInjector,
    RestartPolicy,
    Supervisor,
)
from repro.memory import SANDBOX_SIZE
from repro.memory.pages import PERM_X
from repro.runtime import ProcessState, ResourceQuota, Runtime, RuntimeCall
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall

EXIT42 = prologue() + "    mov x0, #42\n" + rt_exit()

CRASH = prologue() + """
    mov x1, #0
    ldr x0, [x1]
""" + rt_exit()

SPIN = prologue() + """
loop:
    b loop
"""

#: A guarded store executed in a loop — guard-corruption fodder.
STORER = prologue() + """
    movz x25, #40
outer:
    adrp x3, cell
    add x3, x3, :lo12:cell
    str x25, [x3]
""" + rtcall(RuntimeCall.YIELD) + """
    subs x25, x25, #1
    b.ne outer
    mov x0, #0
""" + rt_exit() + """
.data
.balign 8
cell: .quad 0
"""


def crash_elf():
    return compile_native(CRASH).elf


def _load_chaos_module():
    path = (pathlib.Path(__file__).resolve().parent.parent
            / "examples" / "chaos_tenants.py")
    spec = importlib.util.spec_from_file_location("chaos_tenants", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSupervisor:
    def test_clean_exit_no_restart(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        sup.submit("calm", compile_lfi(EXIT42).elf,
                   policy=RestartPolicy(mode="on-failure"))
        sup.run()
        st = sup.status()["calm"]
        assert st["done"] and st["exit_code"] == 42 and st["restarts"] == 0
        assert sup.incidents == []

    def test_never_policy_no_restart(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        sup.submit("fragile", crash_elf(), verify=False)
        sup.run()
        kinds = [i.kind for i in sup.incidents]
        assert kinds == ["segv"]
        assert sup.status()["fragile"]["restarts"] == 0

    def test_on_failure_restarts_then_gives_up(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        sup.submit("fragile", crash_elf(),
                   policy=RestartPolicy(mode="on-failure", max_restarts=2),
                   verify=False)
        sup.run()
        kinds = [i.kind for i in sup.incidents]
        assert kinds.count("segv") == 3  # initial + 2 restarts
        assert kinds.count("restart") == 2
        assert kinds.count("gave-up") == 1
        assert sup.status()["fragile"]["done"]

    def test_exponential_backoff_rounds(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        sup.submit("fragile", crash_elf(),
                   policy=RestartPolicy(mode="on-failure", max_restarts=2,
                                        backoff_base=2, backoff_factor=3),
                   verify=False)
        sup.run()
        restart_rounds = [i.round for i in sup.incidents
                          if i.kind == "restart"]
        # fault in round 0 -> due 0 + 2*3^0 = 2; fault in round 2 ->
        # due 2 + 2*3^1 = 8.
        assert restart_rounds == [2, 8]

    def test_watchdog_demotes_repeat_offender(self):
        runtime = Runtime()
        sup = Supervisor(runtime, watchdog_fault_limit=3)
        sup.submit("fragile", crash_elf(),
                   policy=RestartPolicy(mode="on-failure", max_restarts=10),
                   verify=False)
        sup.run()
        kinds = [i.kind for i in sup.incidents]
        assert kinds.count("segv") == 3
        assert kinds.count("demote") == 1
        st = sup.status()["fragile"]
        assert st["demoted"] and st["done"] and st["restarts"] == 2

    def test_deadlock_becomes_incident_not_crash(self):
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            ldr w20, [x19]
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + """
            mov x0, #0
        """ + rt_exit() + """
        .data
        .balign 8
        fds: .skip 8
        buf: .skip 8
        """
        runtime = Runtime()
        sup = Supervisor(runtime)
        proc = sup.submit("stuck", compile_lfi(src).elf)
        sup.run()  # must not raise Deadlock
        (incident,) = [i for i in sup.incidents if i.kind == "deadlock"]
        assert incident.pid == proc.pid
        assert proc.exit_code == 128 + 6
        assert sup.status()["stuck"]["done"]

    def test_sibling_unaffected_by_fault(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        sup.submit("fragile", crash_elf(), verify=False)
        sup.submit("calm", compile_lfi(EXIT42).elf)
        sup.run()
        assert sup.status()["calm"]["exit_code"] == 42

    def test_reclaim_unmaps_dead_slot(self):
        runtime = Runtime()
        sup = Supervisor(runtime)
        proc = sup.submit("calm", compile_lfi(EXIT42).elf)
        lo, hi = proc.layout.base, proc.layout.end
        sup.run()
        leftover = [r for r in runtime.memory.mapped_regions()
                    if lo <= r[0] < hi]
        assert leftover == []


class TestQuotas:
    def test_fd_quota_emfile(self):
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            tbnz x0, #63, early
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            tbnz x0, #63, limited
            mov x0, #1
        """ + rt_exit() + """
        limited:
            mov x0, #9
        """ + rt_exit() + """
        early:
            mov x0, #2
        """ + rt_exit() + """
        .data
        .balign 8
        fds: .skip 8
        """
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(src).elf, verify=True)
        # 3 std streams + one pipe pair fit; the second pair must not.
        runtime.set_quota(proc, ResourceQuota(max_fds=6))
        assert runtime.run_until_exit(proc) == 9

    def test_page_quota_enomem_on_brk(self):
        src = prologue() + """
            mov x0, #0
        """ + rtcall(RuntimeCall.BRK) + """
            mov x19, x0
            tbnz x19, #63, early
            movz x1, #0x10, lsl #16
            add x0, x19, x1
        """ + rtcall(RuntimeCall.BRK) + """
            tbnz x0, #63, limited
            mov x0, #1
        """ + rt_exit() + """
        limited:
            mov x0, #9
        """ + rt_exit() + """
        early:
            mov x0, #2
        """ + rt_exit()
        runtime = Runtime(stack_size=64 * 1024)
        proc = runtime.spawn(compile_lfi(src).elf, verify=True)
        # Enough for text/stack/table, nowhere near enough for a 1MiB brk.
        runtime.set_quota(proc, ResourceQuota(max_mapped_pages=32))
        assert runtime.run_until_exit(proc) == 9

    def test_instruction_quota_kills(self):
        runtime = Runtime(timeslice=500)
        proc = runtime.spawn(compile_lfi(SPIN).elf, verify=True)
        runtime.set_quota(proc, ResourceQuota(max_instructions=5_000))
        runtime.run()
        assert proc.state == ProcessState.ZOMBIE
        assert proc.exit_code == 128 + 9
        (fault,) = runtime.faults
        assert fault.kind == "quota"

    def test_quota_kill_is_not_restarted(self):
        runtime = Runtime(timeslice=500)
        sup = Supervisor(runtime)
        sup.submit("greedy", compile_lfi(SPIN).elf,
                   policy=RestartPolicy(mode="on-failure", max_restarts=5),
                   quota=ResourceQuota(max_instructions=5_000))
        sup.run()
        kinds = [i.kind for i in sup.incidents]
        assert kinds.count("quota") == 1
        assert kinds.count("kill") == 1
        assert kinds.count("restart") == 0

    def test_fork_inherits_quota(self):
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        quota = ResourceQuota(max_instructions=123)
        runtime.set_quota(proc, quota)
        child = runtime.fork(proc)
        assert runtime.quotas[child.pid] is quota


class TestFaultInjector:
    def test_callerr_is_one_shot(self):
        src = prologue() + rtcall(RuntimeCall.GETPID) + """
            cmn x0, #4
            b.ne bad
        """ + rtcall(RuntimeCall.GETPID) + """
            tbnz x0, #63, bad
            mov x0, #9
        """ + rt_exit() + """
        bad:
            mov x0, #1
        """ + rt_exit()
        runtime = Runtime()
        injector = FaultInjector(runtime, seed=0)
        proc = runtime.spawn(compile_lfi(src).elf, verify=True)
        injector._call_errs[proc.pid] = errno.EINTR  # EINTR == 4
        assert runtime.run_until_exit(proc) == 9
        (record,) = injector.delivered
        assert record[1] == "callerr" and record[2] == proc.pid

    def test_trapstorm_spans_processes(self):
        runtime = Runtime()
        injector = FaultInjector(runtime, seed=0)
        first = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        injector._storm = 2
        runtime.run()
        assert first.exit_code == 128 + 11
        second = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        runtime.run()
        assert second.exit_code == 128 + 11
        kinds = [kind for _seq, kind, _pid, _detail in injector.delivered]
        assert kinds == ["trapstorm", "trapstorm"]
        assert [f.kind for f in runtime.faults] == ["segv", "segv"]

    def test_plan_is_deterministic(self):
        runtime_a, runtime_b = Runtime(), Runtime()
        plan_a = FaultInjector(runtime_a, seed=99).plan(50)
        plan_b = FaultInjector(runtime_b, seed=99).plan(50)
        assert plan_a == plan_b
        plan_c = FaultInjector(Runtime(), seed=100).plan(50)
        assert plan_a != plan_c


class TestContainment:
    def _text_digest(self, auditor, runtime, proc):
        regions = [
            (base, size)
            for base, size, perms in runtime.memory.mapped_regions()
            if perms & PERM_X
            and proc.layout.base <= base < proc.layout.end
        ]
        (base, size) = regions[0]
        return auditor.slot_digest(
            types.SimpleNamespace(base=base, end=base + size))

    def test_bitflips_contained_and_bystander_unperturbed(self):
        runtime = Runtime(timeslice=500)
        auditor = ContainmentAuditor(runtime)
        injector = FaultInjector(runtime, seed=5)
        victim = runtime.spawn(compile_lfi(STORER).elf, verify=True)
        bystander = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        by_text = self._text_digest(auditor, runtime, bystander)
        for param in range(4):
            injector._fire_bitflip(victim, param)
        runtime.run()
        assert injector.delivered_count == 4
        auditor.assert_clean()
        assert bystander.exit_code == 42
        assert self._text_digest(auditor, runtime, bystander) == by_text

    def test_guard_corruption_traps_not_escapes(self):
        # An indirect branch forces a standalone guard whose output is
        # immediately jumped through — corrupting it must trap, not escape.
        jumper = prologue() + """
            adrp x3, hop
            add x3, x3, :lo12:hop
            br x3
            mov x0, #1
        """ + rt_exit() + """
        hop:
            mov x0, #0
        """ + rt_exit()
        runtime = Runtime(timeslice=500)
        auditor = ContainmentAuditor(runtime)
        injector = FaultInjector(runtime, seed=5)
        victim = runtime.spawn(compile_lfi(jumper).elf, verify=True)
        bystander = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        injector._fire_guard(victim, 0)
        (record,) = injector.delivered
        assert record[1] == "guard"  # a real guard was found and corrupted
        runtime.run()
        assert victim.exit_code == 128 + 11
        (fault,) = runtime.faults
        assert fault.kind == "segv" and fault.pid == victim.pid
        auditor.assert_clean()
        assert bystander.exit_code == 42

    def test_auditor_catches_real_write_escape(self):
        """An unverified program writing into a sibling's mapped stack must
        be flagged — proving the auditor is not vacuous."""
        runtime = Runtime()
        auditor = ContainmentAuditor(runtime)
        bystander = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        target = bystander.registers["sp"] - 8
        assert target < 2 * SANDBOX_SIZE  # slot 1: a 33-bit address
        evil_src = prologue() + f"""
            movz x1, #{(target >> 32) & 0xFFFF}, lsl #32
            movk x1, #{(target >> 16) & 0xFFFF}, lsl #16
            movk x1, #{target & 0xFFFF}
            str x0, [x1]
            mov x0, #0
        """ + rt_exit()
        evil = runtime.spawn(compile_native(evil_src).elf, verify=False)
        runtime.run()
        escapes = [v for v in auditor.violations if v.kind == "write-escape"]
        assert len(escapes) == 1
        assert escapes[0].pid == evil.pid
        assert hex(target) in escapes[0].detail

    def test_audit_after_fault_checks_registers(self):
        runtime = Runtime()
        auditor = ContainmentAuditor(runtime)
        proc = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        assert auditor.audit_after_fault(proc.pid) == []
        proc.registers["regs"][21] = 0xDEAD  # simulate corrupted base reg
        found = auditor.audit_after_fault(proc.pid)
        assert [v.kind for v in found] == ["register"]


class TestChaosAcceptance:
    """The ISSUE acceptance run: >= 200 seeded faults over >= 8 concurrent
    sandboxes, zero containment violations, zero host-loop crashes, and a
    deterministic incident log per seed."""

    def test_seeded_chaos_run(self):
        chaos = _load_chaos_module()
        result = chaos.run_chaos(seed=7, tenants=8, faults=200)
        assert result["injector"].delivered_count >= 200
        assert result["auditor"].violations == []
        host_errors = [i for i in result["supervisor"].incidents
                       if i.kind == "host"]
        assert host_errors == []
        assert len(result["supervisor"].status()) == 8

        again = chaos.run_chaos(seed=7, tenants=8, faults=200)
        assert again["digest"] == result["digest"]
        assert again["incident_log"] == result["incident_log"]
        assert again["delivery_log"] == result["delivery_log"]

    def test_different_seed_different_plan(self):
        chaos = _load_chaos_module()
        a = chaos.run_chaos(seed=1, tenants=8, faults=40)
        b = chaos.run_chaos(seed=2, tenants=8, faults=40)
        assert a["auditor"].violations == []
        assert b["auditor"].violations == []
        assert a["delivery_log"] != b["delivery_log"]

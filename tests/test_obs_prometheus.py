"""Prometheus exposition: rendering, escaping, and the validator."""

from repro.emulator import APPLE_M1
from repro.obs import (
    MetricsHub,
    Tracer,
    prometheus_exposition,
    validate_exposition,
)
from repro.runtime import ResourceQuota, Runtime
from repro.serve import Gateway, TenantLoad, TenantPolicy, run_loadgen
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


EXIT0 = prologue() + "    mov x0, #0\n" + rt_exit()


# -- rendering ---------------------------------------------------------------


class TestExposition:
    def test_bracket_labels_become_real_labels(self):
        hub = MetricsHub()
        hub.host_counter("serve.rejected[tenant=acme,reason=queue-full]") \
            .inc(3)
        text = prometheus_exposition(hub)
        assert "# TYPE repro_serve_rejected_total counter" in text
        assert ('repro_serve_rejected_total'
                '{reason="queue-full",tenant="acme"} 3') in text

    def test_counter_gets_total_suffix_once(self):
        hub = MetricsHub()
        hub.host_counter("a.plain").inc()
        hub.host_counter("b.already_total").inc()
        text = prometheus_exposition(hub)
        assert "repro_a_plain_total 1" in text
        assert "repro_b_already_total 1" in text
        assert "total_total" not in text

    def test_gauge_rendering(self):
        hub = MetricsHub()
        hub.host_gauge("serve.lanes").set(4)
        hub.host_gauge("load.avg").set(0.375)
        text = prometheus_exposition(hub)
        assert "# TYPE repro_serve_lanes gauge" in text
        assert "repro_serve_lanes 4" in text       # integral float -> int
        assert "repro_load_avg 0.375" in text

    def test_label_value_escaping_roundtrips(self):
        hub = MetricsHub()
        hub.host_counter('odd[name=a\\b"c\nd]').inc()
        text = prometheus_exposition(hub)
        assert '{name="a\\\\b\\"c\\nd"}' in text
        assert validate_exposition(text) == []

    def test_histogram_shape(self):
        hub = MetricsHub()
        histogram = hub.host_histogram("lat", bounds=(0.01, 0.1))
        for value in (0.005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        text = prometheus_exposition(hub)
        assert '# TYPE repro_lat histogram' in text
        assert 'repro_lat_bucket{le="0.01"} 2' in text
        assert 'repro_lat_bucket{le="0.1"} 3' in text     # cumulative
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert 'repro_lat_count 4' in text
        assert validate_exposition(text) == []

    def test_sandbox_families(self):
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        hub = MetricsHub().attach(tracer, runtime)
        proc = runtime.spawn(compile_lfi(EXIT0).elf, verify=True)
        runtime.set_quota(proc, ResourceQuota(max_instructions=100_000))
        runtime.run_until_exit(proc)
        hub.collect(runtime)
        text = prometheus_exposition(hub)
        pid = f'pid="{proc.pid}"'
        assert f'repro_sandbox_instructions_total{{{pid}}}' in text
        assert f'repro_sandbox_calls_total{{call="exit",{pid}}} 1' in text
        assert 'repro_sandbox_quota_headroom' in text
        assert validate_exposition(text) == []

    def test_empty_hub_renders_empty(self):
        assert prometheus_exposition(MetricsHub()) == ""
        assert validate_exposition("") == []

    def test_deterministic_ordering(self):
        def build():
            hub = MetricsHub()
            for tenant in ("b", "a", "c"):
                hub.host_counter(f"serve.offered[tenant={tenant}]").inc()
            hub.host_gauge("z.last").set(1)
            hub.host_gauge("a.first").set(2)
            return prometheus_exposition(hub)
        text = build()
        assert text == build()
        lines = text.splitlines()
        families = [ln.split()[2] for ln in lines if ln.startswith("#")]
        assert families == sorted(families)
        offered = [ln for ln in lines if "offered" in ln
                   and not ln.startswith("#")]
        assert offered == sorted(offered)


# -- validator ---------------------------------------------------------------


VALID = """\
# TYPE repro_jobs_total counter
repro_jobs_total{tenant="a"} 5
repro_jobs_total{tenant="b"} 0
# TYPE repro_lat histogram
repro_lat_bucket{le="0.1"} 1
repro_lat_bucket{le="+Inf"} 2
repro_lat_sum 1.5
repro_lat_count 2
# TYPE repro_lanes gauge
repro_lanes 4
"""


class TestValidator:
    def test_valid_text_passes(self):
        assert validate_exposition(VALID) == []

    def test_sample_without_type(self):
        problems = validate_exposition("repro_x 1\n")
        assert any("no preceding TYPE" in p for p in problems)

    def test_duplicate_type_and_series(self):
        text = ("# TYPE repro_x gauge\nrepro_x 1\n"
                "# TYPE repro_x gauge\nrepro_x 2\n")
        problems = validate_exposition(text)
        assert any("duplicate TYPE" in p for p in problems)
        assert any("duplicate series" in p for p in problems)

    def test_counter_conventions(self):
        text = "# TYPE repro_bad counter\nrepro_bad 1\n"
        assert any("_total" in p for p in validate_exposition(text))
        text = "# TYPE repro_x_total counter\nrepro_x_total -1\n"
        assert any("negative" in p for p in validate_exposition(text))

    def test_grammar_errors(self):
        assert validate_exposition("# TYPE repro_x gauge\nrepro_x one\n")
        assert validate_exposition("9bad_name 1\n")
        assert validate_exposition(
            '# TYPE repro_x gauge\nrepro_x{l="a",l="b"} 1\n')  # dup label
        assert validate_exposition(
            '# TYPE repro_x gauge\nrepro_x{l="bad\\q"} 1\n')   # bad escape

    def test_histogram_invariants(self):
        missing_inf = ("# TYPE repro_h histogram\n"
                       'repro_h_bucket{le="1"} 1\n'
                       "repro_h_sum 1\nrepro_h_count 1\n")
        assert any("+Inf" in p for p in validate_exposition(missing_inf))
        disagree = ("# TYPE repro_h histogram\n"
                    'repro_h_bucket{le="1"} 1\n'
                    'repro_h_bucket{le="+Inf"} 1\n'
                    "repro_h_sum 1\nrepro_h_count 3\n")
        assert any("!= _count" in p for p in validate_exposition(disagree))
        shrinking = ("# TYPE repro_h histogram\n"
                     'repro_h_bucket{le="1"} 5\n'
                     'repro_h_bucket{le="2"} 3\n'
                     'repro_h_bucket{le="+Inf"} 5\n'
                     "repro_h_sum 1\nrepro_h_count 5\n")
        assert any("not cumulative" in p
                   for p in validate_exposition(shrinking))

    def test_histogram_per_labelset_subgroups(self):
        # Two tenants interleaved: each subgroup validated on its own.
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1",tenant="a"} 1\n'
                'repro_h_bucket{le="1",tenant="b"} 2\n'
                'repro_h_bucket{le="+Inf",tenant="a"} 1\n'
                'repro_h_bucket{le="+Inf",tenant="b"} 2\n'
                'repro_h_sum{tenant="a"} 0.5\n'
                'repro_h_sum{tenant="b"} 1.5\n'
                'repro_h_count{tenant="a"} 1\n'
                'repro_h_count{tenant="b"} 2\n')
        assert validate_exposition(text) == []


# -- end to end: a real serving run scrapes clean ----------------------------


def test_serving_run_exports_valid_exposition():
    policies = {
        "gold": TenantPolicy(priority=0, rate=60.0, burst=8.0,
                             sla_s=0.05),
        "bronze": TenantPolicy(priority=2, rate=10.0, burst=2.0,
                               queue_limit=4),
    }
    gateway = Gateway(policies, lanes=2, seed=4)
    loads = [TenantLoad("gold", rate=40.0, target_instructions=3000,
                        value=1),
             TenantLoad("bronze", rate=60.0, target_instructions=4000,
                        value=2)]
    run_loadgen(gateway, loads, 0.25, seed=4)
    gateway.report()
    text = prometheus_exposition(gateway.hub)
    assert validate_exposition(text) == []
    assert "repro_serve_completed_total" in text
    assert 'repro_serve_rejected_total{reason="throttled",tenant="bronze"}' \
        in text
    assert 'repro_serve_latency_s_bucket{le="+Inf",tenant="gold"}' in text
    assert text == prometheus_exposition(gateway.hub)  # stable render

"""Tests for the paged memory substrate and sandbox layout math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    GUARD_SIZE,
    MAX_SANDBOXES_48BIT,
    PAGE_SIZE,
    PERM_R,
    PERM_RW,
    PERM_RX,
    PERM_W,
    MemoryFault,
    PagedMemory,
    SANDBOX_SIZE,
    SandboxLayout,
)


@pytest.fixture
def mem():
    memory = PagedMemory()
    memory.map_region(0x10000 * 4, PAGE_SIZE * 4, PERM_RW)
    return memory


BASE = 0x40000


class TestPagedMemory:
    def test_read_write_roundtrip(self, mem):
        mem.write(BASE + 100, b"hello")
        assert mem.read(BASE + 100, 5) == b"hello"

    def test_zero_initialized(self, mem):
        assert mem.read(BASE, 16) == bytes(16)

    def test_unmapped_read_faults(self, mem):
        with pytest.raises(MemoryFault) as exc:
            mem.read(0x999_0000, 4)
        assert exc.value.kind == "unmapped"

    def test_write_to_readonly_faults(self):
        memory = PagedMemory()
        memory.map_region(BASE, PAGE_SIZE, PERM_R)
        with pytest.raises(MemoryFault) as exc:
            memory.write(BASE, b"x")
        assert exc.value.kind == "perm"

    def test_execute_needs_x(self, mem):
        with pytest.raises(MemoryFault):
            mem.fetch(BASE)  # PERM_RW, no X

    def test_fetch_alignment(self):
        memory = PagedMemory()
        memory.map_region(BASE, PAGE_SIZE, PERM_RX)
        with pytest.raises(MemoryFault) as exc:
            memory.fetch(BASE + 2)
        assert exc.value.kind == "align"

    def test_cross_page_access(self, mem):
        addr = BASE + PAGE_SIZE - 3
        mem.write(addr, b"abcdef")
        assert mem.read(addr, 6) == b"abcdef"

    def test_cross_page_fault_if_second_unmapped(self):
        memory = PagedMemory()
        memory.map_region(BASE, PAGE_SIZE, PERM_RW)
        with pytest.raises(MemoryFault):
            memory.write(BASE + PAGE_SIZE - 2, b"abcd")

    def test_protect_changes_perms(self, mem):
        mem.protect(BASE, PAGE_SIZE, PERM_R)
        mem.read(BASE, 8)
        with pytest.raises(MemoryFault):
            mem.write(BASE, b"x")

    def test_unmap(self, mem):
        mem.unmap(BASE, PAGE_SIZE)
        with pytest.raises(MemoryFault):
            mem.read(BASE, 1)

    def test_unaligned_map_rejected(self):
        memory = PagedMemory()
        with pytest.raises(ValueError):
            memory.map_region(123, PAGE_SIZE, PERM_RW)

    def test_u64_helpers(self, mem):
        mem.write_u64(BASE, 0xDEADBEEF12345678)
        assert mem.read_u64(BASE) == 0xDEADBEEF12345678
        mem.write_u32(BASE + 8, 0xCAFEBABE)
        assert mem.read_u32(BASE + 8) == 0xCAFEBABE

    def test_cstring(self, mem):
        mem.write(BASE, b"hello\x00world")
        assert mem.read_cstring(BASE) == b"hello"

    def test_mapped_regions_coalesced(self):
        memory = PagedMemory()
        memory.map_region(BASE, PAGE_SIZE * 2, PERM_RW)
        memory.map_region(BASE + PAGE_SIZE * 2, PAGE_SIZE, PERM_RX)
        regions = list(memory.mapped_regions())
        assert regions == [
            (BASE, PAGE_SIZE * 2, PERM_RW),
            (BASE + PAGE_SIZE * 2, PAGE_SIZE, PERM_RX),
        ]

    @given(st.integers(min_value=0, max_value=PAGE_SIZE * 4 - 64),
           st.binary(min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_property_write_read(self, offset, data):
        memory = PagedMemory()
        memory.map_region(BASE, PAGE_SIZE * 4, PERM_RW)
        memory.write(BASE + offset, data)
        assert memory.read(BASE + offset, len(data)) == data


class TestSandboxLayout:
    def test_constants(self):
        """Paper §3: 4GiB sandboxes, 48KiB guards, 64Ki sandboxes in 48 bits."""
        assert SANDBOX_SIZE == 1 << 32
        assert GUARD_SIZE == 48 * 1024
        assert GUARD_SIZE > 2**15 + 2**10
        assert MAX_SANDBOXES_48BIT == 65536

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            SandboxLayout(0x1234)

    def test_slot_math(self):
        layout = SandboxLayout.for_slot(3)
        assert layout.base == 3 * SANDBOX_SIZE
        assert layout.slot == 3
        assert layout.end == 4 * SANDBOX_SIZE

    def test_regions_ordered_and_disjoint(self):
        layout = SandboxLayout.for_slot(1)
        assert layout.table_base == layout.base
        assert layout.low_guard_base == layout.base + PAGE_SIZE
        assert layout.usable_base == layout.low_guard_base + GUARD_SIZE
        assert layout.usable_end == layout.end - GUARD_SIZE
        assert layout.usable_base < layout.code_limit < layout.usable_end

    def test_code_keepout_is_128mib(self):
        layout = SandboxLayout.for_slot(0)
        assert layout.end - layout.code_limit == 128 * 1024 * 1024

    def test_guard_semantics(self):
        """The add-uxtw guard forces any value into the sandbox (§3)."""
        layout = SandboxLayout.for_slot(5)
        evil = (7 << 32) | 0x1234
        assert layout.guarded(evil) == layout.base + 0x1234
        inside = layout.base + 0x8000
        assert layout.guarded(inside) == inside

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=200)
    def test_guard_always_in_sandbox(self, value):
        layout = SandboxLayout.for_slot(9)
        assert layout.contains(layout.guarded(value))

    def test_offset_of(self):
        layout = SandboxLayout.for_slot(2)
        assert layout.offset_of(layout.base + 42) == 42

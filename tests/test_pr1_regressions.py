"""Regression tests for PR 1 edge cases (ISSUE 2 satellite).

Two seams that PR 1 introduced and nothing yet pinned down:

* ``ResourceQuota`` inheritance across ``fork`` — the child must share
  the parent's quota *object* (one budget for the tree, like rlimits
  under ``fork``), survive the parent's quota being cleared, and be
  enforced against the child's own fd table;
* ``PipeEnd`` reference counting — an end referenced by several fd
  tables (``fork`` copies the table) must close its pipe direction only
  when the last referent drops, stay safe under double-close, and close
  automatically when a process exits.
"""

from __future__ import annotations

import errno

from repro.runtime import ResourceQuota, Runtime, RuntimeCall
from repro.runtime.process import ProcessState
from repro.runtime.syscalls import rt_close, rt_pipe
from repro.runtime.vfs import Pipe
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall

EXIT0 = prologue() + "    mov x0, #0\n" + rt_exit()


def _spawned_runtime():
    runtime = Runtime()
    proc = runtime.spawn(compile_lfi(EXIT0).elf, verify=True)
    return runtime, proc


class TestQuotaInheritance:
    def test_fork_shares_the_quota_object(self):
        runtime, parent = _spawned_runtime()
        quota = ResourceQuota(max_instructions=1000, max_fds=8)
        runtime.set_quota(parent, quota)
        child = runtime.fork(parent)
        assert runtime.quotas[child.pid] is quota

    def test_fork_without_quota_leaves_child_unlimited(self):
        runtime, parent = _spawned_runtime()
        child = runtime.fork(parent)
        assert child.pid not in runtime.quotas
        assert runtime.fd_slots_free(child, 1000)

    def test_clearing_parent_quota_keeps_the_child_quota(self):
        runtime, parent = _spawned_runtime()
        quota = ResourceQuota(max_fds=4)
        runtime.set_quota(parent, quota)
        child = runtime.fork(parent)
        runtime.set_quota(parent, None)
        assert parent.pid not in runtime.quotas
        assert runtime.quotas[child.pid] is quota

    def test_grandchild_inherits_through_a_fork_chain(self):
        runtime, parent = _spawned_runtime()
        quota = ResourceQuota(max_mapped_pages=64)
        runtime.set_quota(parent, quota)
        child = runtime.fork(parent)
        grandchild = runtime.fork(child)
        assert runtime.quotas[grandchild.pid] is quota

    def test_fd_quota_enforced_against_child_table(self):
        runtime, parent = _spawned_runtime()
        runtime.set_quota(parent, ResourceQuota(max_fds=4))
        child = runtime.fork(parent)
        # The child starts with the three std streams: one more slot left.
        assert len(child.fds) == 3
        assert runtime.fd_slots_free(child, 1)
        assert not runtime.fd_slots_free(child, 2)
        child.registers["regs"][0] = child.layout.base + 0x2000_0000
        assert rt_pipe(runtime, child) == -errno.EMFILE

    def test_instruction_quota_is_per_process_not_shared_count(self):
        # The quota object is shared, but each process's own instruction
        # counter is compared against it.
        runtime, parent = _spawned_runtime()
        quota = ResourceQuota(max_instructions=500)
        runtime.set_quota(parent, quota)
        child = runtime.fork(parent)
        parent.instructions = 499
        child.instructions = 0
        runtime._check_instruction_quota(parent)
        runtime._check_instruction_quota(child)
        assert parent.state != ProcessState.ZOMBIE
        assert child.state != ProcessState.ZOMBIE
        parent.instructions = 501
        runtime._check_instruction_quota(parent)
        assert parent.state == ProcessState.ZOMBIE
        assert child.state != ProcessState.ZOMBIE


class TestPipeEndRefcounting:
    def test_fork_retains_each_shared_end(self):
        runtime, parent = _spawned_runtime()
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        parent.fds[3], parent.fds[4] = r, w
        child = runtime.fork(parent)
        assert r.refs == 2 and w.refs == 2
        assert child.fds[3] is r and child.fds[4] is w

    def test_fork_then_exit_drops_only_one_reference(self):
        runtime, parent = _spawned_runtime()
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        parent.fds[3], parent.fds[4] = r, w
        child = runtime.fork(parent)
        runtime.terminate(child, 0)
        # The child's references dropped; the parent keeps the pipe alive.
        assert r.refs == 1 and w.refs == 1
        assert pipe.read_open and pipe.write_open
        runtime.terminate(parent, 0)
        assert r.refs == 0 and w.refs == 0
        assert not pipe.read_open and not pipe.write_open

    def test_double_close_does_not_underflow(self):
        pipe = Pipe()
        end = pipe.write_end()
        end.close()
        assert end.refs == 0 and not pipe.write_open
        end.close()  # stray second close floors at zero
        end.close()
        assert end.refs == 0
        assert not pipe.write_open

    def test_rt_close_twice_returns_ebadf(self):
        runtime, proc = _spawned_runtime()
        pipe = Pipe()
        end = pipe.write_end()
        proc.fds[5] = end
        proc.registers["regs"][0] = 5
        assert rt_close(runtime, proc) == 0
        assert end.refs == 0 and not pipe.write_open
        assert rt_close(runtime, proc) == -errno.EBADF
        assert end.refs == 0

    def test_close_in_one_table_keeps_the_other_alive(self):
        runtime, parent = _spawned_runtime()
        pipe = Pipe()
        w = pipe.write_end()
        parent.fds[4] = w
        child = runtime.fork(parent)
        child.registers["regs"][0] = 4
        assert rt_close(runtime, child) == 0
        assert w.refs == 1 and pipe.write_open
        assert 4 in parent.fds and 4 not in child.fds


class TestForkPipeEndToEnd:
    """Guest-driven: pipe, fork, child writes and exits, parent reads to
    EOF — exercising retain-on-fork and close-on-exit from sandbox code."""

    SOURCE = prologue() + """
    adrp x19, fds
    add x19, x19, :lo12:fds
    mov x0, x19
""" + rtcall(RuntimeCall.PIPE) + """
    tbnz x0, #63, bad
""" + rtcall(RuntimeCall.FORK) + """
    tbnz x0, #63, bad
    cbz x0, child
    ldr w0, [x19, #4]
""" + rtcall(RuntimeCall.CLOSE) + """
    mov x0, #0
""" + rtcall(RuntimeCall.WAIT) + """
    ldr w0, [x19]
    add x1, x19, #16
    mov x2, #8
""" + rtcall(RuntimeCall.READ) + """
    mov x20, x0
    ldr w0, [x19]
    add x1, x19, #16
    mov x2, #8
""" + rtcall(RuntimeCall.READ) + """
    cbnz x0, bad
    mov x0, x20
""" + rt_exit() + """
child:
    ldr w0, [x19, #4]
    mov x1, x19
    mov x2, #3
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #7
""" + rt_exit() + """
bad:
    mov x0, #99
""" + rt_exit() + """
.data
.balign 8
fds:
    .skip 32
"""

    def test_parent_reads_then_hits_eof(self):
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(self.SOURCE).elf, verify=True)
        code = runtime.run_until_exit(proc, max_instructions=200_000)
        # 3 bytes read, then EOF once the child (the last writer) exited.
        assert code == 3
        assert runtime.faults == []

"""Encoder/decoder tests, including Hypothesis round-trip properties.

Two directions are checked:

* instruction -> word -> instruction -> word must reproduce the word
  (semantic fidelity of the decoder), and
* for arbitrary 32-bit words, if the decoder accepts a word, re-encoding the
  decoded instruction must reproduce the word exactly (the decoder never
  "normalizes" machine code — vital for a verifier).
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.arm64.decoder import decode_word
from repro.arm64.encoder import (
    EncodeError,
    decode_bitmask,
    decode_fp8,
    encode_bitmask,
    encode_fp8,
    encode_instruction,
)


def encode_text(text, pc=0, symbols=None):
    program = parse_assembly(text)
    insts = list(program.instructions())
    assert len(insts) == 1
    return encode_instruction(insts[0], pc=pc, symbols=symbols or {})


def roundtrip(text, pc=0, symbols=None):
    word = encode_text(text, pc, symbols)
    inst = decode_word(word, pc)
    assert inst is not None, f"decoder rejected {text!r} ({word:#010x})"
    word2 = encode_instruction(inst, pc=pc, symbols=symbols or {})
    assert word2 == word, f"{text}: {word:#010x} != {word2:#010x} via {inst}"
    return inst


class TestKnownEncodings:
    """Golden encodings cross-checked against the ARM ARM / GNU as."""

    def test_nop(self):
        assert encode_text("nop") == 0xD503201F

    def test_ret(self):
        assert encode_text("ret") == 0xD65F03C0

    def test_add_imm(self):
        # add x0, x1, #4 => 0x91001020
        assert encode_text("add x0, x1, #4") == 0x91001020

    def test_add_extended_guard(self):
        # The LFI guard: add x18, x21, w1, uxtw => 0x8B214AB2
        assert encode_text("add x18, x21, w1, uxtw") == 0x8B2142B2

    def test_ldr_unsigned(self):
        # ldr x0, [x1, #16] => 0xF9400820
        assert encode_text("ldr x0, [x1, #16]") == 0xF9400820

    def test_ldr_guard_form(self):
        # ldr x0, [x21, w1, uxtw] => register offset, option=010, S=0
        word = encode_text("ldr x0, [x21, w1, uxtw]")
        assert word == 0xF8614AA0

    def test_str_pre_index(self):
        # str x0, [sp, #-16]! => 0xF81F0FE0
        assert encode_text("str x0, [sp, #-16]!") == 0xF81F0FE0

    def test_stp_pre_index(self):
        # stp x29, x30, [sp, #-32]! => 0xA9BE7BFD
        assert encode_text("stp x29, x30, [sp, #-32]!") == 0xA9BE7BFD

    def test_movz_shift(self):
        # movz x9, #0x1234, lsl #16 => 0xD2A24689
        assert encode_text("movz x9, #0x1234, lsl #16") == 0xD2A24689

    def test_svc(self):
        assert encode_text("svc #0") == 0xD4000001

    def test_b_forward(self):
        # b .+8 => 0x14000002
        assert encode_text("b target", pc=0, symbols={"target": 8}) == 0x14000002

    def test_bl_backward(self):
        assert (
            encode_text("bl target", pc=16, symbols={"target": 0}) == 0x97FFFFFC
        )

    def test_cbz(self):
        word = encode_text("cbz x0, target", pc=0, symbols={"target": 64})
        assert word == 0xB4000200

    def test_mov_reg(self):
        # mov x0, x1 == orr x0, xzr, x1 => 0xAA0103E0
        assert encode_text("mov x0, x1") == 0xAA0103E0

    def test_mov_sp(self):
        # mov x29, sp == add x29, sp, #0 => 0x910003FD
        assert encode_text("mov x29, sp") == 0x910003FD

    def test_cmp_alias(self):
        # cmp x0, #0 == subs xzr, x0, #0 => 0xF100001F
        assert encode_text("cmp x0, #0") == 0xF100001F

    def test_lsl_alias(self):
        # lsl x0, x1, #3 == ubfm x0, x1, #61, #60 => 0xD37DF020
        assert encode_text("lsl x0, x1, #3") == 0xD37DF020

    def test_and_bitmask(self):
        # and x0, x1, #0xff => 0x92401C20
        assert encode_text("and x0, x1, #0xff") == 0x92401C20


class TestAliasCanonicalization:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("cmp x1, x2", "subs xzr, x1, x2"),
            ("cmn w1, #3", "adds wzr, w1, #3"),
            ("tst x3, x4", "ands xzr, x3, x4"),
            ("neg x0, x5", "sub x0, xzr, x5"),
            ("mvn w2, w3", "orn w2, wzr, w3"),
            ("mul x0, x1, x2", "madd x0, x1, x2, xzr"),
            ("mneg x0, x1, x2", "msub x0, x1, x2, xzr"),
            ("cset x0, eq", "csinc x0, xzr, xzr, ne"),
            ("csetm w0, lt", "csinv w0, wzr, wzr, ge"),
            ("cinc x1, x2, gt", "csinc x1, x2, x2, le"),
            ("lsr w0, w1, #5", "ubfm w0, w1, #5, #31"),
            ("asr x0, x1, #7", "sbfm x0, x1, #7, #63"),
            ("sxtw x0, w1", "sbfm x0, x1, #0, #31"),
            ("ubfx x0, x1, #8, #4", "ubfm x0, x1, #8, #11"),
        ],
    )
    def test_same_word(self, alias, canonical):
        assert encode_text(alias) == encode_text(canonical)


class TestInstructionRoundTrip:
    CASES = [
        "add x0, x1, x2",
        "adds w3, w4, w5",
        "sub x6, x7, x8, lsl #12",
        "add x18, x21, w1, uxtw",
        "add sp, x21, x22",
        "and x0, x1, #0xff00ff00ff00ff00",
        "orr w2, w3, #0x7fffffff",
        "eor x4, x5, x6, lsr #3",
        "bic x7, x8, x9",
        "movz x9, #0x1234, lsl #32",
        "movn w1, #77",
        "movk x2, #0xdead, lsl #48",
        "ubfm x0, x1, #3, #20",
        "sbfm w0, w1, #2, #17",
        "ror x0, x1, #13",
        "madd x0, x1, x2, x3",
        "msub w4, w5, w6, w7",
        "smull x0, w1, w2",
        "umulh x3, x4, x5",
        "sdiv x6, x7, x8",
        "udiv w9, w10, w11",
        "clz x0, x1",
        "rbit w2, w3",
        "rev x4, x5",
        "csel x0, x1, x2, ne",
        "csinc w3, w4, w5, lt",
        "csinv x6, x7, x8, cs",
        "csneg x9, x10, x11, vc",
        "ccmp x0, #12, #4, eq",
        "ccmn w1, w2, #0, gt",
        "ldr x0, [x1]",
        "ldr x0, [x1, #2048]",
        "ldr w2, [x3, #-9]",
        "ldur x4, [x5, #-17]",
        "str x6, [x7, #8]!",
        "str w8, [x9], #-4",
        "ldr x0, [x21, w1, uxtw]",
        "ldr x0, [x1, x2, lsl #3]",
        "str w3, [x4, w5, sxtw #2]",
        "ldr x6, [x7, x8]",
        "ldrb w0, [x1, #3]",
        "strh w2, [x3, #6]",
        "ldrsb x4, [x5]",
        "ldrsh w6, [x7, #2]",
        "ldrsw x8, [x9, #4]",
        "ldp x0, x1, [sp, #16]",
        "stp x29, x30, [sp, #-32]!",
        "ldp w2, w3, [x4], #8",
        "stp d8, d9, [sp, #48]",
        "ldxr x0, [x1]",
        "stxr w2, x3, [x4]",
        "ldaxr w5, [x6]",
        "stlxr w7, w8, [x9]",
        "ldar x10, [x11]",
        "stlr w12, [x13]",
        "ldr d0, [x1, #8]",
        "str q2, [x3, #64]",
        "ldr s4, [x5, x6]",
        "br x3",
        "blr x30",
        "ret",
        "ret x1",
        "nop",
        "brk #7",
        "dmb ish",
        "isb sy",
        "fadd d0, d1, d2",
        "fsub s3, s4, s5",
        "fmul d6, d7, d8",
        "fdiv s9, s10, s11",
        "fneg d12, d13",
        "fabs s14, s15",
        "fsqrt d16, d17",
        "fmadd d0, d1, d2, d3",
        "fmsub s4, s5, s6, s7",
        "fcmp d0, d1",
        "fcmpe s2, s3",
        "fcsel d4, d5, d6, ne",
        "fmov d0, d1",
        "fmov x0, d1",
        "fmov d2, x3",
        "fmov s4, w5",
        "fmov d6, #1.0",
        "fmov s7, #-0.5",
        "scvtf d0, x1",
        "ucvtf s2, w3",
        "fcvtzs x4, d5",
        "fcvtzu w6, s7",
        "fcvt d0, s1",
        "fcvt s2, d3",
        "add v0.4s, v1.4s, v2.4s",
        "sub v3.2d, v4.2d, v5.2d",
        "mul v6.8h, v7.8h, v8.8h",
        "and v0.16b, v1.16b, v2.16b",
        "eor v3.8b, v4.8b, v5.8b",
        "orr v6.16b, v7.16b, v8.16b",
        "fadd v0.4s, v1.4s, v2.4s",
        "fsub v3.2d, v4.2d, v5.2d",
        "fmul v6.2s, v7.2s, v8.2s",
        "movi v0.16b, #42",
        "movi v1.2d, #0",
        "dup v2.4s, w3",
        "dup v4.2d, x5",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        roundtrip(text)

    BRANCHES = [
        ("b target", 0x1000, {"target": 0x2000}),
        ("bl target", 0x1000, {"target": 0x400}),
        ("b.eq target", 0x1000, {"target": 0x1004}),
        ("b.hi target", 0x1000, {"target": 0xF00}),
        ("cbz x0, target", 0x1000, {"target": 0x1100}),
        ("cbnz w1, target", 0x1000, {"target": 0xFF0}),
        ("tbz x2, #33, target", 0x1000, {"target": 0x1010}),
        ("tbnz w3, #5, target", 0x1000, {"target": 0x1020}),
        ("adr x0, target", 0x1000, {"target": 0x1234}),
        ("adrp x1, target", 0x1000, {"target": 0x40000}),
    ]

    @pytest.mark.parametrize("text,pc,symbols", BRANCHES)
    def test_branch_roundtrip(self, text, pc, symbols):
        roundtrip(text, pc=pc, symbols=symbols)


class TestEncodeErrors:
    def test_unencodable_bitmask(self):
        with pytest.raises(EncodeError):
            encode_text("and x0, x1, #0x12345")

    def test_offset_too_large(self):
        with pytest.raises(EncodeError):
            encode_text("ldr x0, [x1, #100000]")

    def test_branch_out_of_range(self):
        with pytest.raises(EncodeError):
            encode_text("b.eq target", pc=0, symbols={"target": 1 << 26})

    def test_misaligned_branch(self):
        with pytest.raises(EncodeError):
            encode_text("b target", pc=0, symbols={"target": 6})

    def test_bad_memory_shift(self):
        with pytest.raises(EncodeError):
            encode_text("ldr x0, [x1, x2, lsl #2]")  # must be 0 or 3

    def test_undefined_symbol(self):
        with pytest.raises(EncodeError):
            encode_text("b nowhere")

    def test_mov_unencodable(self):
        with pytest.raises(EncodeError):
            encode_text("mov x0, #0x123456789")


class TestBitmaskImmediates:
    @pytest.mark.parametrize(
        "value,width",
        [
            (0xFF, 64),
            (0xFF00, 64),
            (0x5555555555555555, 64),
            (0x3F3F3F3F3F3F3F3F, 64),
            (0xFFFF0000FFFF0000, 64),
            (0x7FFFFFFF, 32),
            (0x80000001, 32),
            (0xE0000000, 32),
            (1, 64),
            ((1 << 63), 64),
        ],
    )
    def test_encode_decode(self, value, width):
        fields = encode_bitmask(value, width)
        assert fields is not None
        n, immr, imms = fields
        assert decode_bitmask(n, immr, imms, width) == value

    @pytest.mark.parametrize("value,width", [(0, 64), (2**64 - 1, 64),
                                             (0, 32), (2**32 - 1, 32),
                                             (0x12345, 64)])
    def test_not_encodable(self, value, width):
        assert encode_bitmask(value, width) is None

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=300)
    def test_property_64(self, value):
        fields = encode_bitmask(value, 64)
        if fields is not None:
            n, immr, imms = fields
            assert decode_bitmask(n, immr, imms, 64) == value

    @given(st.integers(min_value=1, max_value=63),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=200)
    def test_runs_always_encodable(self, ones, rotation):
        """Every rotated run of ones is a valid 64-bit bitmask immediate."""
        run = (1 << ones) - 1
        value = ((run >> rotation) | (run << (64 - rotation))) & (2**64 - 1)
        assert encode_bitmask(value, 64) is not None


class TestFp8:
    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 2.0, 0.125, 31.0,
                                       -0.5, 1.5, 3.0, 10.0])
    def test_encodable(self, value):
        imm8 = encode_fp8(value)
        assert imm8 is not None
        assert decode_fp8(imm8) == value

    @pytest.mark.parametrize("value", [0.0, 0.1, 100.0, -64.0])
    def test_not_encodable(self, value):
        assert encode_fp8(value) is None

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_all(self, imm8):
        assert encode_fp8(decode_fp8(imm8)) == imm8


class TestDecoderStrictness:
    """decode(word) accepted => encode(decode(word)) == word."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=2000, deadline=None)
    def test_random_words(self, word):
        inst = decode_word(word, pc=0x10000)
        if inst is None:
            return
        word2 = encode_instruction(inst, pc=0x10000, symbols={})
        assert word2 == word, f"{inst} decoded from {word:#010x} -> {word2:#010x}"

    def test_unknown_word_rejected(self):
        # An MSR instruction: not in the supported subset.
        assert decode_word(0xD51B4200) is None

    def test_noncanonical_rejected(self):
        # add x0, x1, #0 with sh=1: non-canonical, decoder must reject.
        word = (1 << 31) | (0b100010 << 23) | (1 << 22) | (1 << 5)
        assert decode_word(word) is None


class TestDecodeSegment:
    def test_decode_text_stream(self):
        from repro.arm64.decoder import decode_text

        program = parse_assembly("start:\n mov x0, #1\n add x0, x0, #2\n ret\n")
        image = assemble(program)
        decoded = decode_text(bytes(image.text.data), image.text.base)
        # "mov x0, #1" canonicalizes to movz at the machine-code level.
        assert [d.mnemonic for d in decoded] == ["movz", "add", "ret"]

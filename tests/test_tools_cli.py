"""Tests for the command-line toolchain (repro.tools)."""

import subprocess
import sys

import pytest

from repro.tools import main
from repro.workloads.rtlib import prologue, rt_exit

HELLO = prologue() + "    mov x0, #7\n" + rt_exit()
UNSAFE = prologue() + "    ldr x0, [x1]\n" + rt_exit()


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(HELLO)
    return path


@pytest.fixture
def unsafe_asm(tmp_path):
    path = tmp_path / "unsafe.s"
    path.write_text(UNSAFE)
    return path


class TestRewrite:
    def test_rewrite_to_file(self, tmp_path, unsafe_asm):
        out = tmp_path / "out.s"
        assert main(["rewrite", str(unsafe_asm), "-o", str(out)]) == 0
        text = out.read_text()
        assert "[x21, w1, uxtw]" in text

    def test_rewrite_o0(self, tmp_path, unsafe_asm):
        out = tmp_path / "o0.s"
        assert main(["rewrite", str(unsafe_asm), "-O", "O0",
                     "-o", str(out)]) == 0
        assert "add x18, x21, w1, uxtw" in out.read_text()

    def test_rewrite_rejects_svc(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("svc #0\n")
        assert main(["rewrite", str(bad)]) == 1
        assert "rewrite error" in capsys.readouterr().err

    def test_stdout_output(self, unsafe_asm, capsys):
        assert main(["rewrite", str(unsafe_asm)]) == 0
        assert "uxtw" in capsys.readouterr().out


class TestCompileVerifyRun:
    def test_pipeline(self, tmp_path, asm_file, capsys):
        elf = tmp_path / "prog.elf"
        assert main(["compile", str(asm_file), "-o", str(elf)]) == 0
        assert elf.read_bytes()[:4] == b"\x7fELF"

        assert main(["verify", str(elf)]) == 0
        assert "OK" in capsys.readouterr().out

        code = main(["run", str(elf)])
        assert code == 7

    def test_native_compile_fails_verification(self, tmp_path, unsafe_asm,
                                               capsys):
        elf = tmp_path / "native.elf"
        assert main(["compile", str(unsafe_asm), "--native",
                     "-o", str(elf)]) == 0
        assert main(["verify", str(elf)]) == 1
        assert "unguarded base" in capsys.readouterr().err

    def test_run_unverified_native(self, tmp_path, asm_file):
        elf = tmp_path / "n.elf"
        main(["compile", str(asm_file), "--native", "-o", str(elf)])
        assert main(["run", str(elf), "--unsafe-no-verify"]) == 7

    def test_run_with_machine_model(self, tmp_path, asm_file, capsys):
        elf = tmp_path / "m.elf"
        main(["compile", str(asm_file), "-o", str(elf)])
        assert main(["run", str(elf), "--machine", "apple-m1",
                     "--stats"]) == 7
        assert "cycles" in capsys.readouterr().err

    def test_verify_no_loads_policy(self, tmp_path, unsafe_asm):
        elf = tmp_path / "nl.elf"
        main(["compile", str(unsafe_asm), "--native", "-o", str(elf)])
        assert main(["verify", str(elf), "--no-loads"]) == 0

    def test_verify_spectre_policy(self, tmp_path, capsys):
        src = tmp_path / "x.s"
        src.write_text("add x18, x21, w1, uxtw\n ldxr x0, [x18]\n ret\n")
        elf = tmp_path / "x.elf"
        main(["compile", str(src), "--native", "-o", str(elf)])
        assert main(["verify", str(elf)]) == 0
        assert main(["verify", str(elf), "--no-exclusives"]) == 1


class TestDisasm:
    def test_disassembly_output(self, tmp_path, asm_file, capsys):
        elf = tmp_path / "prog.elf"
        main(["compile", str(asm_file), "-o", str(elf)])
        assert main(["disasm", str(elf)]) == 0
        out = capsys.readouterr().out
        assert "blr x30" in out
        assert "movz x0, #7" in out


class TestModuleEntry:
    def test_python_dash_m(self, tmp_path):
        src = tmp_path / "p.s"
        src.write_text(HELLO)
        elf = tmp_path / "p.elf"
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "compile", str(src),
             "-o", str(elf)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "run", str(elf)],
            capture_output=True, text=True,
        )
        assert result.returncode == 7


class TestErrorPaths:
    """Tool failures are one-line diagnostics, never tracebacks."""

    def _run(self, argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.tools", *argv],
            capture_output=True, text=True,
        )

    def test_malformed_elf_one_line_diagnostic(self, tmp_path):
        bogus = tmp_path / "bogus.elf"
        bogus.write_bytes(b"\x7fELF garbage that is not a real image")
        result = self._run(["run", str(bogus)])
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "Traceback" not in result.stderr
        assert len(result.stderr.strip().splitlines()) == 1

    def test_truncated_elf_via_verify(self, tmp_path):
        bogus = tmp_path / "short.elf"
        bogus.write_bytes(b"\x7fEL")
        result = self._run(["verify", str(bogus)])
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_missing_input_file(self):
        result = self._run(["disasm", "/nonexistent/input.elf"])
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_unwritable_output_target(self, tmp_path):
        src = tmp_path / "p.s"
        src.write_text(HELLO)
        result = self._run([
            "compile", str(src), "-o",
            str(tmp_path / "no" / "such" / "dir" / "out.elf"),
        ])
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_bad_opt_level_rejected_without_traceback(self, tmp_path):
        src = tmp_path / "p.s"
        src.write_text(HELLO)
        result = self._run(["rewrite", str(src), "-O", "O9"])
        assert result.returncode != 0
        assert "invalid choice" in result.stderr
        assert "Traceback" not in result.stderr

    def test_in_process_main_returns_one(self, tmp_path, capsys):
        bogus = tmp_path / "b.elf"
        bogus.write_bytes(b"not an elf at all")
        assert main(["run", str(bogus)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro.tools: error:")


class TestClusterCommand:
    def test_cluster_batch(self, tmp_path):
        report = tmp_path / "report.txt"
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "cluster",
             "--workers", "2", "--jobs", "4", "--distinct", "2",
             "--target", "2000", "-o", str(report)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        text = report.read_text()
        assert text.startswith("cluster.jobs 4\n")
        assert "job[3].sandbox[0].instructions" in text
        assert "warm" in result.stderr


class TestSharedFlags:
    """rewrite/fuzz/trace/profile share one spelling of the common flags."""

    COMMANDS = ("rewrite", "fuzz", "trace", "profile")

    def _parse(self, command, extra):
        from repro.tools.cli import build_parser

        positional = [] if command == "fuzz" else ["input.s"]
        return build_parser().parse_args([command, *positional, *extra])

    def test_defaults_identical(self):
        for command in self.COMMANDS:
            args = self._parse(command, [])
            assert args.out == "-", command
            assert args.seed == 0, command
            assert args.opt_level == "O2", command

    def test_spellings_accepted_everywhere(self):
        for command in self.COMMANDS:
            args = self._parse(command, [
                "--seed", "9", "--out", "x.txt", "--opt-level", "O1",
            ])
            assert (args.seed, args.out, args.opt_level) == (9, "x.txt", "O1")
            args = self._parse(command, ["-o", "y.txt", "-O", "O0"])
            assert (args.out, args.opt_level) == ("y.txt", "O0")


class TestServeCommand:
    CONFIG = {
        "lanes": 2, "duration_s": 0.2, "checkpoint_interval": 2000,
        "tenants": {
            "gold": {"priority": 0, "rate": 60, "burst": 8, "sla_ms": 50,
                     "load": {"rate": 30, "instructions": 3000,
                              "value": 1}},
            "bronze": {"priority": 2, "rate": 10, "burst": 2,
                       "queue_limit": 4,
                       "load": {"rate": 60, "instructions": 4000,
                                "value": 2}},
        },
    }

    def _config_file(self, tmp_path):
        import json

        path = tmp_path / "serve.json"
        path.write_text(json.dumps(self.CONFIG))
        return path

    def test_serve_report_and_metrics(self, tmp_path, capsys):
        config = self._config_file(tmp_path)
        report = tmp_path / "report.txt"
        metrics = tmp_path / "metrics.prom"
        assert main(["serve", "--config", str(config), "--seed", "3",
                     "-o", str(report), "--metrics-out", str(metrics)]) == 0
        err = capsys.readouterr().err
        assert "requests over 0.2 virtual s on 2 lane(s)" in err
        text = report.read_text()
        assert text.startswith("tenant prio offered ok rejected")
        assert "bronze 2 " in text and "gold 0 " in text
        exposition = metrics.read_text()
        assert "# TYPE repro_serve_completed_total counter" in exposition

        from repro.obs import validate_exposition

        assert validate_exposition(exposition) == []

    def test_serve_deterministic_across_runs(self, tmp_path, capsys):
        config = self._config_file(tmp_path)
        outs = []
        for name in ("a", "b"):
            report = tmp_path / f"{name}.txt"
            metrics = tmp_path / f"{name}.prom"
            assert main(["serve", "--config", str(config), "--seed", "7",
                         "-o", str(report),
                         "--metrics-out", str(metrics)]) == 0
            outs.append(report.read_text() + metrics.read_text())
        capsys.readouterr()
        assert outs[0] == outs[1]

    def test_serve_bad_json_one_line_diagnostic(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "serve",
             "--config", str(bad)],
            capture_output=True, text=True)
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "Traceback" not in result.stderr
        assert len(result.stderr.strip().splitlines()) == 1

    def test_serve_unknown_tenant_key_one_line_diagnostic(self, tmp_path):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"tenants": {"t": {"rte": 10}}}))
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "serve",
             "--config", str(bad)],
            capture_output=True, text=True)
        assert result.returncode == 1
        assert "repro.tools: error:" in result.stderr
        assert "unknown keys" in result.stderr
        assert "Traceback" not in result.stderr

"""Runtime integration tests: loading, runtime calls, scheduling, fork,
pipes, yield IPC, and — critically — sandbox isolation under attack."""

import pytest

from repro.core import VerificationError
from repro.emulator import APPLE_M1
from repro.memory import PAGE_SIZE, SANDBOX_SIZE
from repro.runtime import Deadlock, ProcessState, Runtime, RuntimeCall
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall


def lfi_proc(runtime, src):
    return runtime.spawn(compile_lfi(src).elf, verify=True)


def verified_attacker(runtime, src):
    """Hand-written machine code (guards included) straight to the
    verifier, as a malicious toolchain would submit it."""
    return runtime.spawn(compile_native(src).elf, verify=True)


def run_exit(src, model=None, **kwargs):
    runtime = Runtime(model=model, **kwargs)
    proc = lfi_proc(runtime, src)
    code = runtime.run_until_exit(proc)
    return runtime, proc, code


EXIT42 = prologue() + "    mov x0, #42\n" + rt_exit()


class TestBasicExecution:
    def test_exit_code(self):
        _, _, code = run_exit(EXIT42)
        assert code == 42

    def test_native_spawn_matches(self):
        runtime = Runtime()
        proc = runtime.spawn(compile_native(EXIT42).elf, verify=False)
        assert runtime.run_until_exit(proc) == 42

    def test_unverified_malicious_rejected(self):
        bad = prologue() + "    ldr x0, [x1]\n" + rt_exit()
        runtime = Runtime()
        with pytest.raises(VerificationError):
            runtime.spawn(compile_native(bad).elf, verify=True)

    def test_stdout(self):
        src = prologue() + """
            mov x0, #1
            adrp x1, msg
            add x1, x1, :lo12:msg
            mov x2, #14
        """ + rtcall(RuntimeCall.WRITE) + """
            mov x0, #0
        """ + rt_exit() + """
        .rodata
        msg: .asciz "hello, world!\\n"
        """
        runtime, proc, code = run_exit(src)
        assert code == 0
        assert runtime.stdout_of(proc) == "hello, world!\n"

    def test_getpid(self):
        src = prologue() + rtcall(RuntimeCall.GETPID) + rt_exit()
        _, proc, code = run_exit(src)
        assert code == proc.pid

    def test_heap_brk(self):
        src = prologue() + """
            mov x0, #0
        """ + rtcall(RuntimeCall.BRK) + """
            mov x19, x0              // current brk
            add x0, x0, #4096
        """ + rtcall(RuntimeCall.BRK) + """
            str x19, [x19]           // write to fresh heap memory
            ldr x1, [x19]
            cmp x0, x1
            mov x0, #7
        """ + rt_exit()
        _, _, code = run_exit(src)
        assert code == 7

    def test_mmap_munmap(self):
        src = prologue() + """
            mov x0, #0
            movz x1, #0x8000         // 32KiB
            mov x2, #3
            mov x3, #0x22
            movn x4, #0
            mov x5, #0
        """ + rtcall(RuntimeCall.MMAP) + """
            mov x19, x0
            mov x1, #123
            str x1, [x19]
            ldr x20, [x19]
            mov x0, x19
            movz x1, #0x8000
        """ + rtcall(RuntimeCall.MUNMAP) + """
            mov x0, x20
        """ + rt_exit()
        _, _, code = run_exit(src)
        assert code == 123


class TestFiles:
    def test_open_read_file(self):
        runtime = Runtime()
        runtime.vfs.mkdir("/data")
        runtime.vfs.write_file("/data/in.txt", b"A" * 10)
        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
            mov x1, #0               // O_RDONLY
        """ + rtcall(RuntimeCall.OPEN) + """
            mov x19, x0              // fd
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #64
            mov x0, x19
        """ + rtcall(RuntimeCall.READ) + rt_exit() + """
        .rodata
        path: .asciz "/data/in.txt"
        .data
        buf: .skip 64
        """
        proc = lfi_proc(runtime, src)
        assert runtime.run_until_exit(proc) == 10

    def test_denied_directory(self):
        """§5.3: the runtime disallows access to certain directories."""
        runtime = Runtime()
        runtime.vfs.mkdir("/secret")
        runtime.vfs.write_file("/secret/key", b"hunter2")
        runtime.vfs.deny("/secret")
        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
            mov x1, #0
        """ + rtcall(RuntimeCall.OPEN) + """
            neg x0, x0               // -EACCES -> EACCES
        """ + rt_exit() + """
        .rodata
        path: .asciz "/secret/key"
        """
        proc = lfi_proc(runtime, src)
        assert runtime.run_until_exit(proc) == 13  # EACCES

    def test_write_creates_file(self):
        runtime = Runtime()
        runtime.vfs.mkdir("/out")
        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
            movz x1, #0x41           // O_WRONLY|O_CREAT
        """ + rtcall(RuntimeCall.OPEN) + """
            adrp x1, data
            add x1, x1, :lo12:data
            mov x2, #4
        """ + rtcall(RuntimeCall.WRITE) + """
            mov x0, #0
        """ + rt_exit() + """
        .rodata
        path: .asciz "/out/f"
        data: .ascii "wxyz"
        """
        proc = lfi_proc(runtime, src)
        assert runtime.run_until_exit(proc) == 0
        assert runtime.vfs.read_file("/out/f") == b"wxyz"


class TestIsolation:
    """The point of the whole system: verified code cannot escape."""

    SECRET = 0xDEAD_BEEF_CAFE_F00D

    def test_guard_confines_wild_pointer(self):
        """A verified program dereferencing an arbitrary 64-bit pointer
        reads its own sandbox, never a neighbour's."""
        runtime = Runtime()
        victim_src = prologue() + """
            adrp x1, slot
            add x1, x1, :lo12:slot
            movz x2, #0xf00d
            movk x2, #0xcafe, lsl #16
            str x2, [x1]
        """ + "loop:\n" + rtcall(RuntimeCall.YIELD) + """
            b loop
        .data
        .balign 8
        slot: .quad 0
        """
        victim = lfi_proc(runtime, victim_src)

        # Attacker: construct the *victim's* absolute data address and read
        # through the guard; the guard forces it back into the attacker.
        attacker_src = prologue() + f"""
            adrp x1, slot
            add x1, x1, :lo12:slot
            movz x2, #{victim.layout.slot}, lsl #32
            orr x1, x1, x2            // victim-slot absolute address
            add x18, x21, w1, uxtw    // the guard
            ldr x0, [x18]
            and x0, x0, #0xff
        """ + rt_exit() + """
        .data
        .balign 8
        slot: .quad 0
        """
        attacker = verified_attacker(runtime, attacker_src)
        code = runtime.run_until_exit(attacker)
        # The attacker read its own zero-initialized slot, not the secret
        # (the victim's slot holds 0xcafef00d whose low byte is 0x0d).
        assert code == 0

    def test_guard_page_traps_kill_only_offender(self):
        runtime = Runtime()
        good = lfi_proc(runtime, EXIT42)
        # sp escape attempt: verified (access follows in block) but the
        # access lands in the guard region and traps.
        evil_src = prologue() + """
            sub sp, sp, #1008
            b spin
        spin:
            sub sp, sp, #1008
            ldr x0, [sp]
            b spin
        """
        evil = lfi_proc(runtime, evil_src)
        runtime.run()
        assert good.exit_code == 42
        assert evil.state == ProcessState.ZOMBIE
        assert runtime.faults and runtime.faults[0].pid == evil.pid
        assert runtime.faults[0].kind == "segv"

    def test_jump_outside_sandbox_confined(self):
        """An indirect branch to an arbitrary address stays in-sandbox."""
        src = prologue() + """
            movz x0, #0x7, lsl #32    // some other sandbox's code
            orr x0, x0, #0x40000
            add x18, x21, w0, uxtw
            br x18                    // lands at OUR 0x40000 = _start? no:
                                      // guard keeps low bits -> own text
        """
        from repro.runtime import RuntimeError_

        runtime = Runtime()
        proc = verified_attacker(runtime, src)
        # The guard resolves the target *inside* the sandbox: low bits
        # 0x40000 are the program's own _start, so it spins forever instead
        # of executing the neighbour's code.  Cap the budget and confirm it
        # is still alive (i.e. neither escaped nor faulted).
        with pytest.raises(RuntimeError_):
            runtime.run(max_instructions=100_000)
        assert proc.state != ProcessState.ZOMBIE
        assert not runtime.faults
        assert runtime.machine.cpu.pc >= proc.layout.base
        assert runtime.machine.cpu.pc < proc.layout.end

    def test_write_to_own_text_traps(self):
        src = prologue() + """
            adr x0, _start
            str x0, [x21, w0, uxtw]   // guarded, but text is read/exec-only
        """ + rt_exit()
        runtime = Runtime()
        proc = verified_attacker(runtime, src)
        runtime.run()
        assert proc.state == ProcessState.ZOMBIE
        assert runtime.faults and runtime.faults[0].kind == "segv"

    def test_table_page_is_readonly(self):
        # A store through a guarded pointer aimed at offset 0 (the table).
        src = prologue() + """
            mov w0, #0
            str x1, [x21, w0, uxtw]
        """ + rt_exit()
        runtime = Runtime()
        proc = verified_attacker(runtime, src)
        runtime.run()
        assert runtime.faults and runtime.faults[0].kind == "segv"

    def test_stray_table_entry_faults(self):
        """Unused table entries point to an unmapped page (§4.4)."""
        src = prologue() + f"""
            ldr x30, [x21, #{PAGE_SIZE - 8}]
            blr x30
        """ + rt_exit()
        runtime = Runtime()
        proc = lfi_proc(runtime, src)
        runtime.run()
        assert runtime.faults and proc.state == ProcessState.ZOMBIE


class TestFork:
    FORK_SRC = prologue() + rtcall(RuntimeCall.FORK) + """
        cbnz x0, parent
        // child: exit 5
        mov x0, #5
    """ + rt_exit() + """
    parent:
        mov x19, x0              // child pid
        mov x0, #0
    """ + rtcall(RuntimeCall.WAIT) + """
        cmp x0, x19
        cset x0, eq
        add x0, x0, #10          // 11 if waited pid matches
    """ + rt_exit()

    def test_fork_wait(self):
        runtime, proc, code = run_exit(self.FORK_SRC)
        assert code == 11

    def test_child_gets_new_slot_with_copied_memory(self):
        src = prologue() + """
            adrp x1, val
            add x1, x1, :lo12:val
            mov x2, #77
            str x2, [x1]
        """ + rtcall(RuntimeCall.FORK) + """
            cbnz x0, parent
            // child: read the COPIED value, add its own twist
            adrp x1, val
            add x1, x1, :lo12:val
            ldr x0, [x1]
            sub x0, x0, #70          // 7
        """ + rt_exit() + """
        parent:
            mov x0, #0
        """ + rtcall(RuntimeCall.WAIT) + rt_exit() + """
        .data
        .balign 8
        val: .quad 0
        """
        runtime = Runtime()
        proc = lfi_proc(runtime, src)
        runtime.run()
        children = [p for p in runtime.processes.values() if p.parent]
        # Child exited 7; parent exited with waited pid.
        assert proc.exit_code is not None

    def test_fork_pointer_rebasing(self):
        """Pointers stored before fork still work in the child because
        guards re-add the (new) base on every access (§5.3)."""
        src = prologue() + """
            adrp x1, cell
            add x1, x1, :lo12:cell
            adrp x2, value
            add x2, x2, :lo12:value
            str x2, [x1]             // cell = &value (absolute, old base!)
            mov x3, #9
            str x3, [x2]             // value = 9
        """ + rtcall(RuntimeCall.FORK) + """
            cbnz x0, parent
            adrp x1, cell
            add x1, x1, :lo12:cell
            ldr x2, [x1]             // stale pointer with parent's top bits
            ldr x0, [x2]             // guarded load rebases it -> 9
        """ + rt_exit() + """
        parent:
            mov x0, #0
        """ + rtcall(RuntimeCall.WAIT) + """
            mov x0, #0
        """ + rt_exit() + """
        .data
        .balign 8
        cell: .quad 0
        value: .quad 0
        """
        runtime = Runtime()
        parent = lfi_proc(runtime, src)
        runtime.run()
        # Find the child's exit code via the faults/exitcodes recorded.
        codes = {p.pid: p.exit_code for p in runtime.processes.values()}
        assert 9 in codes.values() or parent.exit_code == 0


class TestPipesAndScheduling:
    def test_pipe_ping_pong(self):
        """The Table-5 'pipe' microbenchmark shape: two processes passing
        one byte back and forth through pipes."""
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + rtcall(RuntimeCall.FORK) + """
            cbnz x0, parent
            // child: read one byte, add 1, exit with it
            ldr w20, [x19]           // read fd
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + """
            adrp x1, buf
            add x1, x1, :lo12:buf
            ldrb w0, [x1]
            add x0, x0, #1
        """ + rt_exit() + """
        parent:
            ldr w20, [x19, #4]       // write fd
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #65
            strb w2, [x1]
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.WRITE) + """
            mov x0, #0
        """ + rtcall(RuntimeCall.WAIT) + """
            mov x0, #0
        """ + rt_exit() + """
        .data
        .balign 8
        fds: .skip 8
        buf: .skip 8
        """
        runtime = Runtime()
        parent = lfi_proc(runtime, src)
        runtime.run()
        assert parent.exit_code == 0
        # The child read 'A' (65) and exited 66.
        exit_codes = [p.exit_code for p in runtime.processes.values()]
        assert parent.exit_code == 0

    def test_preemption_interleaves(self):
        """Two CPU-bound sandboxes must both finish under preemption."""
        spin = prologue() + """
            mov x1, #0
        loop:
            add x1, x1, #1
            movz x2, #20000
            cmp x1, x2
            b.ne loop
            mov x0, #1
        """ + rt_exit()
        runtime = Runtime(timeslice=1000)
        a = lfi_proc(runtime, spin)
        b = lfi_proc(runtime, spin)
        runtime.run()
        assert a.exit_code == 1 and b.exit_code == 1
        # Both retired instructions — the scheduler really interleaved.
        assert a.instructions > 0 and b.instructions > 0

    def test_yield_runtime_call(self):
        src = prologue() + rtcall(RuntimeCall.YIELD) + """
            mov x0, #3
        """ + rt_exit()
        _, _, code = run_exit(src)
        assert code == 3

    def test_deadlock_detected(self):
        # A process waiting on a pipe nobody writes.
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            ldr w0, [x19]
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + rt_exit() + """
        .data
        fds: .skip 8
        buf: .skip 8
        """
        runtime = Runtime()
        lfi_proc(runtime, src)
        with pytest.raises(Deadlock):
            runtime.run()


class TestManySandboxes:
    def test_dozens_of_sandboxes_one_address_space(self):
        """Scalability smoke test: many slots, all isolated, one memory."""
        runtime = Runtime()
        procs = []
        for i in range(24):
            src = prologue() + f"    mov x0, #{i}\n" + rt_exit()
            procs.append(lfi_proc(runtime, src))
        runtime.run()
        assert [p.exit_code for p in procs] == list(range(24))
        bases = {p.layout.base for p in procs}
        assert len(bases) == 24
        for p in procs:
            assert p.layout.base % SANDBOX_SIZE == 0

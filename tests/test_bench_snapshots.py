"""Committed benchmark snapshots must match their registered schemas.

Every ``BENCH_PR*.json`` at the repository root is a committed CI
artifact; a regeneration that silently drops a section used to pass
unnoticed.  ``benchmarks.conftest.check_snapshot`` turns that into a
one-line diagnostic; this tier-1 suite runs it over every committed
snapshot (absent files are skipped — not every PR commits one) and over
any stray snapshot that has no schema registered at all.
"""

import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT))

from benchmarks.conftest import SNAPSHOT_SCHEMAS, check_snapshot  # noqa: E402


@pytest.mark.parametrize("name", sorted(SNAPSHOT_SCHEMAS))
def test_committed_snapshot_matches_schema(name):
    path = ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not committed")
    diagnostic = check_snapshot(path)
    assert diagnostic is None, diagnostic


def test_every_committed_snapshot_has_a_schema():
    unregistered = sorted(
        p.name for p in ROOT.glob("BENCH_PR*.json")
        if p.name not in SNAPSHOT_SCHEMAS)
    assert unregistered == [], \
        f"snapshots without a registered schema: {unregistered}"


def test_check_snapshot_diagnoses_missing_keys(tmp_path):
    name = "BENCH_PR4.json"
    good = json.loads((ROOT / name).read_text()) if (ROOT / name).exists() \
        else {k: None for k in SNAPSHOT_SCHEMAS[name]}
    good.pop("workloads", None)
    broken = tmp_path / name
    broken.write_text(json.dumps(good))
    diagnostic = check_snapshot(broken)
    assert diagnostic == f"{name}: missing required keys ['workloads']"

    broken.write_text("not json")
    assert "unreadable snapshot" in check_snapshot(broken)

    broken.write_text("[]")
    assert "expected a JSON object" in check_snapshot(broken)

    assert "no schema registered" in check_snapshot(tmp_path / "BENCH_PR99.json")

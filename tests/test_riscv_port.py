"""Tests for the §7.2 RISC-V port design study."""

import pytest

from repro.riscv import (
    RvRewriteError,
    parse_riscv,
    print_riscv,
    rewrite_riscv,
    verify_riscv,
)
from repro.riscv.isa import RvInstruction, reg_number
from repro.riscv.rewriter import align_jump_targets


def lines_of(text):
    return [l.strip() for l in text.splitlines() if l.strip()]


class TestIsa:
    def test_abi_names(self):
        assert reg_number("a0") == 10
        assert reg_number("s11") == 27
        assert reg_number("sp") == 2
        assert reg_number("x17") == 17
        assert reg_number("nope") is None

    def test_parse_memory_operand(self):
        program = parse_riscv("ld a0, 8(a1)\n")
        inst = program.instructions()[0]
        assert inst.mem == (8, 11)
        assert inst.is_load

    def test_compressed_size(self):
        assert RvInstruction("c.addi", ("sp", "sp", "-16")).size == 2
        assert RvInstruction("addi", ("sp", "sp", "-16")).size == 4

    def test_roundtrip(self):
        src = "f:\n\tld a0, 0(a1)\n\tadd a0, a0, a2\n\tret\n"
        assert print_riscv(parse_riscv(src)) == src

    def test_label_offsets_count_compressed(self):
        src = "c.addi sp, sp, -16\nhere:\n ld a0, 0(sp)\n"
        offsets = parse_riscv(src).label_offsets()
        assert offsets["here"] == 2


class TestRewriter:
    def test_load_gets_zba_guard(self):
        out = lines_of(rewrite_riscv("ld a0, 8(a1)\n"))
        assert out == ["add.uw x27, x11, x26", "ld a0, 8(x27)"]

    def test_store_gets_guard(self):
        out = lines_of(rewrite_riscv("sd a0, 16(a2)\n"))
        assert out == ["add.uw x27, x12, x26", "sd a0, 16(x27)"]

    def test_sp_relative_free(self):
        out = lines_of(rewrite_riscv("ld a0, 24(sp)\n"))
        assert out == ["ld a0, 24(sp)"]

    def test_jalr_guarded_and_aligned(self):
        out = lines_of(rewrite_riscv("jalr ra, 0(a3)\n"))
        assert out == [
            "add.uw x27, x13, x26",
            "andi x27, x27, -4",
            "jalr ra, 0(x27)",
        ]

    def test_ret_untouched(self):
        assert lines_of(rewrite_riscv("ret\n")) == ["ret"]

    def test_sp_small_with_access_elided(self):
        out = lines_of(rewrite_riscv("addi sp, sp, -32\n sd ra, 0(sp)\n"))
        assert out == ["addi sp, sp, -32", "sd ra, 0(sp)"]

    def test_sp_large_guarded(self):
        out = lines_of(rewrite_riscv("addi sp, sp, -2032\n ret\n"))
        assert out[:2] == ["addi sp, sp, -2032", "add.uw sp, sp, x26"]

    def test_ra_restore_guarded(self):
        out = lines_of(rewrite_riscv("ld ra, 8(sp)\n ret\n"))
        assert out == ["ld ra, 8(sp)", "add.uw ra, ra, x26", "ret"]

    def test_reserved_register_input_rejected(self):
        with pytest.raises(RvRewriteError):
            rewrite_riscv("add s11, s11, a0\n")
        with pytest.raises(RvRewriteError):
            rewrite_riscv("mv a0, s10\n")

    def test_ecall_rejected(self):
        with pytest.raises(RvRewriteError):
            rewrite_riscv("ecall\n")


class TestAlignment:
    def test_misaligned_label_fixed_by_uncompression(self):
        src = "c.addi sp, sp, -16\ntarget:\n ld a0, 0(sp)\n j target\n"
        program = parse_riscv(src)
        fixes = align_jump_targets(program)
        assert fixes == 1
        offsets = program.label_offsets()
        assert offsets["target"] % 4 == 0
        # The compressed addi was widened rather than padded.
        assert program.instructions()[0].mnemonic == "addi"

    def test_aligned_labels_untouched(self):
        src = "addi sp, sp, -16\ntarget:\n ld a0, 0(sp)\n"
        program = parse_riscv(src)
        assert align_jump_targets(program) == 0

    def test_two_compressed_in_a_row_kept(self):
        """§7.2: side-by-side compressed pairs can stay compressed."""
        src = "c.addi sp, sp, -16\nc.addi sp, sp, -16\nafter:\n sd ra, 0(sp)\n"
        program = parse_riscv(src)
        assert align_jump_targets(program) == 0
        sizes = [i.size for i in program.instructions()]
        assert sizes[:2] == [2, 2]

    def test_rewriter_output_has_aligned_labels(self):
        src = "c.addi sp, sp, -16\nloop:\n ld a0, 0(sp)\n bne a0, zero, loop\n"
        out = rewrite_riscv(src)
        assert not [v for v in verify_riscv(out) if "misaligned" in v.reason]


class TestVerifier:
    def assert_ok(self, src):
        violations = verify_riscv(src)
        assert not violations, violations

    def assert_rejected(self, src, fragment):
        violations = verify_riscv(src)
        reasons = " | ".join(v.reason for v in violations)
        assert fragment in reasons, reasons

    def test_naked_load_rejected(self):
        self.assert_rejected("ld a0, 0(a1)\n", "unguarded base")

    def test_guarded_load_accepted(self):
        self.assert_ok("add.uw x27, x11, x26\n ld a0, 0(x27)\n")

    def test_base_write_rejected(self):
        self.assert_rejected("mv s10, a0\n", "sandbox base")

    def test_scratch_write_rejected(self):
        self.assert_rejected("addi s11, s11, 8\n", "scratch register")

    def test_unguarded_jalr_rejected(self):
        self.assert_rejected("jalr ra, 0(a0)\n", "unguarded")

    def test_ra_load_without_guard_rejected(self):
        self.assert_rejected("ld ra, 0(sp)\n ret\n", "without a following")

    def test_ecall_rejected(self):
        self.assert_rejected("ecall\n", "unsafe instruction")

    def test_misaligned_target_rejected(self):
        self.assert_rejected(
            "c.addi sp, sp, -16\nt:\n sd ra, 0(sp)\n", "misaligned"
        )

    @pytest.mark.parametrize("src", [
        "ld a0, 8(a1)\n sd a0, 16(a2)\n",
        "jalr ra, 0(a3)\n",
        "addi sp, sp, -2032\n sd ra, 0(sp)\n ld ra, 0(sp)\n ret\n",
        "c.addi sp, sp, -16\nloop:\n ld a0, 0(sp)\n bne a0, zero, loop\n",
    ])
    def test_rewrite_then_verify_property(self, src):
        self.assert_ok(rewrite_riscv(src))

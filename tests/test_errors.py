"""The consolidated exception hierarchy (repro.errors, DESIGN.md §10)."""

import errno
import warnings

import pytest

from repro.errors import (
    Deadlock,
    ElfError,
    GuardError,
    LoadError,
    ReproError,
    RewriteError,
    RuntimeError_,
    VerificationError,
    VfsError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (VerificationError, GuardError, RewriteError, ElfError,
                    LoadError, RuntimeError_, Deadlock, VfsError):
            assert issubclass(exc, ReproError)

    def test_builtin_compatibility_preserved(self):
        """Pre-consolidation callers caught builtin bases; they still can."""
        assert issubclass(GuardError, ValueError)
        assert issubclass(RewriteError, ValueError)
        assert issubclass(ElfError, ValueError)
        assert issubclass(VfsError, OSError)
        assert issubclass(Deadlock, RuntimeError_)

    def test_vfs_error_carries_errno(self):
        exc = VfsError(errno.ENOENT, "/missing")
        assert exc.err == errno.ENOENT
        assert exc.errno == errno.ENOENT
        assert exc.filename == "/missing"

    def test_port_rewrite_errors_share_the_base(self):
        from repro.riscv import RvRewriteError
        from repro.x86 import X86RewriteError

        assert issubclass(X86RewriteError, RewriteError)
        assert issubclass(RvRewriteError, RewriteError)

    def test_one_except_catches_the_whole_reproduction(self):
        with pytest.raises(ReproError):
            raise RewriteError("any layer")
        with pytest.raises(ReproError):
            raise VfsError(errno.EACCES, "/denied")


OLD_HOMES = [
    ("repro.core.verifier", "VerificationError"),
    ("repro.core.guards", "GuardError"),
    ("repro.core.rewriter", "RewriteError"),
    ("repro.elf.format", "ElfError"),
    ("repro.runtime.loader", "LoadError"),
    ("repro.runtime.runtime", "RuntimeError_"),
    ("repro.runtime.runtime", "Deadlock"),
    ("repro.runtime.vfs", "VfsError"),
]


class TestRemovedReexports:
    """The one-release import shims from the old module homes are gone."""

    @pytest.mark.parametrize("module_name,name", OLD_HOMES,
                             ids=[f"{m}.{n}" for m, n in OLD_HOMES])
    def test_old_import_location_removed(self, module_name, name):
        import importlib

        module = importlib.import_module(module_name)
        with pytest.raises(AttributeError):
            getattr(module, name)

    def test_package_roots_reexport_silently(self):
        """The package-level re-exports are canonical, not deprecated."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import RewriteError as a  # noqa: F401
            from repro.elf import ElfError as b  # noqa: F401
            from repro.runtime import VfsError as c  # noqa: F401
            from repro import ReproError as d  # noqa: F401

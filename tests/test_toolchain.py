"""Tests for the toolchain driver and the microbenchmark harness."""

import math

import pytest

from repro.core import O0, O2, RewriteError, verify_elf
from repro.elf import read_elf, write_elf
from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf.microbench import (
    measure_pipe_ns,
    measure_syscall_ns,
    measure_yield_ns,
    run_table5,
)
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall
from repro.runtime import RuntimeCall

SRC = prologue() + "    ldr x1, [x0]\n    mov x0, #3\n" + rt_exit()


class TestToolchain:
    def test_compile_lfi_produces_verified_elf(self):
        out = compile_lfi(SRC)
        assert verify_elf(out.elf).ok
        assert out.rewrite is not None
        assert out.rewrite.stats.zero_cost_guards == 1

    def test_compile_native_skips_rewriter(self):
        out = compile_native(SRC)
        assert out.rewrite is None
        assert not verify_elf(out.elf).ok

    def test_sizes(self):
        native = compile_native(SRC)
        lfi = compile_lfi(SRC)
        assert lfi.text_size >= native.text_size
        assert lfi.binary_size > lfi.text_size  # headers + rodata/data
        # The ELF bytes really serialize/parse.
        assert read_elf(write_elf(lfi.elf)).entry == lfi.elf.entry

    def test_bss_size_plumbs_through(self):
        out = compile_lfi(SRC + ".bss\nbuf: .skip 8\n", bss_size=1 << 20)
        bss = [s for s in out.elf.segments if s.memsz > s.filesz]
        assert bss and bss[0].memsz - bss[0].filesz == 1 << 20

    def test_options_plumb_through(self):
        o0 = compile_lfi(SRC, options=O0)
        o2 = compile_lfi(SRC, options=O2)
        assert o0.text_size >= o2.text_size

    def test_rewrite_error_propagates(self):
        with pytest.raises(RewriteError):
            compile_lfi("svc #0\n")


class TestMicrobenchHarness:
    def test_syscall_measures_positive_ns(self):
        ns = measure_syscall_ns(APPLE_M1, count=50)
        assert 1.0 < ns < 500.0

    def test_syscall_scales_with_frequency(self):
        m1 = measure_syscall_ns(APPLE_M1, count=50)
        t2a = measure_syscall_ns(GCP_T2A, count=50)
        # Same cycle structure, lower clock => more ns.
        assert t2a > m1 * 0.9

    def test_pipe_slower_than_syscall(self):
        syscall = measure_syscall_ns(APPLE_M1, count=50)
        pipe = measure_pipe_ns(APPLE_M1, count=20)
        assert pipe > syscall

    def test_yield_is_fastest(self):
        yld = measure_yield_ns(APPLE_M1, count=50)
        syscall = measure_syscall_ns(APPLE_M1, count=50)
        assert yld < syscall

    def test_run_table5_rows(self):
        rows = run_table5(APPLE_M1)
        assert set(rows) == {"syscall", "pipe", "yield"}
        assert rows["syscall"].linux_ns > rows["syscall"].lfi_ns
        assert math.isnan(rows["yield"].linux_ns)


class TestNativeInRuntimeMethodology:
    """§6.1: the native baseline runs *within* the LFI runtime so it also
    benefits from accelerated runtime calls."""

    def test_native_code_uses_runtime_calls(self):
        from repro.runtime import Runtime

        src = prologue() + rtcall(RuntimeCall.GETPID) + rt_exit()
        runtime = Runtime()
        proc = runtime.spawn(compile_native(src).elf, verify=False)
        assert runtime.run_until_exit(proc) == proc.pid

    def test_native_and_lfi_share_call_overhead(self):
        """The runtime-call cost is identical for both, so overheads
        measure only the guards."""
        from repro.runtime import Runtime

        src = prologue() + rtcall(RuntimeCall.GETPID) * 5 + rt_exit()
        cycles = {}
        for label, compiled, verify in (
            ("native", compile_native(src), False),
            ("lfi", compile_lfi(src), True),
        ):
            runtime = Runtime(model=APPLE_M1)
            proc = runtime.spawn(compiled.elf, verify=verify)
            runtime.run_until_exit(proc)
            cycles[label] = runtime.cycles
        # This program is almost all runtime calls: LFI within 15%.
        assert cycles["lfi"] < cycles["native"] * 1.15

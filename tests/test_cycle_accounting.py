"""Cycle-accounting invariants: flat charges, per-class costs, and the
telescoping-delta property the obs profiler's completeness rests on.

The dataflow model's cycle counter is ``max(t_issue, t_done)`` and is
monotonically nondecreasing, so the per-step deltas reported to step
probes must sum *exactly* to the machine's total cycles — across flat
``add_cycles`` charges, preemption slices, and whole scheduled runs.
"""

import pytest

from repro.emulator import APPLE_M1, Machine
from repro.emulator.machine import _Costing
from repro.emulator import costs
from repro.memory import PagedMemory
from repro.obs import ContextSwitch, RuntimeCallSpan, Tracer
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


def make_machine():
    return Machine(PagedMemory(), model=APPLE_M1)


LOOP = prologue() + """
    mov x0, #400
loop:
    sub x0, x0, #1
    cbnz x0, loop
    mov x0, #0
""" + rt_exit()


class TestAddCycles:
    def test_add_cycles_advances_counter(self):
        machine = make_machine()
        before = machine.cycles
        machine.add_cycles(58.0)
        assert machine.cycles == pytest.approx(before + 58.0)

    def test_add_cycles_without_model_is_noop(self):
        machine = Machine(PagedMemory())
        machine.add_cycles(100.0)
        assert machine.cycles == 0.0

    def test_add_cycles_reports_delta_to_probes(self):
        machine = make_machine()
        seen = []
        machine.add_step_probe(
            lambda m, pc, kind, delta: seen.append((pc, kind, delta))
        )
        machine.add_cycles(44.0, kind="call")
        assert seen == [(None, "call", pytest.approx(44.0))]

    def test_add_cycles_hidden_under_latency(self):
        """A flat charge smaller than outstanding latency costs nothing."""
        machine = make_machine()
        costing = machine._costing
        costing.t_done = 100.0  # pretend a long chain is in flight
        machine.add_cycles(10.0)
        assert machine.cycles == 100.0  # hidden: issue stays below t_done
        machine.add_cycles(200.0)  # t_issue reaches 210 and dominates
        assert machine.cycles == pytest.approx(210.0)


class TestCostingCharge:
    def test_issue_and_latency_per_class(self):
        model = APPLE_M1
        for klass in (costs.ALU, costs.ALU_EXT, costs.LOAD, costs.MUL,
                      costs.DIV, costs.BRANCH, costs.SIMD):
            costing = _Costing(model, tlb=None)
            costing.charge(klass, (), (0,))
            assert costing.t_issue == pytest.approx(model.issue_cost(klass))
            assert costing.ready[0] == pytest.approx(
                model.issue_cost(klass) + model.result_latency(klass)
            )

    def test_dependency_chain_serializes(self):
        costing = _Costing(APPLE_M1, tlb=None)
        lat = APPLE_M1.result_latency(costs.MUL)
        costing.charge(costs.MUL, (), (0,))
        costing.charge(costs.MUL, (0,), (0,))  # depends on the first
        assert costing.cycles >= 2 * lat

    def test_independent_ops_overlap(self):
        dep = _Costing(APPLE_M1, tlb=None)
        indep = _Costing(APPLE_M1, tlb=None)
        for i in range(8):
            dep.charge(costs.MUL, (0,), (0,))
            indep.charge(costs.MUL, (i,), (i,))
        assert indep.cycles < dep.cycles

    def test_guard_class_costs_more_than_plain_alu(self):
        """The extended-operand add (the guard) has the §4 penalty."""
        assert APPLE_M1.result_latency(costs.ALU_EXT) \
            > APPLE_M1.result_latency(costs.ALU)

    def test_extra_latency_and_bubble(self):
        base = _Costing(APPLE_M1, tlb=None)
        base.charge(costs.LOAD, (), (0,))
        slow = _Costing(APPLE_M1, tlb=None)
        slow.charge(costs.LOAD, (), (0,), extra_latency=30.0,
                    fetch_bubble=2.0)
        assert slow.cycles > base.cycles


class TestTelescopingDeltas:
    def test_step_probe_deltas_sum_to_total(self):
        runtime = Runtime(model=APPLE_M1)
        total = []
        runtime.machine.add_step_probe(
            lambda m, pc, k, delta: total.append(delta)
        )
        proc = runtime.spawn(compile_lfi(LOOP).elf, verify=True)
        assert runtime.run_until_exit(proc) == 0
        assert sum(total) == pytest.approx(runtime.machine.cycles)

    def test_preemption_slices_sum_to_total_cycles(self):
        """Scheduling slices + runtime-call spans tile the whole run."""
        runtime = Runtime(model=APPLE_M1, timeslice=100)
        tracer = Tracer().attach(runtime)
        proc = runtime.spawn(compile_lfi(LOOP).elf, verify=True)
        assert runtime.run_until_exit(proc) == 0
        slices = [e for e in tracer.events if isinstance(e, ContextSwitch)]
        spans = [e for e in tracer.events if isinstance(e, RuntimeCallSpan)]
        assert len(slices) > 5  # the loop outlives several timeslices
        assert any(s.reason == "preempt" for s in slices)
        covered = sum(s.dur for s in slices) + sum(s.dur for s in spans)
        assert covered == pytest.approx(runtime.machine.cycles)
        assert sum(s.instructions for s in slices) \
            == runtime.machine.instret
        assert sum(s.instructions for s in slices) == proc.instructions

    def test_slices_contiguous_and_ordered(self):
        runtime = Runtime(model=APPLE_M1, timeslice=64)
        tracer = Tracer().attach(runtime)
        proc = runtime.spawn(compile_lfi(LOOP).elf, verify=True)
        runtime.run_until_exit(proc)
        slices = [e for e in tracer.events if isinstance(e, ContextSwitch)]
        for prev, cur in zip(slices, slices[1:]):
            assert cur.ts >= prev.ts + prev.dur - 1e-9

"""Rewriter tests: Table-3 transformations, sp/x30 rules, hoisting,
runtime-call idiom, branch-range fixing, and rewrite->verify properties."""

import pytest

from repro.arm64 import parse_assembly, print_assembly
from repro.arm64.assembler import assemble
from repro.core import (
    O0,
    O1,
    O2,
    O2_NO_LOADS,
    RewriteError,
    RewriteOptions,
    rewrite_program,
    verify_text,
)


def rewrite_lines(src, options=O1):
    """Rewrite one snippet and return the mnemonic+operand strings."""
    result = rewrite_program(parse_assembly(src), options)
    return [str(i) for i in result.program.instructions()]


def rewrite_and_verify(src, options=O2):
    result = rewrite_program(parse_assembly(src), options)
    image = assemble(result.program)
    v = verify_text(bytes(image.text.data), image.text.base)
    assert v.ok, "; ".join(str(x) for x in v.violations)
    return result


class TestTable3:
    """The exact transformations of paper Table 3 (O1 zero-instruction
    guards)."""

    def test_base_only(self):
        assert rewrite_lines("ldr x0, [x1]") == ["ldr x0, [x21, w1, uxtw]"]

    def test_immediate(self):
        assert rewrite_lines("ldr x0, [x1, #8]") == [
            "add w22, w1, #8",
            "ldr x0, [x21, w22, uxtw]",
        ]

    def test_pre_index(self):
        assert rewrite_lines("ldr x0, [x1, #8]!") == [
            "add x1, x1, #8",
            "ldr x0, [x21, w1, uxtw]",
        ]

    def test_post_index(self):
        assert rewrite_lines("ldr x0, [x1], #8") == [
            "ldr x0, [x21, w1, uxtw]",
            "add x1, x1, #8",
        ]

    def test_register_shifted(self):
        assert rewrite_lines("ldr x0, [x1, x2, lsl #3]") == [
            "add w22, w1, w2, lsl #3",
            "ldr x0, [x21, w22, uxtw]",
        ]

    def test_register_extended_uxtw(self):
        assert rewrite_lines("ldr x0, [x1, w2, uxtw #2]") == [
            "add w22, w1, w2, lsl #2",
            "ldr x0, [x21, w22, uxtw]",
        ]

    def test_register_extended_sxtw(self):
        # sxtw reduces to lsl at 32-bit width (addresses mod 2**32).
        assert rewrite_lines("str x0, [x1, w2, sxtw #3]") == [
            "add w22, w1, w2, lsl #3",
            "str x0, [x21, w22, uxtw]",
        ]

    def test_negative_immediate(self):
        assert rewrite_lines("ldr x0, [x1, #-16]") == [
            "sub w22, w1, #16",
            "ldr x0, [x21, w22, uxtw]",
        ]

    def test_store_same_as_load(self):
        assert rewrite_lines("str x3, [x4]") == ["str x3, [x21, w4, uxtw]"]

    def test_byte_and_half(self):
        assert rewrite_lines("ldrb w0, [x1]") == ["ldrb w0, [x21, w1, uxtw]"]
        assert rewrite_lines("strh w0, [x1]") == ["strh w0, [x21, w1, uxtw]"]

    def test_fp_load(self):
        assert rewrite_lines("ldr d0, [x1]") == ["ldr d0, [x21, w1, uxtw]"]
        assert rewrite_lines("str q2, [x3]") == ["str q2, [x21, w3, uxtw]"]


class TestBasicGuard:
    """O0 and no-guarded-addressing-mode instructions use the §3 guard."""

    def test_o0_load(self):
        assert rewrite_lines("ldr x0, [x1]", O0) == [
            "add x18, x21, w1, uxtw",
            "ldr x0, [x18]",
        ]

    def test_o0_keeps_immediate_in_access(self):
        assert rewrite_lines("ldr x0, [x1, #24]", O0) == [
            "add x18, x21, w1, uxtw",
            "ldr x0, [x18, #24]",
        ]

    def test_pair_uses_basic_guard_at_o1(self):
        assert rewrite_lines("ldp x0, x1, [x2, #16]", O1) == [
            "add x18, x21, w2, uxtw",
            "ldp x0, x1, [x18, #16]",
        ]

    def test_pair_writeback_split(self):
        # Writeback is never performed on the scratch register.
        assert rewrite_lines("stp x0, x1, [x2, #-16]!", O1) == [
            "sub x2, x2, #16",
            "add x18, x21, w2, uxtw",
            "stp x0, x1, [x18]",
        ]

    def test_exclusive(self):
        assert rewrite_lines("ldxr x0, [x1]", O1) == [
            "add x18, x21, w1, uxtw",
            "ldxr x0, [x18]",
        ]

    def test_ldur(self):
        assert rewrite_lines("ldur x0, [x1, #-9]", O1) == [
            "add x18, x21, w1, uxtw",
            "ldur x0, [x18, #-9]",
        ]


class TestStackPointer:
    def test_sp_immediate_access_free(self):
        assert rewrite_lines("ldr x0, [sp, #16]") == ["ldr x0, [sp, #16]"]

    def test_sp_pre_post_free(self):
        assert rewrite_lines("stp x29, x30, [sp, #-16]!") == [
            "stp x29, x30, [sp, #-16]!"
        ]

    def test_small_sub_with_access_elided(self):
        lines = rewrite_lines("sub sp, sp, #32\n str x0, [sp]")
        assert lines == ["sub sp, sp, #32", "str x0, [sp]"]

    def test_small_sub_without_access_guarded(self):
        lines = rewrite_lines("sub sp, sp, #32\n ret")
        assert lines[:3] == ["sub sp, sp, #32", "mov w22, wsp",
                             "add sp, x21, x22"]

    def test_large_sub_guarded_even_with_access(self):
        lines = rewrite_lines("sub sp, sp, #4096\n str x0, [sp]")
        assert lines == [
            "sub sp, sp, #4096",
            "mov w22, wsp",
            "add sp, x21, x22",
            "str x0, [sp]",
        ]

    def test_elision_stops_at_branch(self):
        lines = rewrite_lines("sub sp, sp, #32\n b somewhere\nsomewhere:")
        assert lines[:3] == ["sub sp, sp, #32", "mov w22, wsp",
                             "add sp, x21, x22"]

    def test_elision_can_be_disabled(self):
        options = O2.with_(sp_block_elision=False)
        lines = rewrite_lines("sub sp, sp, #32\n str x0, [sp]", options)
        assert lines[1] == "mov w22, wsp"

    def test_mov_sp_from_register(self):
        lines = rewrite_lines("mov sp, x0")
        assert lines == ["mov w22, w0", "add sp, x21, x22"]

    def test_mov_to_fp_from_sp_free(self):
        assert rewrite_lines("mov x29, sp") == ["mov x29, sp"]

    def test_sp_register_offset_transformed(self):
        lines = rewrite_lines("ldr x0, [sp, x1]")
        assert lines == [
            "mov w22, wsp",
            "add w22, w22, w1",
            "ldr x0, [x21, w22, uxtw]",
        ]


class TestLinkRegister:
    def test_restore_gets_guard(self):
        lines = rewrite_lines("ldr x30, [sp, #8]")
        assert lines == ["ldr x30, [sp, #8]", "add x30, x21, w30, uxtw"]

    def test_epilogue_pair_gets_guard(self):
        lines = rewrite_lines("ldp x29, x30, [sp], #16\n ret")
        assert lines == [
            "ldp x29, x30, [sp], #16",
            "add x30, x21, w30, uxtw",
            "ret",
        ]

    def test_mov_to_x30_guarded(self):
        lines = rewrite_lines("mov x30, x3")
        assert lines == ["mov x30, x3", "add x30, x21, w30, uxtw"]

    def test_bl_untouched(self):
        assert rewrite_lines("bl foo\nfoo:") == ["bl foo"]

    def test_ret_untouched(self):
        assert rewrite_lines("ret") == ["ret"]


class TestIndirectBranches:
    def test_br(self):
        assert rewrite_lines("br x5") == [
            "add x18, x21, w5, uxtw",
            "br x18",
        ]

    def test_blr(self):
        assert rewrite_lines("blr x5") == [
            "add x18, x21, w5, uxtw",
            "blr x18",
        ]

    def test_ret_through_other_register(self):
        assert rewrite_lines("ret x5") == [
            "add x18, x21, w5, uxtw",
            "ret x18",
        ]


class TestHoisting:
    SRC = """
    str x0, [x1, #8]
    str x0, [x1, #16]
    str x0, [x1, #24]
    str x0, [x1, #32]
    """

    def test_figure2_example(self):
        """Figure 2: four stores share one hoisted guard."""
        lines = rewrite_lines(self.SRC, O2)
        assert lines == [
            "add x23, x21, w1, uxtw",
            "str x0, [x23, #8]",
            "str x0, [x23, #16]",
            "str x0, [x23, #24]",
            "str x0, [x23, #32]",
        ]

    def test_no_hoisting_at_o1(self):
        lines = rewrite_lines(self.SRC, O1)
        assert len(lines) == 8  # add+access per store

    def test_two_interleaved_bases(self):
        src = """
        ldr x0, [x1]
        ldr x2, [x3, #8]
        str x0, [x1, #8]
        str x2, [x3, #16]
        """
        lines = rewrite_lines(src, O2)
        assert "add x23, x21, w1, uxtw" in lines
        assert "add x24, x21, w3, uxtw" in lines
        assert len(lines) == 6

    def test_base_redefinition_ends_segment(self):
        src = """
        ldr x0, [x1]
        mov x1, x5
        ldr x2, [x1]
        """
        lines = rewrite_lines(src, O2)
        # Neither access pair is hoistable (each run has length 1).
        assert lines == [
            "ldr x0, [x21, w1, uxtw]",
            "mov x1, x5",
            "ldr x2, [x21, w1, uxtw]",
        ]

    def test_single_access_not_hoisted(self):
        lines = rewrite_lines("ldr x0, [x1, #8]", O2)
        assert lines[0] == "add w22, w1, #8"

    def test_blocks_bounded_by_labels(self):
        src = """
        str x0, [x1, #8]
        target:
        str x0, [x1, #16]
        """
        lines = rewrite_lines(src, O2)
        # The label splits the block: no run of length 2.
        assert not any("x23" in l for l in lines)

    def test_hoisting_resists_jump_into_middle(self):
        """§4.3: hoisting uses a reserved register, so the rewritten code
        verifies without CFI — jumping into the middle is safe."""
        rewrite_and_verify(self.SRC, O2)


class TestNoLoads:
    def test_loads_untouched(self):
        assert rewrite_lines("ldr x0, [x1]", O2_NO_LOADS) == ["ldr x0, [x1]"]

    def test_stores_still_guarded(self):
        lines = rewrite_lines("str x0, [x1]", O2_NO_LOADS)
        assert lines == ["str x0, [x21, w1, uxtw]"]

    def test_x30_restore_still_guarded(self):
        lines = rewrite_lines("ldr x30, [sp]", O2_NO_LOADS)
        assert lines[-1] == "add x30, x21, w30, uxtw"

    def test_indirect_branches_still_guarded(self):
        lines = rewrite_lines("br x0", O2_NO_LOADS)
        assert lines[0] == "add x18, x21, w0, uxtw"


class TestRuntimeCallIdiom:
    def test_passthrough(self):
        src = "ldr x30, [x21, #16]\n blr x30\n"
        assert rewrite_lines(src) == ["ldr x30, [x21, #16]", "blr x30"]

    def test_idiom_verifies(self):
        rewrite_and_verify("ldr x30, [x21, #16]\n blr x30\n")


class TestInputValidation:
    @pytest.mark.parametrize("src", [
        "mov x21, #0",
        "add x18, x18, #1",
        "mov x0, x22",
        "ldr x23, [sp]",
        "add x0, x24, #4",
    ])
    def test_reserved_register_use_rejected(self, src):
        with pytest.raises(RewriteError):
            rewrite_program(parse_assembly(src))

    def test_svc_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_program(parse_assembly("svc #0"))

    def test_mrs_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_program(parse_assembly("mrs x0, tpidr_el0"))

    def test_exclusives_policy(self):
        options = O2.with_(allow_exclusives=False)
        with pytest.raises(RewriteError):
            rewrite_program(parse_assembly("ldxr x0, [x1]"), options)


class TestBranchRangeFix:
    def test_short_branch_untouched(self):
        lines = rewrite_lines("tbz x0, #3, near\n nop\nnear:")
        assert lines[0] == "tbz x0, #3, near"

    def test_long_branch_fixed(self):
        body = "\n".join(["nop"] * 8000)
        src = f"tbz x0, #3, far\n{body}\nfar: nop\n"
        result = rewrite_program(parse_assembly(src), O2)
        assert result.stats.range_fixed_branches == 1
        lines = [str(i) for i in result.program.instructions()]
        assert lines[0].startswith("tbnz x0, #3, .Llfi_tbfix_")
        assert lines[1] == "b far"

    def test_fixed_program_assembles(self):
        body = "\n".join(["nop"] * 8200)
        src = f"tbnz x1, #5, far\n{body}\nfar: nop\n"
        result = rewrite_program(parse_assembly(src), O2)
        assemble(result.program)  # must not raise range errors


class TestStats:
    def test_counts(self):
        src = """
        ldr x0, [x1]
        str x0, [x2, #8]
        br x3
        """
        result = rewrite_program(parse_assembly(src), O1)
        s = result.stats
        assert s.input_instructions == 3
        assert s.zero_cost_guards == 1
        assert s.memory_guards == 1
        assert s.branch_guards == 1
        assert s.output_instructions == 5
        assert s.added_instructions == 2
        assert s.code_size_overhead == pytest.approx(2 / 3)


class TestRewriteVerifyProperty:
    """Everything the rewriter produces must pass the verifier — at every
    optimization level.  This is the system's central contract."""

    PROGRAMS = [
        # function with prologue/epilogue and mixed accesses
        """
        f:
        stp x29, x30, [sp, #-48]!
        mov x29, sp
        sub sp, sp, #32
        str x0, [sp, #16]
        ldr x1, [x0]
        ldr x2, [x0, #8]
        add x3, x1, x2
        str x3, [x0, #16]
        ldr x4, [x1, x2, lsl #3]
        add sp, sp, #32
        ldp x29, x30, [sp], #48
        ret
        """,
        # indirect calls and jump through register
        """
        adr x0, helper
        blr x0
        adr x1, helper
        br x1
        helper: ret
        """,
        # loops with post-index walking
        """
        mov x0, #0
        loop:
        ldr x1, [x2], #8
        add x0, x0, x1
        subs x3, x3, #1
        b.ne loop
        ret
        """,
        # pairs, exclusives, FP, SIMD
        """
        ldp x0, x1, [x2, #16]
        stp x0, x1, [x3, #-32]!
        ldxr x4, [x5]
        stxr w6, x4, [x5]
        ldr d0, [x7, #8]
        str q1, [x8]
        add v0.4s, v1.4s, v2.4s
        ret
        """,
        # runtime call with save/restore
        """
        mov x9, x30
        ldr x30, [x21, #8]
        blr x30
        mov x30, x9
        ret
        """,
    ]

    @pytest.mark.parametrize("src", PROGRAMS)
    @pytest.mark.parametrize("options", [O0, O1, O2, O2_NO_LOADS])
    def test_rewritten_verifies(self, src, options):
        from repro.core import VerifierPolicy

        result = rewrite_program(parse_assembly(src), options)
        image = assemble(result.program)
        policy = VerifierPolicy(sandbox_loads=options.sandbox_loads)
        v = verify_text(bytes(image.text.data), image.text.base, policy)
        assert v.ok, "; ".join(str(x) for x in v.violations)

    @pytest.mark.parametrize("src", PROGRAMS[:2])
    def test_unrewritten_fails_verification(self, src):
        """Sanity: the raw programs do NOT pass (they have naked accesses)."""
        image = assemble(parse_assembly(src))
        v = verify_text(bytes(image.text.data), image.text.base)
        assert not v.ok

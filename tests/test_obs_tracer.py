"""Tracer determinism, event taxonomy, and the Chrome trace exporter."""

import json

import pytest

from repro.core import O2
from repro.emulator import APPLE_M1
from repro.obs import (
    ContextSwitch,
    FaultEvent,
    InstSample,
    ProcessEvent,
    RuntimeCallSpan,
    SupervisorEvent,
    Tracer,
    export_chrome_trace,
    to_chrome_events,
    validate_trace,
)
from repro.robustness import ON_FAILURE, Supervisor
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall
from repro.workloads.spec import arena_bss_size, build_benchmark


EXIT7 = prologue() + "    mov x0, #7\n" + rt_exit()

FORK_THEN_EXIT = prologue() + rtcall(RuntimeCall.FORK) + """
    mov x0, #0
""" + rt_exit()


def traced_run(src, sample_every=0, **runtime_kwargs):
    runtime = Runtime(model=APPLE_M1, **runtime_kwargs)
    tracer = Tracer(sample_every=sample_every).attach(runtime)
    proc = runtime.spawn(compile_lfi(src).elf, verify=True)
    runtime.run_until_exit(proc)
    return runtime, tracer, proc


class TestEventStream:
    def test_lifecycle_and_span_events(self):
        runtime, tracer, proc = traced_run(EXIT7)
        kinds = [type(e).__name__ for e in tracer.events]
        assert "ProcessEvent" in kinds
        assert "RuntimeCallSpan" in kinds
        assert "ContextSwitch" in kinds
        spawn = next(e for e in tracer.events
                     if isinstance(e, ProcessEvent) and e.kind == "spawn")
        assert spawn.pid == proc.pid
        exit_ev = next(e for e in tracer.events
                       if isinstance(e, ProcessEvent) and e.kind == "exit")
        assert exit_ev.exit_code == 7

    def test_timestamps_are_monotone(self):
        _, tracer, _ = traced_run(EXIT7, sample_every=8)
        times = [e.ts for e in tracer.events]
        assert times == sorted(times)

    def test_fork_event_links_parent(self):
        runtime, tracer, proc = traced_run(FORK_THEN_EXIT)
        runtime.run()  # let the child finish too
        fork = next(e for e in tracer.events
                    if isinstance(e, ProcessEvent) and e.kind == "fork")
        assert fork.parent == proc.pid
        assert fork.pid != proc.pid

    def test_fault_event_emitted(self):
        bad = prologue() + """
            mov x0, #1
            mov x1, #2
        """ + rt_exit()
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        # Hand the runtime garbage: an unknown runtime call faults it.
        proc = runtime.spawn(compile_lfi(bad).elf, verify=True)
        runtime._fault(proc, "segv", "synthetic")
        faults = [e for e in tracer.events if isinstance(e, FaultEvent)]
        assert faults and faults[0].kind == "segv"

    def test_sampling_rate(self):
        loop = prologue() + """
            mov x0, #100
        loop:
            sub x0, x0, #1
            cbnz x0, loop
        """ + rt_exit()
        runtime, dense, _ = traced_run(loop, sample_every=1)
        _, sparse, _ = traced_run(loop, sample_every=16)
        n_dense = sum(isinstance(e, InstSample) for e in dense.events)
        n_sparse = sum(isinstance(e, InstSample) for e in sparse.events)
        assert n_dense > n_sparse > 0
        # rate 1 samples every retired instruction
        assert n_dense == runtime.machine.instret

    def test_multi_subscriber_sees_recorded_stream(self):
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        seen = []
        tracer.subscribe(seen.append)
        proc = runtime.spawn(compile_lfi(EXIT7).elf, verify=True)
        runtime.run_until_exit(proc)
        assert seen == tracer.events

    def test_detach_stops_emission(self):
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        tracer.detach()
        proc = runtime.spawn(compile_lfi(EXIT7).elf, verify=True)
        runtime.run_until_exit(proc)
        assert tracer.events == []

    def test_supervisor_incidents_traced(self):
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        supervisor = Supervisor(runtime)
        bad = prologue() + "    hlt #0\n"
        supervisor.submit("crashy", compile_native(bad).elf,
                          policy=ON_FAILURE, verify=False)
        supervisor.run()
        events = [e for e in tracer.events
                  if isinstance(e, SupervisorEvent)]
        assert events
        assert any(e.name == "crashy" for e in events)
        assert len(events) == len(supervisor.incidents)


class TestDeterminism:
    def test_equal_runs_trace_identically(self):
        _, first, _ = traced_run(EXIT7, sample_every=4)
        _, second, _ = traced_run(EXIT7, sample_every=4)
        assert first.events == second.events

    def test_chrome_export_byte_identical(self):
        asm = build_benchmark("505.mcf", target_instructions=8000)
        elf = compile_lfi(asm, options=O2,
                          bss_size=arena_bss_size("505.mcf")).elf

        def export():
            runtime = Runtime(model=APPLE_M1)
            tracer = Tracer(sample_every=32).attach(runtime)
            proc = runtime.spawn(elf, verify=True)
            runtime.run_until_exit(proc)
            return export_chrome_trace(tracer.events)

        assert export() == export()


class TestChromeExport:
    def test_export_validates(self):
        _, tracer, _ = traced_run(EXIT7, sample_every=8)
        text = export_chrome_trace(tracer.events)
        assert validate_trace(text) == []

    def test_export_structure(self):
        _, tracer, _ = traced_run(EXIT7)
        doc = json.loads(export_chrome_trace(tracer.events))
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases and "i" in phases
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names
        slices = [e for e in events
                  if e["ph"] == "X" and e["cat"] == "sched"]
        assert slices and all("dur" in e for e in slices)

    def test_export_to_file(self, tmp_path):
        _, tracer, _ = traced_run(EXIT7)
        path = tmp_path / "trace.json"
        text = export_chrome_trace(tracer.events, path=str(path))
        assert path.read_text() == text

    def test_validator_rejects_garbage(self):
        assert validate_trace("not json")
        assert validate_trace(json.dumps({"traceEvents": "nope"}))
        assert validate_trace(json.dumps(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 0,
                              "ts": 0}]}
        ))  # X without dur
        good = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                                 "tid": 0, "ts": 0, "dur": 1.0}]}
        assert validate_trace(json.dumps(good)) == []

    def test_to_chrome_events_drops_nothing_known(self):
        _, tracer, _ = traced_run(EXIT7, sample_every=8)
        mapped = to_chrome_events(tracer.events)
        metadata = [e for e in mapped if e["ph"] == "M"]
        assert len(mapped) == len(tracer.events) + len(metadata)

"""PR-9 transition tests: springboard fusion, chaining, batch ABI.

The near-zero-cost transition machinery (DESIGN.md §15) is, like the
superblock engine itself, a pure execution-strategy change: fused
runtime calls, chained block dispatch, and the vectored BATCH ABI must
all be architecturally invisible.  Every differential test here runs
the same program under ``stepping`` and ``superblock`` engines and
demands bit-identical observables — final registers, memory, retired
instructions, modeled cycles, faults, stdout — while also asserting
that the fast paths actually fired (``fused_calls``/``chain_links``
counters), so a silent fallback to the slow path cannot pass.

The :class:`repro.EngineConfig` satellite is covered here too: the
deprecation shim for the old string kwarg, dict round-trips across
process/checkpoint boundaries, and the gateway's typed
:class:`~repro.errors.ConfigError` on fuel/timeslice conflicts.
"""

from __future__ import annotations

import pytest

from repro import ENGINE_KINDS, ConfigError, EngineConfig
from repro.checkpoint import Checkpoint, capture_job, restore_job
from repro.core import O2
from repro.emulator import APPLE_M1, HltTrap, Machine, OutOfFuel
from repro.memory import PagedMemory
from repro.runtime import Runtime, RuntimeCall
from repro.runtime.syscalls import BATCHABLE
from repro.runtime.table import BATCH_MAX_RECORDS
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import (
    batch_block,
    mov_imm,
    prologue,
    rt_exit,
    rtcall,
)

from .conftest import load_elf_into

ENGINES = ("stepping", "superblock")


def observables(engine, elf, model=None, timeslice=50_000):
    """Run ``elf`` to completion under ``engine``; return all observables."""
    runtime = Runtime(model=model, timeslice=timeslice, engine=engine)
    proc = runtime.spawn(elf)
    runtime.run()
    memory = {
        base: runtime.memory._raw_read(base, size)
        for base, size, _ in sorted(runtime.memory.mapped_regions())
    }
    return {
        "registers": proc.registers,
        "instret": runtime.machine.instret,
        "cycles": runtime.machine.cycles,
        "faults": [(f.kind, f.detail, f.pc) for f in runtime.faults],
        "exit": proc.exit_code,
        "stdout": runtime.stdout_of(proc),
        "memory": memory,
    }


def call_loop_program(iterations: int = 50) -> str:
    """A hot loop making one GETPID runtime call per trip.

    Small enough to translate into a handful of superblocks, hot enough
    that both the fused-call springboard and block chaining must engage.
    """
    return (
        prologue()
        + f"\tmov x20, #{iterations}\n"
        + "\tmov x26, #0\n"
        + "loop:\n"
        + rtcall(RuntimeCall.GETPID)
        + "\tadd x26, x26, x0\n"
        + "\tsub x20, x20, #1\n"
        + "\tcbnz x20, loop\n"
        + "\tmov x0, x26\n"
        + rt_exit()
    )


class TestFusedSpringboard:
    """The tentpole: runtime calls fused at translation time must be
    invisible — identical states, cycle accounting, and stdout — while
    the ``fused_calls`` counter proves the fast path actually ran."""

    @pytest.mark.parametrize("model", [None, APPLE_M1],
                             ids=["uncosted", "M1"])
    @pytest.mark.parametrize("timeslice", [50_000, 64, 7])
    def test_call_loop_identical(self, model, timeslice):
        elf = compile_lfi(call_loop_program(), options=O2).elf
        stepping = observables("stepping", elf, model=model,
                               timeslice=timeslice)
        superblock = observables("superblock", elf, model=model,
                                 timeslice=timeslice)
        assert stepping == superblock

    def test_fused_and_chained_paths_fire(self):
        elf = compile_lfi(call_loop_program(200), options=O2).elf
        runtime = Runtime(model=None, engine=EngineConfig())
        runtime.spawn(elf)
        runtime.run()
        sb = runtime.machine._sb
        assert sb.fused_calls > 0, "no runtime call was fused"
        assert sb.chain_links > 100, "the hot loop never chained"

    def test_chaining_off_still_identical(self):
        """chaining=False is a tuning knob, never a semantic one."""
        elf = compile_lfi(call_loop_program(), options=O2).elf
        on = observables(EngineConfig(chaining=True), elf, model=APPLE_M1)
        off = observables(EngineConfig(chaining=False), elf, model=APPLE_M1)
        assert on == off

    def test_block_cache_cap_still_identical(self):
        elf = compile_lfi(call_loop_program(), options=O2).elf
        capped = observables(EngineConfig(block_cache_cap=2), elf)
        unbounded = observables(EngineConfig(), elf)
        assert capped == unbounded

    def test_write_ordering_preserved(self):
        """stdout interleaving across fused crossings matches stepping."""
        asm = prologue() + "\tmov x20, #5\nloop:\n"
        asm += "\tmov x0, #1\n"
        asm += "\tadrp x1, msg\n\tadd x1, x1, :lo12:msg\n"
        asm += "\tmov x2, #2\n"
        asm += rtcall(RuntimeCall.WRITE)
        asm += "\tsub x20, x20, #1\n\tcbnz x20, loop\n"
        asm += "\tmov x0, #0\n" + rt_exit()
        asm += '.rodata\nmsg: .asciz "ab"\n'
        elf = compile_lfi(asm, options=O2).elf
        stepping = observables("stepping", elf, model=APPLE_M1)
        superblock = observables("superblock", elf, model=APPLE_M1)
        assert stepping == superblock
        assert stepping["stdout"] == "ab" * 5


class TestChainedFuelLockstep:
    """Chained dispatch must honor fuel instruction-for-instruction."""

    BODY = """
        .globl _start
    _start:
        mov x0, #0
        mov x1, #100
    loop:
        add x0, x0, x1
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    """

    def _machine(self, engine) -> Machine:
        from repro.arm64 import parse_assembly
        from repro.arm64.assembler import assemble
        from repro.elf import build_elf

        elf = build_elf(assemble(parse_assembly(self.BODY)))
        memory = PagedMemory()
        load_elf_into(memory, elf)
        machine = Machine(memory, engine=engine)
        machine.cpu.pc = elf.entry
        return machine

    @pytest.mark.parametrize("fuel", [1, 2, 3, 5, 7, 64])
    def test_lockstep_under_exhaustion(self, fuel):
        stepper = self._machine(EngineConfig(kind="stepping"))
        chained = self._machine(EngineConfig(chaining=True))
        for _ in range(400):
            outcomes = []
            for machine in (stepper, chained):
                with pytest.raises((OutOfFuel, HltTrap)) as exc:
                    machine.run(fuel=fuel)
                outcomes.append(exc.type)
            assert outcomes[0] is outcomes[1]
            assert chained.instret == stepper.instret
            assert chained.cpu.pc == stepper.cpu.pc
            assert chained.cpu.regs == stepper.cpu.regs
            if outcomes[0] is HltTrap:
                break
        else:
            pytest.fail("program never completed")
        # Big fuel slices let the loop chain; tiny ones still must not.
        if fuel >= 64:
            assert chained._sb.chain_links > 0


class TestInvalidationUnlinksChains:
    """mmap over translated text must sever chains mid-loop: a stale
    successor link may survive as a pointer, but dispatch must reject it
    (``valid`` is cleared) and retranslation must produce fresh blocks."""

    def _chained_runtime(self):
        elf = compile_lfi(call_loop_program(200), options=O2).elf
        runtime = Runtime(model=None, engine=EngineConfig())
        proc = runtime.spawn(elf)
        runtime.run()
        sb = runtime.machine._sb
        assert sb.chain_links > 0
        return runtime, proc, sb

    def test_mmap_over_chained_loop_invalidates_links(self):
        runtime, proc, sb = self._chained_runtime()
        linked = [blk for blk in sb._blocks.values()
                  if blk.link_taken is not None or blk.link_fall is not None]
        assert linked, "no chained blocks formed"
        # Remap the page holding a chained successor, exec-style.
        target = next(blk.link_taken or blk.link_fall for blk in linked)
        page = runtime.memory.page_size
        page_base = target.start & ~(page - 1)
        from repro.memory import PERM_RW

        runtime.memory.unmap(page_base, page)
        runtime.memory.map_region(page_base, page, PERM_RW)
        # The successor is dead and every surviving chain into the page
        # now points at an invalid block, which dispatch refuses.
        assert target.valid is False
        assert sb.block_at(target.start) is None
        for blk in sb._blocks.values():
            for link in (blk.link_taken, blk.link_fall):
                if link is not None and page_base <= link.start < \
                        page_base + page:
                    assert link.valid is False

    def test_rerun_after_invalidation_matches_stepping(self):
        """After a full-slot invalidation the engine retranslates and
        a fresh guest still matches the stepping engine exactly."""
        runtime, proc, sb = self._chained_runtime()
        runtime.machine.invalidate_code(proc.layout.base,
                                        proc.layout.end - proc.layout.base)
        assert all(not blk.valid for blk in sb._blocks.values()
                   if proc.layout.base <= blk.start < proc.layout.end)
        elf = compile_lfi(call_loop_program(200), options=O2).elf
        second = runtime.spawn(elf)
        runtime.run()
        # GETPID makes the result pid-dependent, so the stepping
        # reference replays the same two-spawn history.
        reference = Runtime(model=None, engine=EngineConfig(kind="stepping"))
        reference.spawn(elf)
        ref_proc = reference.spawn(elf)
        reference.run()
        assert second.exit_code == ref_proc.exit_code
        assert second.registers == ref_proc.registers


def batch_program(records, result_slot: int = 0) -> str:
    """A guest that issues one BATCH of ``records`` and exits with the
    call's return value.  The record buffer lives in the arena
    (``.bss``), 64 bytes in; word ``result_slot`` of the arena receives
    the BATCH return so it lands in the memory observables too."""
    asm = prologue()
    asm += "\tadrp x25, arena\n\tadd x25, x25, :lo12:arena\n"
    asm += "\tadd x19, x25, #64\n"
    asm += batch_block(records, buf_reg="x19")
    asm += f"\tstr x0, [x25, #{8 * result_slot}]\n"
    asm += rt_exit()
    asm += "\n.bss\n.balign 64\narena:\n    .skip 64\n"
    return asm


BATCH_MIXES = {
    "getpid": [(RuntimeCall.GETPID, [])],
    "mixed": [(RuntimeCall.GETPID, []), (RuntimeCall.CLOCK, []),
              (RuntimeCall.BRK, [0])],
    "nonbatchable": [(RuntimeCall.FORK, [])],
    "unknown-call": [(99, [])],
    "write": [(RuntimeCall.WRITE, [1, 0, 0]), (RuntimeCall.GETPID, [])],
}


class TestBatchABI:
    """The vectored runtime-call ABI: one transition, many crossings."""

    @pytest.mark.parametrize("mix", sorted(BATCH_MIXES), ids=str)
    def test_batch_differential(self, mix):
        records = BATCH_MIXES[mix]
        bss = 64 + len(records) * 64
        elf = compile_lfi(batch_program(records), options=O2,
                          bss_size=bss).elf
        stepping = observables("stepping", elf, model=APPLE_M1)
        superblock = observables("superblock", elf, model=APPLE_M1)
        assert stepping == superblock
        # The guest exits with the BATCH return: the record count for a
        # well-formed batch (per-record errors land in result words).
        assert stepping["exit"] == len(records) & 0xFF

    def test_result_words_written_back(self):
        records = [(RuntimeCall.GETPID, []), (RuntimeCall.FORK, [])]
        elf = compile_lfi(batch_program(records), options=O2,
                          bss_size=64 + 128).elf
        runtime = Runtime(model=None, engine=EngineConfig())
        proc = runtime.spawn(elf)
        runtime.run()
        import errno

        # Locate the record buffer by its signature: GETPID's call word
        # followed 64 bytes later by FORK's.
        sig0 = int(RuntimeCall.GETPID).to_bytes(8, "little")
        sig1 = int(RuntimeCall.FORK).to_bytes(8, "little")
        buf = None
        for base, size, _ in runtime.memory.mapped_regions():
            if not (proc.layout.base <= base < proc.layout.end):
                continue
            raw = runtime.memory._raw_read(base, size)
            idx = raw.find(sig0)
            while idx != -1:
                if raw[idx + 64:idx + 72] == sig1:
                    buf = base + idx
                    break
                idx = raw.find(sig0, idx + 1)
            if buf is not None:
                break
        assert buf is not None, "batch record buffer not found in memory"

        def result_word(i):
            raw = runtime.memory._raw_read(buf + i * 64 + 56, 8)
            return int.from_bytes(raw, "little")

        assert result_word(0) == proc.pid
        assert result_word(1) == (-errno.ENOSYS) & ((1 << 64) - 1)

    def test_batch_abi_disabled_returns_enosys(self):
        import errno

        records = [(RuntimeCall.GETPID, [])]
        elf = compile_lfi(batch_program(records), options=O2,
                          bss_size=128).elf
        for engine in (EngineConfig(batch_abi=False),
                       EngineConfig(kind="stepping", batch_abi=False)):
            runtime = Runtime(model=None, engine=engine)
            proc = runtime.spawn(elf)
            runtime.run()
            assert proc.exit_code == (-errno.ENOSYS) & 0xFF

    def test_oversized_batch_rejected(self):
        import errno

        asm = prologue()
        asm += "\tadrp x25, arena\n\tadd x25, x25, :lo12:arena\n\tmov x19, x25\n"
        asm += "\tmov x0, x19\n"
        asm += mov_imm("x1", BATCH_MAX_RECORDS + 1)
        asm += rtcall(RuntimeCall.BATCH)
        asm += rt_exit()
        asm += "\n.bss\n.balign 64\narena:\n    .skip 64\n"
        elf = compile_lfi(asm, options=O2).elf
        results = {}
        for engine in ENGINES:
            runtime = Runtime(model=None, engine=engine)
            proc = runtime.spawn(elf)
            runtime.run()
            results[engine] = proc.exit_code
        assert results["stepping"] == results["superblock"] \
            == (-errno.EINVAL) & 0xFF

    def test_scheduling_calls_are_not_batchable(self):
        for call in (RuntimeCall.EXIT, RuntimeCall.FORK, RuntimeCall.WAIT,
                     RuntimeCall.YIELD, RuntimeCall.YIELD_TO,
                     RuntimeCall.BATCH):
            assert call not in BATCHABLE


WRITER = prologue() + """
    mov x20, #20
wloop:
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #4
""" + rtcall(RuntimeCall.WRITE) + """
    sub x20, x20, #1
    cbnz x20, wloop
    mov x0, #7
""" + rt_exit() + """
.rodata
msg: .asciz "tick"
"""


class TestEngineConfigAPI:
    def test_dict_round_trip(self):
        for config in (EngineConfig(),
                       EngineConfig(kind="stepping"),
                       EngineConfig(fuel=1234, block_cache_cap=7,
                                    chaining=False, batch_abi=False)):
            assert EngineConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            EngineConfig.from_dict({"kind": "superblock", "nitro": True})

    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(kind="jit")
        with pytest.raises(ConfigError):
            EngineConfig(fuel=0)
        with pytest.raises(ConfigError):
            EngineConfig(block_cache_cap=-1)
        with pytest.raises(ConfigError):
            EngineConfig.coerce(42)

    def test_package_root_exports(self):
        import repro
        from repro.engine import EngineConfig as canonical

        assert repro.EngineConfig is canonical
        assert repro.ENGINE_KINDS == ENGINE_KINDS == \
            ("superblock", "stepping")
        assert issubclass(repro.ConfigError, ValueError)

    def test_string_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = EngineConfig.coerce("stepping")
        assert config == EngineConfig(kind="stepping")
        with pytest.warns(DeprecationWarning):
            runtime = Runtime(engine="superblock")
        assert runtime.engine_config == EngineConfig()

    def test_engine_config_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runtime = Runtime(engine=EngineConfig(kind="stepping"))
            assert runtime.machine.engine == "stepping"
            Runtime()  # None is not the deprecated spelling either

    def test_fuel_sets_runtime_timeslice(self):
        runtime = Runtime(engine=EngineConfig(fuel=777))
        assert runtime.scheduler.timeslice == 777
        explicit = Runtime(engine=EngineConfig(fuel=777), timeslice=123)
        assert explicit.scheduler.timeslice == 777

    def test_checkpoint_round_trip(self):
        """A job paused under one EngineConfig resumes byte-identically
        in a runtime rebuilt from the config's serialized dict."""
        config = EngineConfig(block_cache_cap=64, chaining=True)
        elf = compile_lfi(WRITER, options=O2).elf

        reference = Runtime(model=None, timeslice=50, engine=config)
        ref = reference.spawn(elf)
        assert reference.run_bounded(ref, 10_000_000)

        first = Runtime(model=None, timeslice=50, engine=config)
        proc = first.spawn(elf)
        assert not first.run_bounded(proc, 60)
        ckpt = Checkpoint.from_bytes(
            capture_job(first, proc,
                        consumed_instructions=first.machine.instret,
                        consumed_cycles=first.machine.cycles).to_bytes())

        revived = EngineConfig.from_dict(config.to_dict())
        assert revived == config
        second = Runtime(model=None, timeslice=50, engine=revived)
        restored = restore_job(second, ckpt)
        assert second.run_bounded(restored, 10_000_000)

        assert second.stdout_of(restored) == reference.stdout_of(ref) \
            == "tick" * 20
        assert restored.exit_code == ref.exit_code == 7
        assert restored.instructions == ref.instructions
        assert restored.registers == ref.registers


class TestGatewayConfigErrors:
    def _policies(self, **kwargs):
        from repro.serve import TenantPolicy

        return {"a": TenantPolicy(**kwargs)}

    def test_fuel_conflicts_with_pinned_timeslice(self):
        from repro.serve import Gateway

        with pytest.raises(ConfigError, match="conflicts with"):
            Gateway(self._policies(), lanes=1, timeslice=200,
                    engine=EngineConfig(fuel=100))

    def test_fuel_exceeding_checkpoint_interval(self):
        from repro.serve import Gateway

        with pytest.raises(ConfigError, match="checkpoint interval"):
            Gateway(self._policies(), lanes=1, checkpoint_interval=2000,
                    engine=EngineConfig(fuel=5000))

    def test_agreeing_fuel_accepted_and_pinned(self):
        from repro.serve import Gateway

        gateway = Gateway(self._policies(), lanes=1,
                          engine=EngineConfig(fuel=500))
        assert gateway.timeslice == 500
        same = Gateway(self._policies(), lanes=1, timeslice=500,
                       engine=EngineConfig(fuel=500))
        assert same.timeslice == 500

    def test_tenant_engine_kind_pin_mismatch(self):
        from repro.serve import Gateway

        with pytest.raises(ConfigError, match="pins engine kind"):
            Gateway(self._policies(
                engine=EngineConfig(kind="stepping")), lanes=1)

    def test_tenant_fuel_pin_mismatch_never_clamped(self):
        from repro.serve import Gateway

        with pytest.raises(ConfigError, match="never silently"):
            Gateway(self._policies(engine=EngineConfig(fuel=999)),
                    lanes=1, timeslice=500)

    def test_tenant_pin_checked_on_hot_reload(self):
        from repro.serve import Gateway, TenantPolicy

        gateway = Gateway(self._policies(), lanes=1)
        matching = TenantPolicy(engine=EngineConfig())
        gateway.reload("a", matching, token=1)
        with pytest.raises(ConfigError):
            gateway.reload("a", TenantPolicy(
                engine=EngineConfig(kind="stepping")), token=2)

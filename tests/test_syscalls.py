"""Runtime-call surface tests: every call, including the error paths."""

import pytest

from repro.runtime import Runtime, RuntimeCall, StdStream
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall


def run(src, setup=None):
    runtime = Runtime()
    if setup:
        setup(runtime)
    proc = runtime.spawn(compile_lfi(src).elf)
    code = runtime.run_until_exit(proc)
    return runtime, proc, code


class TestFileCalls:
    def test_open_missing_file_enoent(self):
        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
            mov x1, #0
        """ + rtcall(RuntimeCall.OPEN) + """
            neg x0, x0
        """ + rt_exit() + """
        .rodata
        path: .asciz "/missing"
        """
        _, _, code = run(src)
        assert code == 2  # ENOENT

    def test_lseek(self):
        def setup(runtime):
            runtime.vfs.write_file("/f", b"0123456789")

        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
            mov x1, #0
        """ + rtcall(RuntimeCall.OPEN) + """
            mov x19, x0
            mov x1, #4
            mov x2, #0               // SEEK_SET
        """ + rtcall(RuntimeCall.LSEEK) + """
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #1
            mov x0, x19
        """ + rtcall(RuntimeCall.READ) + """
            adrp x1, buf
            add x1, x1, :lo12:buf
            ldrb w0, [x1]
        """ + rt_exit() + """
        .rodata
        path: .asciz "/f"
        .data
        buf: .skip 8
        """
        _, _, code = run(src, setup)
        assert code == ord("4")

    def test_lseek_on_pipe_espipe(self):
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            ldr w0, [x19]
            mov x1, #0
            mov x2, #0
        """ + rtcall(RuntimeCall.LSEEK) + """
            neg x0, x0
        """ + rt_exit() + """
        .data
        fds: .skip 8
        """
        _, _, code = run(src)
        assert code == 29  # ESPIPE

    def test_read_bad_fd(self):
        src = prologue() + """
            mov x0, #77
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + """
            neg x0, x0
        """ + rt_exit() + """
        .data
        buf: .skip 8
        """
        _, _, code = run(src)
        assert code == 9  # EBADF

    def test_close_then_use_fails(self):
        src = prologue() + """
            mov x0, #1
        """ + rtcall(RuntimeCall.CLOSE) + """
            mov x0, #1
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #1
        """ + rtcall(RuntimeCall.WRITE) + """
            neg x0, x0
        """ + rt_exit() + """
        .data
        buf: .skip 8
        """
        _, _, code = run(src)
        assert code == 9  # EBADF

    def test_unlink(self):
        def setup(runtime):
            runtime.vfs.write_file("/goner", b"x")

        src = prologue() + """
            adrp x0, path
            add x0, x0, :lo12:path
        """ + rtcall(RuntimeCall.UNLINK) + rt_exit() + """
        .rodata
        path: .asciz "/goner"
        """
        runtime, _, code = run(src, setup)
        assert code == 0
        assert not runtime.vfs.exists("/goner")

    def test_stdin_read(self):
        src = prologue() + """
            mov x0, #0
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #4
        """ + rtcall(RuntimeCall.READ) + """
            adrp x1, buf
            add x1, x1, :lo12:buf
            ldrb w0, [x1]
        """ + rt_exit() + """
        .data
        buf: .skip 8
        """
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(src).elf)
        stdin = proc.fds[0]
        assert isinstance(stdin, StdStream)
        stdin.buffer.extend(b"Zed!")
        assert runtime.run_until_exit(proc) == ord("Z")


class TestProcessCalls:
    def test_wait_with_no_children_echild(self):
        src = prologue() + """
            mov x0, #0
        """ + rtcall(RuntimeCall.WAIT) + """
            neg x0, x0
        """ + rt_exit()
        _, _, code = run(src)
        assert code == 10  # ECHILD

    def test_yield_to_missing_pid_esrch(self):
        src = prologue() + """
            mov x0, #99
        """ + rtcall(RuntimeCall.YIELD_TO) + """
            neg x0, x0
        """ + rt_exit()
        _, _, code = run(src)
        assert code == 3  # ESRCH

    def test_clock_monotonic(self):
        src = prologue() + rtcall(RuntimeCall.CLOCK) + """
            mov x19, x0
            mov x1, #0
            movz x2, #200
        spin:
            add x1, x1, #1
            cmp x1, x2
            b.ne spin
        """ + rtcall(RuntimeCall.CLOCK) + """
            sub x0, x0, x19
            cmp x0, #0
            cset x0, gt
        """ + rt_exit()
        from repro.emulator import APPLE_M1

        runtime = Runtime(model=APPLE_M1)
        proc = runtime.spawn(compile_lfi(src).elf)
        assert runtime.run_until_exit(proc) == 1

    def test_brk_shrink_rejected_below_heap_start(self):
        src = prologue() + """
            mov x0, #0
        """ + rtcall(RuntimeCall.BRK) + """
            sub x0, x0, #8192        // below heap start
        """ + rtcall(RuntimeCall.BRK) + """
            neg x0, x0
        """ + rt_exit()
        _, _, code = run(src)
        assert code == 12  # ENOMEM

    def test_munmap_outside_sandbox_einval(self):
        src = prologue() + """
            mov x0, #0               // table page: not unmappable
            movz x1, #0x4000
        """ + rtcall(RuntimeCall.MUNMAP) + """
            neg x0, x0
        """ + rt_exit()
        _, _, code = run(src)
        assert code == 22  # EINVAL

    def test_unknown_table_slot_faults(self):
        """A call through a table slot with no handler kills the process."""
        from repro.memory import PAGE_SIZE

        src = prologue() + f"""
            ldr x30, [x21, #{8 * 200}]
            blr x30
        """ + rt_exit()
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(src).elf)
        runtime.run()
        assert runtime.faults and runtime.faults[0].pid == proc.pid

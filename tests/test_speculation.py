"""Speculative-execution threat model: engine mode, hardening, gallery.

Two groups of tests:

* **tier-1** (unmarked): ``SpeculationConfig``/``EngineConfig`` plumbing,
  predictor units, the fence/mask rewriter output shape, verifier
  soundness of the masked-guard tolerance, and the speculation
  transparency oracle on a small program;
* **gallery** (``@pytest.mark.speculation``, excluded from tier-1): the
  full Spectre leakage matrix — both attacks leak and recover the secret
  byte at every unhardened level, leak exactly zero under each hardened
  level, and behave deterministically under a fixed predictor seed.
  ``REPRO_SPEC_SEED`` sweeps the predictor seed (nightly CI matrix).
"""

import json
import os
import random
from pathlib import Path

import pytest

from repro.core import (
    O0,
    O1,
    O2,
    O2_FENCE,
    O2_MASK,
    RewriteError,
    VerifierPolicy,
    rewrite_program,
    verify_elf,
)
from repro.arm64 import parse_assembly
from repro.emulator import PatternHistoryTable, ReturnStack
from repro.engine import EngineConfig, SpeculationConfig
from repro.errors import ConfigError
from repro.fuzz.differential import (
    assemble_to_elf,
    check_speculation,
    rewrite_to_elf,
    slot_machine,
)
from repro.workloads.spectre import (
    ATTACKS,
    DEFAULT_SECRETS,
    attack_source,
    measure_attack,
)

#: Predictor seed for the gallery tests; swept by the nightly CI matrix.
SPEC_SEED = int(os.environ.get("REPRO_SPEC_SEED", "0"))

UNHARDENED = [("O0", O0), ("O1", O1), ("O2", O2)]
HARDENED = [("O2-fence", O2_FENCE), ("O2-mask", O2_MASK)]

#: A small program exercising conditionals, calls, returns, and memory —
#: every predictor surface — used by the transparency tests.
LOOP_SOURCE = """\
.text
_start:
    adrp x10, buf
    add  x10, x10, :lo12:buf
    movz w0, #0
    movz w1, #0
loop:
    bl   bump
    add  x2, x10, w1, uxtw
    strb w0, [x2]
    add  w1, w1, #1
    cmp  w1, #40
    b.ne loop
    brk  #0
bump:
    add  w0, w0, #3
    ret
.data
buf:
    .skip 64
"""


# -- config plumbing (tier-1) -------------------------------------------------


def test_speculation_config_defaults_and_validation():
    spec = SpeculationConfig()
    assert (spec.window, spec.seed, spec.pht_entries, spec.rsb_depth) == \
        (24, 0, 256, 8)
    with pytest.raises(ConfigError):
        SpeculationConfig(window=0)
    with pytest.raises(ConfigError):
        SpeculationConfig(seed=-1)
    with pytest.raises(ConfigError):
        SpeculationConfig(pht_entries=48)  # not a power of two
    with pytest.raises(ConfigError):
        SpeculationConfig(rsb_depth=0)
    with pytest.raises(ConfigError):
        SpeculationConfig.from_dict({"window": 8, "bogus": 1})
    with pytest.raises(ConfigError):
        EngineConfig(speculation=3)


def test_engine_config_speculation_coercion_and_round_trip():
    assert EngineConfig().speculation is None
    assert EngineConfig(speculation=True).speculation == SpeculationConfig()
    config = EngineConfig(kind="stepping",
                          speculation={"window": 12, "seed": 5})
    assert config.speculation == SpeculationConfig(window=12, seed=5)

    data = config.to_dict()
    assert data["speculation"] == {"window": 12, "seed": 5,
                                   "pht_entries": 256, "rsb_depth": 8}
    assert EngineConfig.from_dict(data) == config
    assert EngineConfig.from_dict(json.loads(json.dumps(data))) == config
    # The disabled case stays disabled through the round trip.
    plain = EngineConfig(kind="stepping")
    assert plain.to_dict()["speculation"] is None
    assert EngineConfig.from_dict(plain.to_dict()) == plain


def test_engine_config_coerce_accepts_dicts():
    config = EngineConfig.coerce(
        {"kind": "stepping", "speculation": {"seed": 3}})
    assert config.kind == "stepping"
    assert config.speculation.seed == 3
    with pytest.raises(ConfigError):
        EngineConfig.coerce({"kind": "stepping", "bogus": 1})


def test_tenant_policy_gateway_and_cluster_accept_speculation():
    from repro.serve import Gateway, TenantPolicy

    engine = EngineConfig(kind="stepping", speculation=SpeculationConfig())
    policy = TenantPolicy(engine={"kind": "stepping",
                                  "speculation": {"seed": 7}})
    assert policy.engine.speculation.seed == 7

    gateway = Gateway({"t": policy}, lanes=1, engine=engine)
    assert gateway.engine_config.speculation == SpeculationConfig()
    with pytest.raises(ConfigError):
        Gateway({"t": TenantPolicy(engine=EngineConfig(kind="superblock"))},
                lanes=1, engine=engine)

    # The cluster worker deserializes engine dicts from its config blob.
    worker_engine = EngineConfig.from_dict(
        {"kind": "stepping", "speculation": {"seed": 3, "window": 16}})
    assert worker_engine.speculation == SpeculationConfig(seed=3, window=16)


def test_speculation_rejects_step_probes_and_forced_stepping():
    elf = rewrite_to_elf(LOOP_SOURCE, O2)
    engine = EngineConfig(kind="stepping", speculation=SpeculationConfig())

    machine = slot_machine(elf, engine=engine)
    machine.add_step_probe(lambda *args: None)
    with pytest.raises(ConfigError):
        machine.run(fuel=10)

    machine = slot_machine(elf, engine=engine)
    machine.force_stepping = True
    with pytest.raises(ConfigError):
        machine.run(fuel=10)


# -- predictor units (tier-1) -------------------------------------------------


def test_pht_saturates_and_is_seed_deterministic():
    pht = PatternHistoryTable(16, random.Random(1))
    assert pht.counters == PatternHistoryTable(16, random.Random(1)).counters
    pc = 0x1000
    for _ in range(8):
        pht.update(pc, True)
    assert pht.predict(pc)
    assert pht.counters[(pc >> 2) & 15] == 3  # saturated, not overflowed
    for _ in range(8):
        pht.update(pc, False)
    assert not pht.predict(pc)
    assert pht.counters[(pc >> 2) & 15] == 0


def test_rsb_wraps_and_underflows_to_unmapped_addresses():
    rsb = ReturnStack(4, random.Random(2))
    # Seeded stale entries sit in the never-mapped first page, aligned.
    assert all(0x40 <= e < 0x1000 and e % 4 == 0 for e in rsb.entries)
    for address in (0x100, 0x200, 0x300):
        rsb.push(address)
    assert rsb.pop() == 0x300
    assert rsb.pop() == 0x200
    # Six more pops underflow past the fill level and wrap — every value
    # is still a seeded (or stale) entry, never garbage.
    for _ in range(6):
        assert 0 < rsb.pop() < 0x1000 or rsb.pop() in (0x100, 0x200, 0x300)


# -- hardened rewriter output (tier-1) ----------------------------------------


def _rewritten_mnemonics(source, options):
    result = rewrite_program(parse_assembly(source), options)
    from repro.arm64.instructions import Instruction

    return result, [item.mnemonic for item in result.program.items
                    if isinstance(item, Instruction)]


def test_fence_rewrite_places_barriers_on_mispredictable_edges():
    result, mnemonics = _rewritten_mnemonics(LOOP_SOURCE, O2_FENCE)
    # One dsb after b.ne, one after bl, one per .text label (loop, bump).
    assert mnemonics.count("dsb") >= 4
    after = {mnemonics[i + 1] for i, m in enumerate(mnemonics)
             if m in ("b.ne", "bl")}
    assert after == {"dsb"}
    assert result.stats.fence_guards >= 4
    assert result.stats.demoted_returns == 0
    assert "ret" in mnemonics  # fencing keeps returns (and the RSB) alive
    assert O2_FENCE.label == "O2, fence"
    assert O2_FENCE.zero_instruction_guards and O2_FENCE.hoisting


def test_mask_rewrite_poisons_and_demotes_returns():
    result, mnemonics = _rewritten_mnemonics(LOOP_SOURCE, O2_MASK)
    after_cond = {mnemonics[i + 1] for i, m in enumerate(mnemonics)
                  if m.startswith("b.")}
    assert after_cond == {"csinv"}
    assert "bic" in mnemonics            # masked guard index clearing
    assert "ret" not in mnemonics        # demoted: the RSB never engages
    assert result.stats.demoted_returns == 1
    assert result.stats.mask_guards > 0
    assert O2_MASK.label == "O2, mask"
    assert not O2_MASK.zero_instruction_guards and not O2_MASK.hoisting


def test_mask_reserves_the_poison_register():
    source = ".text\n_start:\n    movz x25, #1\n    brk #0\n"
    rewrite_program(parse_assembly(source), O2)  # fine unhardened
    with pytest.raises(RewriteError):
        rewrite_program(parse_assembly(source), O2_MASK)


def test_hardened_rewrites_verify_clean():
    for _label, options in HARDENED:
        elf = rewrite_to_elf(LOOP_SOURCE, options)
        result = verify_elf(elf, VerifierPolicy())
        assert result.ok, result.violations[:3]


def test_verifier_rejects_unguarded_masked_index():
    # bic w18, w0, w25 is tolerated *only* immediately before the guard
    # add; anything else writing the scratch register stays a violation.
    source = (".text\n_start:\n"
              "    bic w18, w0, w25\n"
              "    movz x0, #1\n"
              "    brk #0\n")
    result = verify_elf(assemble_to_elf(source), VerifierPolicy())
    assert not result.ok
    assert any("x18" in str(v) for v in result.violations)


# -- transparency oracle (tier-1) ---------------------------------------------


def test_check_speculation_clean_on_loop_program():
    for options in (O2, O2_FENCE, O2_MASK):
        elf = rewrite_to_elf(LOOP_SOURCE, options)
        assert check_speculation(elf, seed=SPEC_SEED) == []


def test_speculative_run_leaves_a_log():
    elf = rewrite_to_elf(LOOP_SOURCE, O2)
    machine = slot_machine(elf, engine=EngineConfig(
        kind="stepping", speculation=SpeculationConfig(seed=SPEC_SEED)))
    from repro.emulator import BrkTrap

    with pytest.raises(BrkTrap):
        machine.run(fuel=100_000)
    log = machine.speculation_log
    assert log is not None
    assert log.predictions > 0
    # The plain machine carries no log at all.
    assert slot_machine(elf).speculation_log is None


# -- the Spectre gallery (speculation marker) ---------------------------------


@pytest.mark.speculation
@pytest.mark.parametrize("attack", sorted(ATTACKS))
def test_attacks_leak_and_recover_the_secret_unhardened(attack):
    spec = SpeculationConfig(seed=SPEC_SEED)
    for label, options in UNHARDENED:
        result = measure_attack(attack, options=options, speculation=spec)
        assert result.leakage > 0, f"{attack} at {label}: no leakage"
        assert result.recovered == DEFAULT_SECRETS, \
            f"{attack} at {label}: recovered {result.recovered}"


@pytest.mark.speculation
@pytest.mark.parametrize("attack", sorted(ATTACKS))
def test_hardened_levels_leak_exactly_zero(attack):
    spec = SpeculationConfig(seed=SPEC_SEED)
    for label, options in HARDENED:
        result = measure_attack(attack, options=options, speculation=spec)
        assert result.leakage == 0, \
            f"{attack} at {label}: leakage {result.leakage}"
        # Whatever footprint remains must be secret-independent.
        assert result.recovered[0] == result.recovered[1]
        assert result.logs[0].access_trace() == result.logs[1].access_trace()


@pytest.mark.speculation
@pytest.mark.parametrize("attack", sorted(ATTACKS))
def test_gallery_is_deterministic_under_a_fixed_seed(attack):
    spec = SpeculationConfig(seed=SPEC_SEED)
    first = measure_attack(attack, options=O2, speculation=spec)
    second = measure_attack(attack, options=O2, speculation=spec)
    assert first.leakage == second.leakage
    for log_a, log_b in zip(first.logs, second.logs):
        assert log_a.access_trace() == log_b.access_trace()
        assert log_a.summary() == log_b.summary()
        assert log_a.squashes == log_b.squashes


@pytest.mark.speculation
@pytest.mark.parametrize("attack", sorted(ATTACKS))
def test_corpus_pins_the_gallery_sources(attack):
    path = Path(__file__).parent / "corpus" / f"spectre-{attack}.json"
    entry = json.loads(path.read_text())
    assert entry["kind"] == "program" and entry["expect"] == "pass"
    assert entry["source"] == attack_source(attack, 42)


@pytest.mark.speculation
@pytest.mark.parametrize("attack", sorted(ATTACKS))
def test_attack_programs_pass_the_transparency_oracle(attack):
    elf = rewrite_to_elf(attack_source(attack, 42), O2)
    assert check_speculation(elf, seed=SPEC_SEED) == []

"""Differential testing: LFI rewriting must preserve program semantics.

Hypothesis generates random (well-behaved) programs mixing ALU operations
and memory accesses across all of Table 1's addressing modes; each program
runs twice — natively and after O0/O1/O2 rewriting — inside a sandbox slot,
and the final register file and data buffer must match exactly.

This is the reproduction's strongest correctness property: it exercises
the rewriter, the assembler/encoder, the verifier, and the emulator
against each other on inputs nobody hand-picked.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.core import O0, O1, O2, VerifierPolicy, rewrite_program, verify_elf
from repro.elf import build_elf
from repro.emulator import BrkTrap, Machine
from repro.memory import PERM_RW, PagedMemory, SandboxLayout
from tests.conftest import load_elf_into

#: Registers the generated programs may use freely.
WORK_REGS = [f"x{i}" for i in range(8)]
BUF_REG = "x10"  # holds the buffer pointer
IDX_REG = "x11"  # a bounded index for register-offset modes
BUF_SIZE = 4096

_alu = st.sampled_from(["add", "sub", "and", "orr", "eor"])
_alu_imm = st.sampled_from(["add", "sub"])  # any 12-bit imm encodes
_reg = st.sampled_from(WORK_REGS)
_imm = st.integers(min_value=0, max_value=4095)
#: Valid logical (bitmask) immediates for and/orr/eor.
_logical_imm = st.sampled_from(
    [0x1, 0x3, 0xF, 0xFF, 0xF0, 0x3F0, 0xFF00, 0xFFFF,
     0x7FFFFFFF, 0xFFFFFFFF00000000, 0x5555555555555555]
)
_off = st.integers(min_value=0, max_value=BUF_SIZE // 8 - 1)


@st.composite
def _instruction(draw):
    kind = draw(st.sampled_from(
        ["alu_imm", "logical_imm", "alu_reg", "alu_shift", "mov", "load",
         "store", "load_pre", "store_post", "load_regoff", "store_regoff",
         "load_byte", "csel"]
    ))
    a, b, c = draw(_reg), draw(_reg), draw(_reg)
    if kind == "alu_imm":
        return f"{draw(_alu_imm)} {a}, {b}, #{draw(_imm)}"
    if kind == "logical_imm":
        op = draw(st.sampled_from(["and", "orr", "eor"]))
        return f"{op} {a}, {b}, #{draw(_logical_imm)}"
    if kind == "alu_reg":
        return f"{draw(_alu)} {a}, {b}, {c}"
    if kind == "alu_shift":
        return f"add {a}, {b}, {c}, lsl #{draw(st.integers(0, 3))}"
    if kind == "mov":
        return f"mov {a}, #{draw(_imm)}"
    offset = draw(_off) * 8
    if kind == "load":
        return f"ldr {a}, [{BUF_REG}, #{offset}]"
    if kind == "store":
        return f"str {a}, [{BUF_REG}, #{offset}]"
    if kind == "load_pre":
        # Writeback stays in bounds: re-centre the pointer afterwards.
        return (f"ldr {a}, [{BUF_REG}, #8]!\n"
                f"    sub {BUF_REG}, {BUF_REG}, #8")
    if kind == "store_post":
        return (f"str {a}, [{BUF_REG}], #16\n"
                f"    sub {BUF_REG}, {BUF_REG}, #16")
    if kind == "load_regoff":
        return (f"and {IDX_REG}, {a}, #{BUF_SIZE // 8 - 1}\n"
                f"    ldr {b}, [{BUF_REG}, {IDX_REG}, lsl #3]")
    if kind == "store_regoff":
        return (f"and {IDX_REG}, {a}, #{BUF_SIZE // 8 - 1}\n"
                f"    str {b}, [{BUF_REG}, {IDX_REG}, lsl #3]")
    if kind == "load_byte":
        return f"ldrb w{a[1:]}, [{BUF_REG}, #{offset}]"
    if kind == "csel":
        cond = draw(st.sampled_from(["eq", "ne", "lt", "ge", "hi"]))
        return (f"cmp {b}, {c}\n"
                f"    csel {a}, {b}, {c}, {cond}")
    raise AssertionError(kind)


programs = st.lists(_instruction(), min_size=1, max_size=24)

SLOT = SandboxLayout.for_slot(3)


def _build_source(body_lines):
    body = "\n".join(f"    {line}" for line in body_lines)
    seeds = "\n".join(
        f"    movz x{i}, #{(i * 0x1234 + 7) & 0xFFFF}" for i in range(8)
    )
    return f"""
.text
.globl _start
_start:
{seeds}
    adrp {BUF_REG}, buffer
    add {BUF_REG}, {BUF_REG}, :lo12:buffer
    mov {IDX_REG}, #0
{body}
    brk #0
.data
.balign 8
buffer:
    .skip {BUF_SIZE}
"""


def _run(program, rewrite_options=None):
    """Run (optionally rewritten) code in the sandbox slot; return state."""
    if rewrite_options is not None:
        program = rewrite_program(program, rewrite_options).program
    image = assemble(program)
    elf = build_elf(image)
    if rewrite_options is not None:
        policy = VerifierPolicy()
        result = verify_elf(elf, policy)
        assert result.ok, result.violations[:3]

    memory = PagedMemory()
    # Load at the slot base, like the runtime loader does.
    from repro.elf import PF_X
    from repro.memory import PERM_RX

    page = memory.page_size
    for seg in elf.segments:
        vaddr = SLOT.base + seg.vaddr
        base = vaddr & ~(page - 1)
        end = (vaddr + max(seg.memsz, 1) + page - 1) & ~(page - 1)
        memory.map_region(base, end - base, PERM_RW)
        memory.load_image(vaddr, seg.data)
        memory.protect(base, end - base,
                       PERM_RX if seg.flags & PF_X else PERM_RW)
    stack_top = SLOT.usable_end
    memory.map_region(stack_top - 0x8000, 0x8000, PERM_RW)

    machine = Machine(memory)
    machine.cpu.pc = SLOT.base + elf.entry
    machine.cpu.sp = stack_top
    machine.cpu.regs[21] = SLOT.base
    try:
        machine.run(fuel=10_000)
    except BrkTrap:
        pass
    else:
        raise AssertionError("program did not halt")

    buffer_addr = SLOT.base + 0x2000_0000  # .data base offset
    return (
        [machine.cpu.regs[i] for i in range(8)],
        memory.read(buffer_addr, BUF_SIZE),
    )


class TestDifferential:
    @given(programs)
    @settings(max_examples=60, deadline=None)
    def test_o1_preserves_semantics(self, body):
        program = parse_assembly(_build_source(body))
        native = _run(program.copy())
        sandboxed = _run(parse_assembly(_build_source(body)), O1)
        assert native == sandboxed

    @given(programs)
    @settings(max_examples=40, deadline=None)
    def test_o2_preserves_semantics(self, body):
        program = parse_assembly(_build_source(body))
        native = _run(program.copy())
        sandboxed = _run(parse_assembly(_build_source(body)), O2)
        assert native == sandboxed

    @given(programs)
    @settings(max_examples=25, deadline=None)
    def test_o0_preserves_semantics(self, body):
        program = parse_assembly(_build_source(body))
        native = _run(program.copy())
        sandboxed = _run(parse_assembly(_build_source(body)), O0)
        assert native == sandboxed

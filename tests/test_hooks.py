"""Multi-subscriber hook registry: semantics and composition.

The registry replaced — and as of this release fully supersedes — the
single-slot ``Machine.run_hook`` / ``Runtime.call_hook`` attributes
(which silently clobbered each other); the key property under test is
that a FaultInjector and a Tracer can observe the same run
simultaneously.
"""

import pytest

from repro.hooks import HookRegistry
from repro.emulator import Machine
from repro.memory import PagedMemory
from repro.obs import RuntimeCallSpan, Tracer
from repro.robustness import FaultInjector
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


EXIT0 = prologue() + "    mov x0, #0\n" + rt_exit()


class TestHookRegistry:
    def test_notify_mode_calls_all_in_order(self):
        seen = []
        hooks = HookRegistry()
        hooks.add(lambda x: seen.append(("a", x)))
        hooks.add(lambda x: seen.append(("b", x)))
        hooks(7)
        assert seen == [("a", 7), ("b", 7)]

    def test_add_is_idempotent(self):
        hooks = HookRegistry()
        fn = lambda: None  # noqa: E731
        hooks.add(fn)
        hooks.add(fn)
        assert len(hooks) == 1

    def test_remove_and_bool(self):
        hooks = HookRegistry()
        fn = hooks.add(lambda: None)
        assert hooks and fn in hooks
        hooks.remove(fn)
        assert not hooks and fn not in hooks
        hooks.remove(fn)  # removing twice is a no-op

    def test_first_result_short_circuits(self):
        calls = []
        hooks = HookRegistry(first_result=True)
        hooks.add(lambda: calls.append("a"))  # returns None
        hooks.add(lambda: 41)
        hooks.add(lambda: calls.append("never"))
        assert hooks() == 41
        assert calls == ["a"]

    def test_first_result_all_none(self):
        hooks = HookRegistry(first_result=True)
        hooks.add(lambda: None)
        assert hooks() is None


class TestAliasRemoval:
    """The single-slot aliases are gone; the registries are the only API."""

    def test_machine_has_no_run_hook_property(self):
        machine = Machine(PagedMemory())
        assert not isinstance(
            getattr(type(machine), "run_hook", None), property
        )
        assert isinstance(machine.run_hooks, HookRegistry)

    def test_runtime_has_no_call_hook_property(self):
        runtime = Runtime()
        assert not isinstance(
            getattr(type(runtime), "call_hook", None), property
        )
        assert isinstance(runtime.call_hooks, HookRegistry)

    def test_run_hooks_registry_is_the_api(self):
        machine = Machine(PagedMemory())
        keeper = machine.run_hooks.add(lambda m, f: None)
        other = machine.run_hooks.add(lambda m, f: None)
        machine.run_hooks.remove(other)
        assert keeper in machine.run_hooks  # unrelated subscribers survive


class TestComposition:
    def test_injector_and_tracer_share_a_run(self):
        runtime = Runtime()
        tracer = Tracer().attach(runtime)
        injector = FaultInjector(runtime, seed=3)
        assert injector is not None
        proc = runtime.spawn(compile_lfi(EXIT0).elf, verify=True)
        assert runtime.run_until_exit(proc) == 0
        # The tracer saw the exit call even with the injector installed.
        spans = [e for e in tracer.events
                 if isinstance(e, RuntimeCallSpan) and e.call == "exit"]
        assert spans
        assert runtime.call_hooks  # injector still registered

    def test_call_hook_injection_traced_as_injected(self):
        runtime = Runtime()
        tracer = Tracer().attach(runtime)
        runtime.call_hooks.add(lambda proc, call: 99)
        proc = runtime.spawn(compile_lfi(EXIT0).elf, verify=True)
        # Every call short-circuits with 99, so exit never runs its
        # handler; the sandbox runs on past the call and eventually
        # faults or exits — either way the spans are marked injected.
        try:
            runtime.run_until_exit(proc, max_instructions=50_000)
        except Exception:
            pass
        spans = [e for e in tracer.events if isinstance(e, RuntimeCallSpan)]
        assert spans and all(s.injected for s in spans)
        assert all(s.result == 99 for s in spans)

"""Emulator semantics tests: ALU, flags, branches, memory, FP, SIMD, traps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.elf import build_elf
from repro.emulator import (
    APPLE_M1,
    BrkTrap,
    Machine,
    MemTrap,
    SvcTrap,
    UnknownInstructionTrap,
)
from repro.memory import PERM_RW, PERM_RX, PagedMemory

from .conftest import load_elf_into, run_asm


def regs_after(body: str, **kwargs):
    """Run the code in ``body`` and return the final CPU state.

    A ``hlt`` is inserted at the end of the code, before any data sections.
    """
    lines = body.splitlines()
    for i, line in enumerate(lines):
        if line.strip().startswith((".data", ".rodata", ".bss")):
            lines.insert(i, "    hlt")
            break
    else:
        lines.append("    hlt")
    machine = run_asm("\n".join(lines) + "\n", **kwargs)
    return machine.cpu


class TestAlu:
    def test_add_sub(self):
        cpu = regs_after("mov x0, #30\n add x1, x0, #12\n sub x2, x1, x0")
        assert cpu.regs[1] == 42
        assert cpu.regs[2] == 12

    def test_w_register_zero_extends(self):
        cpu = regs_after(
            "movn x0, #0\n add w1, w0, #1\n add x2, x0, #0"
        )
        assert cpu.regs[1] == 0  # 32-bit wrap, top zeroed
        assert cpu.regs[2] == 2**64 - 1

    def test_flags_subs(self):
        cpu = regs_after("mov x0, #5\n subs x1, x0, #5")
        assert cpu.z == 1 and cpu.n == 0 and cpu.c == 1

    def test_flags_negative(self):
        cpu = regs_after("mov x0, #3\n subs x1, x0, #5")
        assert cpu.n == 1 and cpu.c == 0

    def test_flags_carry_add(self):
        cpu = regs_after("movn x0, #0\n adds x1, x0, #1")
        assert cpu.c == 1 and cpu.z == 1

    def test_signed_overflow(self):
        cpu = regs_after(
            "movz x0, #0x7fff, lsl #48\n movk x0, #0xffff, lsl #32\n"
            " movk x0, #0xffff, lsl #16\n movk x0, #0xffff\n"
            " adds x1, x0, #1"
        )
        assert cpu.v == 1

    def test_logical_ops(self):
        cpu = regs_after(
            "mov x0, #0xf0\n mov x1, #0xff\n and x2, x0, x1\n"
            " orr x3, x0, #0xf\n eor x4, x0, x1\n bic x5, x1, x0"
        )
        assert cpu.regs[2] == 0xF0
        assert cpu.regs[3] == 0xFF
        assert cpu.regs[4] == 0x0F
        assert cpu.regs[5] == 0x0F

    def test_shifted_operand(self):
        cpu = regs_after("mov x0, #3\n add x1, xzr, x0, lsl #4")
        assert cpu.regs[1] == 48

    def test_extended_operand_guard(self):
        """The LFI guard semantics (§3): top 32 bits replaced by base's."""
        cpu = regs_after(
            "movz x21, #5, lsl #32\n"  # sandbox base: 5 << 32
            " movn x1, #0\n"  # x1 = all ones (malicious pointer)
            " add x18, x21, w1, uxtw"
        )
        assert cpu.regs[18] == (5 << 32) + 0xFFFFFFFF

    def test_shifts(self):
        cpu = regs_after(
            "mov x0, #1\n lsl x1, x0, #10\n mov x2, #1024\n lsr x3, x2, #3\n"
            " movn x4, #0\n asr x5, x4, #17"
        )
        assert cpu.regs[1] == 1024
        assert cpu.regs[3] == 128
        assert cpu.regs[5] == 2**64 - 1

    def test_muldiv(self):
        cpu = regs_after(
            "mov x0, #6\n mov x1, #7\n mul x2, x0, x1\n"
            " mov x3, #100\n mov x4, #7\n udiv x5, x3, x4\n"
            " movn x6, #6\n sdiv x7, x6, x4"  # -7 / 7 = -1
        )
        assert cpu.regs[2] == 42
        assert cpu.regs[5] == 14
        assert cpu.regs[7] == 2**64 - 1

    def test_division_by_zero_is_zero(self):
        cpu = regs_after("mov x0, #5\n mov x1, #0\n udiv x2, x0, x1")
        assert cpu.regs[2] == 0

    def test_madd_msub(self):
        cpu = regs_after(
            "mov x0, #3\n mov x1, #4\n mov x2, #10\n"
            " madd x3, x0, x1, x2\n msub x4, x0, x1, x2"
        )
        assert cpu.regs[3] == 22
        assert cpu.regs[4] == (10 - 12) % 2**64

    def test_csel_cset(self):
        cpu = regs_after(
            "mov x0, #1\n cmp x0, #1\n cset x1, eq\n cset x2, ne\n"
            " mov x3, #11\n mov x4, #22\n csel x5, x3, x4, eq"
        )
        assert cpu.regs[1] == 1
        assert cpu.regs[2] == 0
        assert cpu.regs[5] == 11

    def test_clz(self):
        cpu = regs_after("mov x0, #1\n clz x1, x0\n clz x2, xzr")
        assert cpu.regs[1] == 63
        assert cpu.regs[2] == 64

    def test_bitfield_extract(self):
        cpu = regs_after("movz x0, #0xabcd\n ubfx x1, x0, #4, #8")
        assert cpu.regs[1] == 0xBC

    def test_sxtw(self):
        cpu = regs_after("movn w0, #0\n sxtw x1, w0")
        assert cpu.regs[1] == 2**64 - 1

    def test_movk_preserves(self):
        cpu = regs_after("movz x0, #1, lsl #48\n movk x0, #0xbeef")
        assert cpu.regs[0] == (1 << 48) | 0xBEEF


class TestBranches:
    def test_loop_sum(self):
        cpu = regs_after(
            "mov x0, #0\n mov x1, #0\n"
            "loop: add x0, x0, x1\n add x1, x1, #1\n cmp x1, #100\n"
            " b.ne loop"
        )
        assert cpu.regs[0] == 4950

    def test_bl_sets_lr_and_ret(self):
        cpu = regs_after(
            " bl func\n mov x1, #1\n b done\n"
            "func: mov x0, #9\n ret\n"
            "done:"
        )
        assert cpu.regs[0] == 9 and cpu.regs[1] == 1

    def test_blr_indirect(self):
        cpu = regs_after(
            " adr x2, func\n blr x2\n b done\n"
            "func: mov x0, #5\n ret\n"
            "done:"
        )
        assert cpu.regs[0] == 5

    def test_cbz_cbnz(self):
        cpu = regs_after(
            "mov x0, #0\n cbz x0, yes\n mov x1, #99\n"
            "yes: mov x2, #1\n cbnz x2, done\n mov x1, #98\n"
            "done:"
        )
        assert cpu.regs[1] == 0 and cpu.regs[2] == 1

    def test_tbz_tbnz(self):
        cpu = regs_after(
            "mov x0, #8\n tbnz x0, #3, yes\n mov x1, #1\n"
            "yes: tbz x0, #0, done\n mov x1, #2\n"
            "done:"
        )
        assert cpu.regs[1] == 0


class TestMemory:
    def test_store_load(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " mov x1, #1234\n str x1, [x0]\n ldr x2, [x0]\n"
            " strb w1, [x0, #8]\n ldrb w3, [x0, #8]\n"
            ".data\n.balign 8\nbuf: .skip 64"
        )
        assert cpu.regs[2] == 1234
        assert cpu.regs[3] == 1234 & 0xFF

    def test_signed_loads(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " movn w1, #0\n strb w1, [x0]\n"
            " ldrsb x2, [x0]\n ldrb w3, [x0]\n"
            ".data\nbuf: .skip 8"
        )
        assert cpu.regs[2] == 2**64 - 1
        assert cpu.regs[3] == 0xFF

    def test_pre_post_index(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " mov x1, #7\n str x1, [x0, #8]!\n"  # x0 += 8, store at new x0
            " ldr x2, [x0], #8\n"  # load then x0 += 8
            ".data\n.balign 8\nbuf: .skip 64"
        )
        assert cpu.regs[2] == 7

    def test_pair_ops_and_stack(self):
        cpu = regs_after(
            "mov x0, #1\n mov x1, #2\n"
            " stp x0, x1, [sp, #-16]!\n"
            " ldp x2, x3, [sp], #16"
        )
        assert cpu.regs[2] == 1 and cpu.regs[3] == 2

    def test_register_offset_addressing(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " mov x1, #3\n mov x2, #55\n"
            " str x2, [x0, x1, lsl #3]\n"
            " ldr x3, [x0, x1, lsl #3]\n"
            " mov w4, #24\n ldr x5, [x0, w4, uxtw]\n"
            ".data\n.balign 8\nbuf: .skip 64"
        )
        assert cpu.regs[3] == 55
        assert cpu.regs[5] == 55  # same address via uxtw offset

    def test_exclusive_success(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " ldxr x1, [x0]\n add x1, x1, #1\n stxr w2, x1, [x0]\n"
            " ldr x3, [x0]\n"
            ".data\n.balign 8\nbuf: .quad 41"
        )
        assert cpu.regs[2] == 0  # success
        assert cpu.regs[3] == 42

    def test_exclusive_fails_without_monitor(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " mov x1, #9\n stxr w2, x1, [x0]\n"
            ".data\n.balign 8\nbuf: .quad 0"
        )
        assert cpu.regs[2] == 1  # no preceding ldxr


class TestFloat:
    def test_arith(self):
        cpu = regs_after(
            "fmov d0, #2.0\n fmov d1, #8.0\n"
            " fadd d2, d0, d1\n fsub d3, d1, d0\n fmul d4, d0, d1\n"
            " fdiv d5, d1, d0\n fcvtzs x0, d2\n fcvtzs x1, d3\n"
            " fcvtzs x2, d4\n fcvtzs x3, d5"
        )
        assert cpu.regs[0] == 10 and cpu.regs[1] == 6
        assert cpu.regs[2] == 16 and cpu.regs[3] == 4

    def test_cvt_roundtrip(self):
        cpu = regs_after("movn x0, #41\n scvtf d0, x0\n fcvtzs x1, d0")
        assert cpu.regs[1] == (-42) % 2**64

    def test_fcmp_branches(self):
        cpu = regs_after(
            "fmov d0, #1.0\n fmov d1, #2.0\n fcmp d0, d1\n"
            " cset x0, lt\n cset x1, gt"
        )
        assert cpu.regs[0] == 1 and cpu.regs[1] == 0

    def test_fmadd(self):
        cpu = regs_after(
            "fmov d0, #3.0\n fmov d1, #4.0\n fmov d2, #5.0\n"
            " fmadd d3, d0, d1, d2\n fcvtzs x0, d3"
        )
        assert cpu.regs[0] == 17

    def test_fsqrt(self):
        cpu = regs_after("fmov d0, #16.0\n fsqrt d1, d0\n fcvtzs x0, d1")
        assert cpu.regs[0] == 4

    def test_fmov_general(self):
        cpu = regs_after("fmov d0, #1.0\n fmov x0, d0")
        assert cpu.regs[0] == 0x3FF0000000000000

    def test_fcvt_precision(self):
        cpu = regs_after("fmov d0, #1.5\n fcvt s1, d0\n fmov w0, s1")
        assert cpu.regs[0] == 0x3FC00000


class TestSimd:
    def test_vector_add(self):
        cpu = regs_after(
            "mov w0, #3\n dup v0.4s, w0\n mov w1, #4\n dup v1.4s, w1\n"
            " add v2.4s, v0.4s, v1.4s\n fmov w2, s2"
        )
        assert cpu.regs[2] == 7
        assert cpu.vregs[2] == sum(7 << (32 * i) for i in range(4))

    def test_movi_zero(self):
        cpu = regs_after("movi v0.16b, #0\n movi v1.16b, #255")
        assert cpu.vregs[0] == 0
        assert cpu.vregs[1] == (1 << 128) - 1

    def test_vector_fadd(self):
        cpu = regs_after(
            "fmov s0, #1.5\n dup v1.4s, wzr\n"
            " fmov w2, s0\n dup v3.4s, w2\n"
            " fadd v4.4s, v3.4s, v3.4s\n fmov w5, s4\n fmov s6, w5\n"
            " fcvt d7, s6\n fcvtzs x0, d7"
        )
        assert cpu.regs[0] == 3

    def test_q_load_store(self):
        cpu = regs_after(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " movi v0.16b, #9\n str q0, [x0]\n ldr q1, [x0]\n"
            " fmov w1, s1\n"
            ".data\n.balign 16\nbuf: .skip 32"
        )
        assert cpu.regs[1] == 0x09090909


class TestTraps:
    def run_trap(self, body, trap_type):
        image = assemble(parse_assembly(body))
        elf = build_elf(image)
        memory = PagedMemory()
        load_elf_into(memory, elf)
        machine = Machine(memory)
        machine.cpu.pc = elf.entry
        with pytest.raises(trap_type) as exc:
            machine.run(fuel=1000)
        return exc.value, machine

    def test_svc(self):
        trap, _ = self.run_trap("mov x8, #93\n svc #0\n", SvcTrap)
        assert trap.imm == 0

    def test_brk(self):
        trap, _ = self.run_trap("brk #42\n", BrkTrap)
        assert trap.imm == 42

    def test_unmapped_load(self):
        trap, _ = self.run_trap(
            "movz x0, #0x7fff, lsl #16\n ldr x1, [x0]\n", MemTrap
        )
        assert trap.fault.kind == "unmapped"

    def test_store_to_text_faults(self):
        trap, _ = self.run_trap(
            "_start:\n adr x0, _start\n str x0, [x0]\n nop\n", MemTrap
        )
        assert trap.fault.kind == "perm"

    def test_execute_data_faults(self):
        trap, _ = self.run_trap(
            "adrp x0, buf\n br x0\n.data\nbuf: .quad 0\n", MemTrap
        )
        assert trap.fault.access == "execute"

    def test_undecodable_word(self):
        trap, _ = self.run_trap(
            ".text\n_start:\n .word 0xd51b4200\n", UnknownInstructionTrap
        )
        assert trap.word == 0xD51B4200


class TestCycleModel:
    def test_cycles_monotonic_with_work(self):
        short = run_asm("mov x0, #0\n hlt\n", model=APPLE_M1)
        long = run_asm(
            "mov x0, #0\nloop: add x0, x0, #1\n cmp x0, #200\n b.ne loop\n hlt\n",
            model=APPLE_M1,
        )
        assert long.cycles > short.cycles

    def test_guard_add_costs_more_than_plain_add(self):
        """The 2-cycle extended add (§4) must cost more in a dependent chain."""
        plain = run_asm(
            "mov x1, #0\nmov x0, #0\n"
            "loop: add x1, x1, x1\n add x1, x1, #1\n add x0, x0, #1\n"
            " cmp x0, #500\n b.ne loop\n hlt\n",
            model=APPLE_M1,
        )
        guarded = run_asm(
            "mov x1, #0\nmov x0, #0\n"
            "loop: add x1, x21, w1, uxtw\n add x1, x1, #1\n add x0, x0, #1\n"
            " cmp x0, #500\n b.ne loop\n hlt\n",
            model=APPLE_M1,
        )
        assert guarded.cycles > plain.cycles

    def test_dependent_loads_slower_than_independent(self):
        setup = (
            "adrp x0, buf\n add x0, x0, :lo12:buf\n"
            " str x0, [x0]\n mov x2, #0\n"
        )
        dependent = run_asm(
            setup + "loop: ldr x0, [x0]\n add x2, x2, #1\n cmp x2, #300\n"
            " b.ne loop\n hlt\n.data\n.balign 8\nbuf: .skip 16\n",
            model=APPLE_M1,
        )
        independent = run_asm(
            setup + "mov x3, x0\nloop: ldr x1, [x3]\n add x2, x2, #1\n"
            " cmp x2, #300\n b.ne loop\n hlt\n.data\n.balign 8\nbuf: .skip 16\n",
            model=APPLE_M1,
        )
        assert dependent.cycles > independent.cycles

    def test_tlb_misses_counted(self):
        machine = run_asm(
            "adrp x0, buf\n add x0, x0, :lo12:buf\n mov x1, #0\n"
            "loop: ldr x2, [x0]\n add x1, x1, #1\n cmp x1, #10\n b.ne loop\n"
            " hlt\n.data\n.balign 8\nbuf: .skip 16\n",
            model=APPLE_M1,
        )
        assert machine.tlb.accesses >= 10
        assert machine.tlb.hits > 0


class TestPropertyAlu:
    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=4095))
    @settings(max_examples=30, deadline=None)
    def test_add_immediate_matches_python(self, a, imm):
        lo = a & 0xFFFF
        hi = (a >> 16) & 0xFFFF
        hi2 = (a >> 32) & 0xFFFF
        hi3 = (a >> 48) & 0xFFFF
        cpu = regs_after(
            f"movz x0, #{lo}\n movk x0, #{hi}, lsl #16\n"
            f" movk x0, #{hi2}, lsl #32\n movk x0, #{hi3}, lsl #48\n"
            f" add x1, x0, #{imm}"
        )
        assert cpu.regs[1] == (a + imm) % 2**64


class TestCodeInvalidation:
    """Patched text must never execute from stale superblock translations."""

    SOURCE = """
        .globl _start
    _start:
        mov x0, #0
        mov x1, #10
    loop:
        add x0, x0, #1
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    """

    def _fresh_machine(self):
        from repro.emulator import HltTrap

        elf = build_elf(assemble(parse_assembly(self.SOURCE)))
        memory = PagedMemory()
        load_elf_into(memory, elf)
        machine = Machine(memory, engine="superblock")
        machine.cpu.pc = elf.entry
        return machine, elf, HltTrap

    def test_permission_cycle_patch_retranslates(self):
        """protect(RW) -> patch -> protect(RX): the permission changes
        invalidate overlapping blocks, so the patched word executes."""
        machine, elf, HltTrap = self._fresh_machine()
        with pytest.raises(HltTrap):
            machine.run(fuel=10_000)
        assert machine.cpu.regs[0] == 10
        assert machine._sb.cached_blocks > 0

        # Patch `add x0, x0, #1` into `add x0, x0, #2` (imm field +1).
        memory = machine.memory
        patch_pc = elf.entry + 8
        page = patch_pc & ~(memory.page_size - 1)
        memory.protect(page, memory.page_size, PERM_RW)
        word = int.from_bytes(memory.read(patch_pc, 4), "little")
        patched = (word & ~(0xFFF << 10)) | (2 << 10)
        memory.write(patch_pc, patched.to_bytes(4, "little"))
        memory.protect(page, memory.page_size, PERM_RX)
        machine.invalidate_code(patch_pc, 4)  # stepping decode cache

        machine.cpu.pc = elf.entry
        with pytest.raises(HltTrap):
            machine.run(fuel=10_000)
        assert machine.cpu.regs[0] == 20  # the patch took effect

    def test_unmap_drops_cached_blocks(self):
        machine, elf, HltTrap = self._fresh_machine()
        with pytest.raises(HltTrap):
            machine.run(fuel=10_000)
        assert machine._sb.cached_blocks > 0
        memory = machine.memory
        page = elf.entry & ~(memory.page_size - 1)
        memory.unmap(page, memory.page_size)
        assert all(
            not (page <= start < page + memory.page_size)
            for start in machine._sb._blocks
        )

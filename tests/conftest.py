"""Shared test helpers: assemble-and-run for raw (non-sandboxed) programs."""

from __future__ import annotations

import pytest

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.elf import PF_X, build_elf
from repro.emulator import HltTrap, Machine
from repro.memory import PERM_RW, PERM_RX, PagedMemory


def load_elf_into(memory: PagedMemory, elf) -> None:
    """Map an ELF image into memory with its segment permissions."""
    page = memory.page_size
    for seg in elf.segments:
        base = seg.vaddr & ~(page - 1)
        end = (seg.vaddr + max(seg.memsz, 1) + page - 1) & ~(page - 1)
        memory.map_region(base, end - base, PERM_RW)
        memory.load_image(seg.vaddr, seg.data)
        memory.protect(base, end - base,
                       PERM_RX if seg.flags & PF_X else PERM_RW)


def run_asm(source: str, model=None, max_steps: int = 1_000_000,
            stack_size: int = 0x10000) -> Machine:
    """Assemble and run a bare program until it executes ``hlt``."""
    image = assemble(parse_assembly(source))
    elf = build_elf(image)
    memory = PagedMemory()
    load_elf_into(memory, elf)
    stack_top = 0x7000_0000
    memory.map_region(stack_top - stack_size, stack_size, PERM_RW)
    machine = Machine(memory, model=model)
    machine.cpu.pc = elf.entry
    machine.cpu.sp = stack_top
    try:
        machine.run(fuel=max_steps)
    except HltTrap:
        return machine
    raise AssertionError("program did not halt")


@pytest.fixture
def asm_runner():
    return run_asm

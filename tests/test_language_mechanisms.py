"""Language-mechanism support (paper abstract/§9: "broad software support,
including for language mechanisms like exceptions and ISA features such
as SIMD").

LFI does not enforce fine-grained CFI — "jumping anywhere in the sandbox
is legal" (§7.1) — which is exactly what makes setjmp/longjmp and
exception unwinding work: the unwinder restores a saved (sp, pc) pair and
jumps, and the guards only require that both land in the sandbox.
"""

import pytest

from repro.core import VerifierPolicy, verify_elf
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


class TestSetjmpLongjmp:
    PROGRAM = prologue() + """
    // setjmp: save sp and a return target into jmpbuf
    adrp x19, jmpbuf
    add x19, x19, :lo12:jmpbuf
    mov x1, sp
    str x1, [x19]            // jmpbuf.sp
    adr x2, after_setjmp
    str x2, [x19, #8]        // jmpbuf.pc
    mov x20, #0              // "returned 0 from setjmp"
    b after_setjmp

do_longjmp:
    // longjmp: restore sp, then jump through the saved pc
    ldr x1, [x19]
    mov sp, x1               // the rewriter emits the sp guard pair
    mov x20, #1              // "returned 1 from setjmp"
    ldr x3, [x19, #8]
    br x3                    // indirect jump: guarded by the rewriter

after_setjmp:
    cbnz x20, unwound
    // First pass: descend into a "deep call" and long-jump out.
    sub sp, sp, #64
    str x19, [sp]
    b do_longjmp

unwound:
    // We got here twice; the second time via longjmp with sp restored.
    mov x0, #55
""" + rt_exit() + """
.data
.balign 8
jmpbuf: .skip 16
"""

    def test_longjmp_roundtrip(self):
        out = compile_lfi(self.PROGRAM)
        assert verify_elf(out.elf).ok
        runtime = Runtime()
        proc = runtime.spawn(out.elf)
        assert runtime.run_until_exit(proc) == 55
        assert not runtime.faults

    def test_longjmp_restores_stack_pointer(self):
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(self.PROGRAM).elf)
        initial_sp = proc.registers["sp"]
        runtime.run_until_exit(proc)
        # After longjmp the final sp equals the setjmp-time sp.
        assert proc.registers["sp"] == initial_sp


class TestExceptionStyleUnwind:
    """A two-frame 'throw' across a call boundary: the callee raises by
    jumping to a landing pad recorded by the caller (how libunwind-based
    C++ exceptions resolve under LFI)."""

    PROGRAM = prologue() + """
    adrp x19, pad
    add x19, x19, :lo12:pad
    adr x1, landing_pad
    str x1, [x19]            // register the landing pad
    mov x2, sp
    str x2, [x19, #8]        // and the frame's sp
    bl may_throw
    mov x0, #1               // not reached: the callee always throws
""" + rt_exit() + """

may_throw:
    stp x29, x30, [sp, #-32]!
    mov x29, sp
    sub sp, sp, #16          // callee frame
    // "throw": restore the handler frame and jump to the pad
    ldr x2, [x19, #8]
    mov x3, x2
    mov sp, x3
    ldr x4, [x19]
    br x4

landing_pad:
    mov x0, #99              // caught
""" + rt_exit() + """
.data
.balign 8
pad: .skip 16
"""

    def test_throw_and_catch(self):
        out = compile_lfi(self.PROGRAM)
        assert verify_elf(out.elf).ok
        runtime = Runtime()
        proc = runtime.spawn(out.elf)
        assert runtime.run_until_exit(proc) == 99
        assert not runtime.faults


class TestSimdSupport:
    """§2/§9: SIMD works inside sandboxes because vector loads/stores use
    the standard addressing modes and integer registers."""

    PROGRAM = prologue() + """
    adrp x1, vecs
    add x1, x1, :lo12:vecs
    mov w2, #5
    dup v0.4s, w2
    mov w3, #7
    dup v1.4s, w3
    str q0, [x1]
    str q1, [x1, #16]
    ldr q2, [x1]
    ldr q3, [x1, #16]
    mul v4.4s, v2.4s, v3.4s
    str q4, [x1, #32]
    ldr w0, [x1, #32]        // 35
""" + rt_exit() + """
.data
.balign 16
vecs: .skip 64
"""

    def test_simd_in_sandbox(self):
        out = compile_lfi(self.PROGRAM)
        assert verify_elf(out.elf).ok
        runtime = Runtime()
        proc = runtime.spawn(out.elf)
        assert runtime.run_until_exit(proc) == 35

    def test_vector_memory_ops_are_guarded(self):
        text = "\n".join(
            str(i) for i in compile_lfi(self.PROGRAM).rewrite.program
            .instructions()
        )
        # q-register accesses went through guarded/hoisted forms: no
        # access uses the raw x1 base anymore.
        assert "[x1]" not in text and "[x1," not in text
        assert "[x23" in text or "[x21, w1, uxtw]" in text or "[x18" in text

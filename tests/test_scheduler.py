"""Unit tests for the scheduler, process state, and runtime-call table."""

import struct

import pytest

from repro.memory import PAGE_SIZE, SandboxLayout
from repro.runtime import (
    Process,
    ProcessState,
    RuntimeCall,
    Scheduler,
    StdStream,
    build_table_page,
    entry_address,
    table_offset,
)
from repro.runtime.table import (
    HOST_ENTRY_BASE,
    RUNTIME_REGION_BASE,
    UNMAPPED_ENTRY,
    call_for_entry,
)


def make_proc(pid):
    return Process(
        pid=pid,
        layout=SandboxLayout.for_slot(pid),
        registers={"regs": [0] * 31, "sp": 0, "pc": 0, "nzcv": 0,
                   "vregs": [0] * 32},
    )


class TestScheduler:
    def test_fifo_order(self):
        sched = Scheduler()
        a, b, c = make_proc(1), make_proc(2), make_proc(3)
        for p in (a, b, c):
            sched.add(p)
        assert sched.pick() is a
        assert sched.pick() is b
        assert sched.pick() is c
        assert sched.pick() is None

    def test_requeue_goes_to_back(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        first = sched.pick()
        sched.requeue(first)
        assert sched.pick() is b
        assert sched.pick() is a

    def test_add_front(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add_front(b)
        assert sched.pick() is b

    def test_zombies_skipped(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        a.state = ProcessState.ZOMBIE
        assert sched.pick() is b

    def test_blocked_skipped(self):
        sched = Scheduler()
        a = make_proc(1)
        sched.add(a)
        a.state = ProcessState.BLOCKED
        assert sched.pick() is None
        assert sched.empty

    def test_pick_marks_running(self):
        sched = Scheduler()
        a = make_proc(1)
        sched.add(a)
        assert a.state == ProcessState.READY
        sched.pick()
        assert a.state == ProcessState.RUNNING

    def test_len_counts_ready_only(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        b.state = ProcessState.BLOCKED
        assert len(sched) == 1


class TestEpochFairness:
    """The two-queue round discipline (no starvation via add_front)."""

    def test_spent_turn_add_front_waits_for_next_round(self):
        """A process that already ran this round cannot cut the line: its
        add_front (the post-call re-add) lands behind the processes that
        have not had their turn yet."""
        sched = Scheduler()
        a, b, c = make_proc(1), make_proc(2), make_proc(3)
        for p in (a, b, c):
            sched.add(p)
        assert sched.pick() is a
        sched.add_front(a)  # a's turn is spent: no line-cutting
        assert sched.pick() is b
        assert sched.pick() is c
        assert sched.pick() is a  # next round

    def test_unspent_turn_add_front_runs_next(self):
        """The direct-invoke boost: a target that has not run this round
        jumps to the very front (yield_to IPC fast path)."""
        sched = Scheduler()
        a, b, c = make_proc(1), make_proc(2), make_proc(3)
        for p in (a, b, c):
            sched.add(p)
        assert sched.pick() is a
        sched.requeue(a)
        sched.add_front(c)  # c's turn is unspent: runs next
        assert sched.pick() is c

    def test_call_heavy_process_cannot_starve_neighbour(self):
        """The seed's FIFO allowed: pick a, add_front(a), pick a, ... with
        b never scheduled.  The epoch scheduler bounds a to one pick per
        round."""
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        picks = []
        for _ in range(6):
            p = sched.pick()
            picks.append(p.pid)
            sched.add_front(p)  # runtime's post-call fast-path re-add
        assert picks == [1, 2, 1, 2, 1, 2]

    def test_ping_pong_yield_to_alternates(self):
        """yield_to: requeue(self) + add_front(target) alternates fairly."""
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        order = []
        current = sched.pick()
        for _ in range(6):
            order.append(current.pid)
            target = b if current is a else a
            sched.requeue(current)
            sched.add_front(target)
            current = sched.pick()
        assert order == [1, 2, 1, 2, 1, 2]

    def test_duplicate_add_keeps_single_entry(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        sched.add(a)  # no duplicate entry
        assert sched.pick() is a
        assert sched.pick() is b
        assert sched.pick() is None

    def test_turn_spent_and_epoch_introspection(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        assert not sched.turn_spent(a)
        assert sched.pick() is a
        assert sched.turn_spent(a)
        epoch = sched.epoch
        sched.requeue(a)
        assert sched.pick() is b
        assert sched.pick() is a  # round rolled over
        assert sched.epoch == epoch + 1

    def test_forget_clears_bookkeeping(self):
        sched = Scheduler()
        a = make_proc(1)
        sched.add(a)
        sched.pick()
        sched.forget(a)
        assert not sched.turn_spent(a)


@pytest.mark.slow
class TestFairnessProperty:
    """Randomized fairness properties (hypothesis, excluded from tier-1).

    Under random interleavings of ``add``/``add_front``/``requeue``/
    ``pick`` (as the runtime issues them):

    * **no starvation** — from the moment a process enters the queue,
      every *other* process is picked at most once before it (at most
      twice when a direct-invoke boost intervenes); a process whose round
      turn is unspent waits at most ``len(queue)`` picks;
    * **boost** — an ``add_front`` process with its round turn unspent is
      picked next.
    """

    def _strategies(self):
        from hypothesis import strategies as st

        return st

    def _run_trace(self, data):
        from hypothesis import strategies as st

        n = data.draw(st.integers(2, 6), label="procs")
        procs = [make_proc(i + 1) for i in range(n)]
        sched = Scheduler()
        queued = set()
        parked = list(procs)  # alive, not queued, not just-picked
        last = None  # most recently picked (the runtime's "current")

        # Per-waiting-proc trackers, reset when the proc is picked.
        waits = {}  # proc -> {"others": {pid: count}, "boosted": bool,
        #            "picks": int, "len_at_enqueue": int, "unspent": bool}

        def start_wait(proc):
            waits[proc.pid] = {
                "others": {},
                "boosted": False,
                "picks": 0,
                "len_at_enqueue": len(sched),
                "unspent": not sched.turn_spent(proc),
            }

        def do_pick(expect=None):
            picked = sched.pick()
            if picked is None:
                return None
            if expect is not None:
                assert picked is expect, (
                    f"boosted unspent proc {expect.pid} must run next, "
                    f"got {picked.pid}"
                )
            queued.discard(picked.pid)
            wait = waits.pop(picked.pid)
            cap = 2 if wait["boosted"] else 1
            for pid, count in wait["others"].items():
                assert count <= cap, (
                    f"proc {pid} picked {count}x while {picked.pid} "
                    f"waited (boosted={wait['boosted']})"
                )
            if wait["unspent"] and not wait["boosted"]:
                assert wait["picks"] <= max(wait["len_at_enqueue"], 1), (
                    f"proc {picked.pid} starved for {wait['picks']} picks "
                    f"with len(queue)={wait['len_at_enqueue']} at enqueue"
                )
            for other in waits.values():
                other["picks"] += 1
                other["others"][picked.pid] = \
                    other["others"].get(picked.pid, 0) + 1
            return picked

        steps = data.draw(st.integers(10, 120), label="steps")
        for _ in range(steps):
            choices = ["pick"]
            if parked:
                choices.append("add")
                choices.append("add_front_parked")
            if last is not None and last.pid not in queued:
                choices.append("requeue_last")
                choices.append("add_front_last")
            if queued:
                choices.append("boost_queued")
            op = data.draw(st.sampled_from(sorted(choices)), label="op")

            if op == "add":
                proc = parked.pop(data.draw(
                    st.integers(0, len(parked) - 1), label="which"))
                sched.add(proc)
                queued.add(proc.pid)
                start_wait(proc)
            elif op == "requeue_last":
                sched.requeue(last)
                queued.add(last.pid)
                start_wait(last)
                last = None
            elif op in ("add_front_last", "add_front_parked",
                        "boost_queued"):
                if op == "add_front_last":
                    proc = last
                    last = None
                elif op == "add_front_parked":
                    proc = parked.pop(data.draw(
                        st.integers(0, len(parked) - 1), label="which"))
                else:
                    pid = data.draw(st.sampled_from(sorted(queued)),
                                    label="which")
                    proc = procs[pid - 1]
                unspent = not sched.turn_spent(proc)
                sched.add_front(proc)
                queued.add(proc.pid)
                if proc.pid not in waits:
                    start_wait(proc)
                if unspent:
                    # Boost honored: every other waiter saw a line-cut.
                    for pid, other in waits.items():
                        if pid != proc.pid:
                            other["boosted"] = True
                    picked = do_pick(expect=proc)
                    if picked is not None:
                        last = picked
            else:  # pick
                picked = do_pick()
                if picked is not None:
                    last = picked

        # Drain: every still-queued process must be reachable within
        # one pick per remaining ready process (no starvation at rest).
        remaining = len(sched)
        for _ in range(remaining):
            if do_pick() is None:
                break
        assert sched.pick() is None

    def test_fairness_under_random_interleavings(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.data())
        @settings(max_examples=300, deadline=None)
        def run(data):
            self._run_trace(data)

        run()


class TestProcess:
    def test_next_fd_fills_gaps(self):
        proc = make_proc(1)
        proc.fds = {0: StdStream(True), 1: StdStream(), 3: StdStream()}
        assert proc.next_fd() == 2

    def test_pointer_rebases_like_a_guard(self):
        proc = make_proc(5)
        stale = (9 << 32) | 0x1234
        assert proc.pointer(stale) == proc.layout.base + 0x1234

    def test_std_stream(self):
        stream = StdStream()
        stream.write(b"hello ")
        stream.write(b"world")
        assert stream.text() == "hello world"
        stdin = StdStream(readable=True)
        stdin.buffer.extend(b"input")
        assert stdin.read(3) == b"inp"
        assert stdin.read(10) == b"ut"


class TestRuntimeCallTable:
    def test_entry_addresses_outside_all_sandboxes(self):
        """Entries point into the dedicated runtime region (§3, §4.4)."""
        for call in RuntimeCall.ALL:
            addr = entry_address(call)
            assert addr >= RUNTIME_REGION_BASE

    def test_roundtrip(self):
        for call in RuntimeCall.ALL:
            assert call_for_entry(entry_address(call)) == call

    def test_table_page_layout(self):
        page = build_table_page()
        assert len(page) == PAGE_SIZE
        for call in RuntimeCall.ALL:
            slot = struct.unpack_from("<Q", page, table_offset(call))[0]
            assert slot == entry_address(call)

    def test_unused_entries_point_to_unmapped_page(self):
        """§4.4: unused entries trap when called."""
        page = build_table_page()
        last = struct.unpack_from("<Q", page, PAGE_SIZE - 8)[0]
        assert last == UNMAPPED_ENTRY

    def test_table_has_no_sandbox_specific_secrets(self):
        """§4.4: the table is readable by the neighbouring sandbox, so it
        must be identical for every sandbox (and it is: one shared page
        image)."""
        assert build_table_page() == build_table_page()

    def test_call_names_complete(self):
        assert set(RuntimeCall.NAMES) == set(RuntimeCall.ALL)

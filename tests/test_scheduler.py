"""Unit tests for the scheduler, process state, and runtime-call table."""

import struct

import pytest

from repro.memory import PAGE_SIZE, SandboxLayout
from repro.runtime import (
    Process,
    ProcessState,
    RuntimeCall,
    Scheduler,
    StdStream,
    build_table_page,
    entry_address,
    table_offset,
)
from repro.runtime.table import (
    HOST_ENTRY_BASE,
    RUNTIME_REGION_BASE,
    UNMAPPED_ENTRY,
    call_for_entry,
)


def make_proc(pid):
    return Process(
        pid=pid,
        layout=SandboxLayout.for_slot(pid),
        registers={"regs": [0] * 31, "sp": 0, "pc": 0, "nzcv": 0,
                   "vregs": [0] * 32},
    )


class TestScheduler:
    def test_fifo_order(self):
        sched = Scheduler()
        a, b, c = make_proc(1), make_proc(2), make_proc(3)
        for p in (a, b, c):
            sched.add(p)
        assert sched.pick() is a
        assert sched.pick() is b
        assert sched.pick() is c
        assert sched.pick() is None

    def test_requeue_goes_to_back(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        first = sched.pick()
        sched.requeue(first)
        assert sched.pick() is b
        assert sched.pick() is a

    def test_add_front(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add_front(b)
        assert sched.pick() is b

    def test_zombies_skipped(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        a.state = ProcessState.ZOMBIE
        assert sched.pick() is b

    def test_blocked_skipped(self):
        sched = Scheduler()
        a = make_proc(1)
        sched.add(a)
        a.state = ProcessState.BLOCKED
        assert sched.pick() is None
        assert sched.empty

    def test_pick_marks_running(self):
        sched = Scheduler()
        a = make_proc(1)
        sched.add(a)
        assert a.state == ProcessState.READY
        sched.pick()
        assert a.state == ProcessState.RUNNING

    def test_len_counts_ready_only(self):
        sched = Scheduler()
        a, b = make_proc(1), make_proc(2)
        sched.add(a)
        sched.add(b)
        b.state = ProcessState.BLOCKED
        assert len(sched) == 1


class TestProcess:
    def test_next_fd_fills_gaps(self):
        proc = make_proc(1)
        proc.fds = {0: StdStream(True), 1: StdStream(), 3: StdStream()}
        assert proc.next_fd() == 2

    def test_pointer_rebases_like_a_guard(self):
        proc = make_proc(5)
        stale = (9 << 32) | 0x1234
        assert proc.pointer(stale) == proc.layout.base + 0x1234

    def test_std_stream(self):
        stream = StdStream()
        stream.write(b"hello ")
        stream.write(b"world")
        assert stream.text() == "hello world"
        stdin = StdStream(readable=True)
        stdin.buffer.extend(b"input")
        assert stdin.read(3) == b"inp"
        assert stdin.read(10) == b"ut"


class TestRuntimeCallTable:
    def test_entry_addresses_outside_all_sandboxes(self):
        """Entries point into the dedicated runtime region (§3, §4.4)."""
        for call in RuntimeCall.ALL:
            addr = entry_address(call)
            assert addr >= RUNTIME_REGION_BASE

    def test_roundtrip(self):
        for call in RuntimeCall.ALL:
            assert call_for_entry(entry_address(call)) == call

    def test_table_page_layout(self):
        page = build_table_page()
        assert len(page) == PAGE_SIZE
        for call in RuntimeCall.ALL:
            slot = struct.unpack_from("<Q", page, table_offset(call))[0]
            assert slot == entry_address(call)

    def test_unused_entries_point_to_unmapped_page(self):
        """§4.4: unused entries trap when called."""
        page = build_table_page()
        last = struct.unpack_from("<Q", page, PAGE_SIZE - 8)[0]
        assert last == UNMAPPED_ENTRY

    def test_table_has_no_sandbox_specific_secrets(self):
        """§4.4: the table is readable by the neighbouring sandbox, so it
        must be identical for every sandbox (and it is: one shared page
        image)."""
        assert build_table_page() == build_table_page()

    def test_call_names_complete(self):
        assert set(RuntimeCall.NAMES) == set(RuntimeCall.ALL)

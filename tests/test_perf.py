"""Tests for the measurement harness and report rendering."""

import math

import pytest

from repro.core import O0, O2
from repro.emulator import APPLE_M1
from repro.perf import (
    format_bars,
    format_geomean_table,
    format_overhead_table,
    geomean,
    kvm_variant,
    lfi_variant,
    measure_benchmark,
    native_variant,
    run_variant,
    wasm_variant,
)
from repro.baselines import WASM_ENGINES
from repro.workloads import arena_bss_size, build_benchmark

SMALL = 4000
NAME = "541.leela"


@pytest.fixture(scope="module")
def leela_asm():
    return build_benchmark(NAME, target_instructions=SMALL)


class TestRunVariant:
    def test_native(self, leela_asm):
        metrics = run_variant(leela_asm, arena_bss_size(NAME),
                              native_variant(), APPLE_M1)
        assert metrics.exit_code == 0
        assert metrics.cycles > 0
        assert metrics.instructions > SMALL / 2
        assert metrics.ns == pytest.approx(
            metrics.cycles / APPLE_M1.freq_ghz
        )

    def test_lfi_has_overhead(self, leela_asm):
        bss = arena_bss_size(NAME)
        native = run_variant(leela_asm, bss, native_variant(), APPLE_M1)
        lfi = run_variant(leela_asm, bss, lfi_variant(O2), APPLE_M1)
        assert lfi.instructions > native.instructions
        assert lfi.overhead_over(native) > 0

    def test_o0_worse_than_o2(self, leela_asm):
        bss = arena_bss_size(NAME)
        native = run_variant(leela_asm, bss, native_variant(), APPLE_M1)
        o0 = run_variant(leela_asm, bss, lfi_variant(O0), APPLE_M1)
        o2 = run_variant(leela_asm, bss, lfi_variant(O2), APPLE_M1)
        assert o0.overhead_over(native) > o2.overhead_over(native)

    def test_kvm_scales_walks_only(self, leela_asm):
        bss = arena_bss_size(NAME)
        native = run_variant(leela_asm, bss, native_variant(), APPLE_M1)
        kvm = run_variant(leela_asm, bss, kvm_variant(), APPLE_M1)
        # leela is cache/TLB-resident: KVM costs (almost) nothing.
        assert abs(kvm.overhead_over(native)) < 3.0

    def test_wasm_variant_runs(self, leela_asm):
        bss = arena_bss_size(NAME)
        metrics = run_variant(
            leela_asm, bss, wasm_variant(WASM_ENGINES["wasm2c-pinned"]),
            APPLE_M1,
        )
        assert metrics.exit_code == 0

    def test_failure_surfaces(self):
        bad = ".text\n.globl _start\n_start:\n  ldr x0, [xzr]\n  ret\n"
        with pytest.raises(Exception):
            run_variant(bad, 0, native_variant(), APPLE_M1)


class TestMeasureBenchmark:
    def test_overheads_dict(self, leela_asm):
        result = measure_benchmark(
            NAME, [lfi_variant(O2, "lfi")], APPLE_M1,
            target_instructions=SMALL,
        )
        assert "native" in result
        assert "lfi" in result
        assert set(result["overheads"]) == {"lfi"}
        assert result["overheads"]["lfi"] == pytest.approx(
            result["lfi"].overhead_over(result["native"])
        )


class TestGeomean:
    def test_zero(self):
        assert geomean([]) == 0.0
        assert geomean([0.0, 0.0]) == 0.0

    def test_single(self):
        assert geomean([10.0]) == pytest.approx(10.0)

    def test_matches_definition(self):
        values = [10.0, 20.0, 30.0]
        expected = (1.1 * 1.2 * 1.3) ** (1 / 3) - 1
        assert geomean(values) == pytest.approx(100 * expected)

    def test_handles_negative(self):
        assert geomean([-5.0, 5.0]) == pytest.approx(
            100 * (math.sqrt(0.95 * 1.05) - 1)
        )


class TestReport:
    TABLE = {
        "b1": {"sysA": 10.0, "sysB": 20.0},
        "b2": {"sysA": 5.0, "sysB": 40.0},
    }

    def test_overhead_table(self):
        text = format_overhead_table(self.TABLE, title="T")
        assert "T" in text
        assert "b1" in text and "b2" in text
        assert "geomean" in text
        assert "sysA" in text and "sysB" in text

    def test_geomean_table(self):
        text = format_geomean_table(self.TABLE, columns=["sysA", "sysB"])
        assert "sysA" in text
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 2

    def test_bars(self):
        text = format_bars({"a": 50.0, "b": 25.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bars_empty(self):
        assert format_bars({}, title="t") == "t"

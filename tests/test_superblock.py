"""Differential tests: the superblock engine vs the stepping interpreter.

The superblock engine (DESIGN.md §10) is a pure execution-strategy
change: translated straight-line blocks with fused guard sequences must
be architecturally invisible.  Every test here runs the same program
under ``engine="stepping"`` and ``engine="superblock"`` and demands
bit-identical observables: final registers, memory, retired-instruction
counts, modeled cycles, faults, and exported traces.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import O0, O2
from repro.emulator import APPLE_M1, Machine, OutOfFuel
from repro.memory import PagedMemory
from repro.obs import GuardProfiler, Tracer
from repro.obs.chrome import export_chrome_trace
from repro.perf import lfi_variant, native_variant, run_variant
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads import WASM_SUBSET
from repro.workloads.spec import arena_bss_size, build_benchmark

from .conftest import load_elf_into

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
ENGINES = ("stepping", "superblock")


def corpus_programs():
    """Every runnable (non-reject) program in the shrunk-failure corpus."""
    out = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        entry = json.loads(path.read_text())
        if entry.get("kind") == "program" and entry["expect"] != "reject":
            out.append(pytest.param(entry["source"], id=entry["name"]))
    return out


def observables(engine: str, elf, model=None, timeslice: int = 50_000):
    """Run ``elf`` to completion under ``engine``; return all observables."""
    runtime = Runtime(model=model, timeslice=timeslice, engine=engine)
    proc = runtime.spawn(elf)
    runtime.run()
    memory = {
        base: runtime.memory._raw_read(base, size)
        for base, size, _ in sorted(runtime.memory.mapped_regions())
    }
    return {
        "registers": proc.registers,
        "instret": runtime.machine.instret,
        "cycles": runtime.machine.cycles,
        "faults": [(f.kind, f.detail, f.pc) for f in runtime.faults],
        "exit": proc.exit_code,
        "stdout": runtime.stdout_of(proc),
        "memory": memory,
    }


class TestCorpusDifferential:
    @pytest.mark.parametrize("source", corpus_programs())
    @pytest.mark.parametrize("options", [O0, O2], ids=["O0", "O2"])
    def test_corpus_program_identical(self, source, options):
        elf = compile_lfi(source, options=options).elf
        stepping = observables("stepping", elf, model=APPLE_M1)
        superblock = observables("superblock", elf, model=APPLE_M1)
        assert stepping == superblock

    @pytest.mark.parametrize("source", corpus_programs())
    def test_corpus_program_identical_under_preemption(self, source):
        """A tiny odd timeslice forces blocks to split on fuel exhaustion."""
        elf = compile_lfi(source, options=O2).elf
        stepping = observables("stepping", elf, timeslice=7)
        superblock = observables("superblock", elf, timeslice=7)
        assert stepping == superblock


class TestTable4Differential:
    @pytest.mark.parametrize("name", sorted(WASM_SUBSET))
    def test_kernel_identical(self, name):
        asm = build_benchmark(name, target_instructions=20_000)
        bss = arena_bss_size(name)
        runs = {}
        for variant in (native_variant(), lfi_variant(O2, "LFI O2")):
            for engine in ENGINES:
                m = run_variant(asm, bss, variant, APPLE_M1, engine=engine)
                runs[(variant.name, engine)] = (m.instructions, m.cycles)
            assert runs[(variant.name, "stepping")] \
                == runs[(variant.name, "superblock")]


class TestObservability:
    def _traced_run(self, elf, engine):
        runtime = Runtime(model=APPLE_M1, engine=engine)
        tracer = Tracer().attach(runtime)
        proc = runtime.spawn(elf)
        runtime.run()
        return export_chrome_trace(tracer.events), proc

    def test_trace_export_byte_identical(self):
        asm = build_benchmark("505.mcf", target_instructions=10_000)
        elf = compile_lfi(asm, options=O2,
                          bss_size=arena_bss_size("505.mcf")).elf
        a, _ = self._traced_run(elf, "stepping")
        b, _ = self._traced_run(elf, "superblock")
        assert a == b

    def test_profiler_telescopes_on_superblock_runtime(self):
        """A per-instruction probe forces stepping fallback, and the
        profiler's buckets still sum exactly to the elapsed cycles."""
        asm = build_benchmark("505.mcf", target_instructions=10_000)
        elf = compile_lfi(asm, options=O2,
                          bss_size=arena_bss_size("505.mcf")).elf
        breakdowns = {}
        for engine in ENGINES:
            runtime = Runtime(model=APPLE_M1, engine=engine)
            profiler = GuardProfiler().attach(runtime)
            proc = runtime.spawn(elf)
            runtime.run()
            profiler.detach()
            elapsed = runtime.machine.cycles - profiler.start_cycles
            assert sum(profiler.breakdown().values()) \
                == pytest.approx(elapsed, abs=1e-9)
            breakdowns[engine] = (profiler.breakdown(), proc.registers)
        assert breakdowns["stepping"] == breakdowns["superblock"]

    def test_step_probe_forces_per_instruction_fallback(self):
        """While a probe is registered, no block is ever dispatched."""
        memory = PagedMemory()
        asm = """
            .globl _start
        _start:
            mov x0, #0
            mov x1, #50
        loop:
            add x0, x0, x1
            sub x1, x1, #1
            cbnz x1, loop
            hlt
        """
        from repro.arm64 import parse_assembly
        from repro.arm64.assembler import assemble
        from repro.elf import build_elf
        from repro.emulator import HltTrap

        elf = build_elf(assemble(parse_assembly(asm)))
        load_elf_into(memory, elf)
        machine = Machine(memory, engine="superblock")
        machine.cpu.pc = elf.entry
        seen = []
        machine.add_step_probe(
            lambda m, pc, klass, delta: seen.append(pc))
        with pytest.raises(HltTrap):
            machine.run(fuel=10_000)
        assert machine._sb.translations == 0
        # The probe saw every retired instruction, not one per block.
        assert len([pc for pc in seen if pc is not None]) == machine.instret


class TestFuel:
    def _machine(self, body: str) -> Machine:
        from repro.arm64 import parse_assembly
        from repro.arm64.assembler import assemble
        from repro.elf import build_elf

        elf = build_elf(assemble(parse_assembly(body)))
        memory = PagedMemory()
        load_elf_into(memory, elf)
        machine = Machine(memory, engine="superblock")
        machine.cpu.pc = elf.entry
        return machine

    BODY = """
        .globl _start
    _start:
        mov x0, #0
        mov x1, #100
    loop:
        add x0, x0, x1
        sub x1, x1, #1
        cbnz x1, loop
        hlt
    """

    @pytest.mark.parametrize("fuel", [1, 2, 3, 5, 7, 64])
    def test_block_never_overruns_fuel(self, fuel):
        """Every slice of ``fuel`` retires exactly ``fuel`` instructions,
        matching the stepping contract instruction-for-instruction."""
        from repro.emulator import HltTrap

        stepper = self._machine(self.BODY)
        stepper.engine = "stepping"
        blocky = self._machine(self.BODY)
        for _ in range(20):
            outcomes = []
            for machine in (stepper, blocky):
                with pytest.raises((OutOfFuel, HltTrap)) as exc:
                    machine.run(fuel=fuel)
                outcomes.append(exc.type)
            assert outcomes[0] is outcomes[1]
            assert blocky.instret == stepper.instret
            assert blocky.cpu.pc == stepper.cpu.pc
            assert blocky.cpu.regs == stepper.cpu.regs
            if outcomes[0] is HltTrap:
                break


class TestInvalidation:
    def _runtime_with_cached_proc(self):
        asm = build_benchmark("505.mcf", target_instructions=5_000)
        elf = compile_lfi(asm, options=O2,
                          bss_size=arena_bss_size("505.mcf")).elf
        runtime = Runtime(engine="superblock")
        proc = runtime.spawn(elf)
        return runtime, proc

    def test_mmap_over_cached_text_retranslates(self):
        runtime, proc = self._runtime_with_cached_proc()
        runtime.run()
        sb = runtime.machine._sb
        assert sb.cached_blocks > 0
        before = sb.cached_blocks
        lo = proc.layout.base
        hi = proc.layout.end
        # Re-mapping the slot (exec-into-fresh-image style) must drop
        # every cached block that overlaps it.
        page = runtime.memory.page_size
        runtime.memory.map_region(lo + 64 * page, page, 2 | 1)
        spanning = [s for s in list(sb._blocks)
                    if lo <= s < hi]
        runtime.memory.unmap(lo + 64 * page, page)
        assert sb.invalidations >= 0  # counters exist and move below
        count0 = sb.invalidations
        # Now invalidate the whole slot the way exec/munmap would.
        runtime.machine.invalidate_code(lo, hi - lo)
        assert all(sb.block_at(s) is None for s in spanning)
        assert sb.invalidations >= count0 + len(spanning)
        assert sb.cached_blocks <= before - len(spanning)

    def test_invalidation_is_slot_local(self):
        """Remapping one sandbox's translated text must not disturb a
        sibling sandbox's cached blocks — block keys are absolute pcs, so
        invalidation is naturally range-scoped to the touched slot."""
        asm = build_benchmark("505.mcf", target_instructions=5_000)
        elf = compile_lfi(asm, options=O2,
                          bss_size=arena_bss_size("505.mcf")).elf
        runtime = Runtime(engine="superblock")
        first = runtime.spawn(elf)
        second = runtime.spawn(elf)
        runtime.run()
        sb = runtime.machine._sb

        def blocks_in(layout):
            return {s for s in sb._blocks
                    if layout.base <= s < layout.end}

        first_blocks = blocks_in(first.layout)
        second_blocks = blocks_in(second.layout)
        assert first_blocks and second_blocks
        page = runtime.memory.page_size
        target = min(first_blocks) & ~(page - 1)
        from repro.memory import PERM_RW

        # mmap-over-text in the first slot only.
        runtime.memory.unmap(target, page)
        runtime.memory.map_region(target, page, PERM_RW)
        assert all(sb.block_at(s) is None for s in first_blocks
                   if target <= s < target + page)
        # Blocks outside the touched page survive in the same slot...
        assert all(sb.block_at(s) is not None for s in first_blocks
                   if not target <= s < target + page)
        # ...and the sibling slot is completely untouched.
        assert blocks_in(second.layout) == second_blocks

    def test_permission_downgrade_invalidates(self):
        runtime, proc = self._runtime_with_cached_proc()
        runtime.run()
        sb = runtime.machine._sb
        text_blocks = [s for s in list(sb._blocks)
                       if proc.layout.base <= s < proc.layout.end]
        assert text_blocks
        page = runtime.memory.page_size
        target = min(text_blocks) & ~(page - 1)
        from repro.memory import PERM_RW

        runtime.memory.protect(target, page, PERM_RW)  # drop execute
        assert all(
            sb.block_at(s) is None
            for s in text_blocks
            if target <= s < target + page
        )

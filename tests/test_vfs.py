"""VFS unit tests: files, directories, policy, handles, pipes."""

import errno

import pytest

from repro.errors import VfsError
from repro.runtime.vfs import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    Pipe,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    Vfs,
    normalize,
)


@pytest.fixture
def vfs():
    fs = Vfs()
    fs.mkdir("/tmp")
    fs.mkdir("/etc")
    fs.write_file("/etc/passwd", b"root:x:0:0\n")
    return fs


class TestTree:
    def test_normalize(self):
        assert normalize("a/b/../c//d/.") == "/a/c/d"
        assert normalize("/") == "/"

    def test_write_read(self, vfs):
        vfs.write_file("/tmp/a.txt", b"hello")
        assert vfs.read_file("/tmp/a.txt") == b"hello"

    def test_missing_file(self, vfs):
        with pytest.raises(VfsError) as exc:
            vfs.read_file("/nope")
        assert exc.value.err == errno.ENOENT

    def test_mkdir_and_listdir(self, vfs):
        vfs.mkdir("/tmp/sub")
        vfs.write_file("/tmp/sub/x", b"1")
        assert vfs.listdir("/tmp/sub") == ["x"]
        assert "sub" in vfs.listdir("/tmp")

    def test_mkdir_parents(self, vfs):
        vfs.mkdir("/a/b/c", parents=True)
        assert vfs.exists("/a/b/c")

    def test_mkdir_existing(self, vfs):
        with pytest.raises(VfsError) as exc:
            vfs.mkdir("/tmp")
        assert exc.value.err == errno.EEXIST

    def test_unlink(self, vfs):
        vfs.write_file("/tmp/x", b"1")
        vfs.unlink("/tmp/x")
        assert not vfs.exists("/tmp/x")

    def test_unlink_directory_fails(self, vfs):
        with pytest.raises(VfsError) as exc:
            vfs.unlink("/tmp")
        assert exc.value.err == errno.EISDIR


class TestPolicy:
    def test_denied_prefix(self, vfs):
        """Paper §5.3: the runtime can disallow access to directories."""
        vfs.deny("/etc")
        with pytest.raises(VfsError) as exc:
            vfs.open("/etc/passwd", O_RDONLY)
        assert exc.value.err == errno.EACCES

    def test_denied_exact_and_nested(self, vfs):
        vfs.deny("/etc")
        with pytest.raises(VfsError):
            vfs.write_file("/etc/shadow", b"")
        vfs.write_file("/tmp/ok", b"fine")  # other paths unaffected

    def test_prefix_is_path_component(self, vfs):
        vfs.mkdir("/etcetera")
        vfs.deny("/etc")
        vfs.write_file("/etcetera/file", b"ok")  # /etcetera != /etc/*


class TestHandles:
    def test_open_read(self, vfs):
        h = vfs.open("/etc/passwd", O_RDONLY)
        assert h.read(4) == b"root"
        assert h.read(100) == b":x:0:0\n"
        assert h.read(10) == b""

    def test_open_create_write(self, vfs):
        h = vfs.open("/tmp/new", O_WRONLY | O_CREAT)
        assert h.write(b"data") == 4
        assert vfs.read_file("/tmp/new") == b"data"

    def test_open_missing_without_creat(self, vfs):
        with pytest.raises(VfsError):
            vfs.open("/tmp/none", O_RDONLY)

    def test_truncate(self, vfs):
        vfs.write_file("/tmp/t", b"longdata")
        vfs.open("/tmp/t", O_WRONLY | O_TRUNC)
        assert vfs.read_file("/tmp/t") == b""

    def test_append(self, vfs):
        vfs.write_file("/tmp/log", b"a")
        h = vfs.open("/tmp/log", O_WRONLY | O_APPEND)
        h.write(b"b")
        h.write(b"c")
        assert vfs.read_file("/tmp/log") == b"abc"

    def test_read_on_writeonly(self, vfs):
        h = vfs.open("/tmp/w", O_WRONLY | O_CREAT)
        with pytest.raises(VfsError):
            h.read(1)

    def test_seek(self, vfs):
        vfs.write_file("/tmp/s", b"0123456789")
        h = vfs.open("/tmp/s", O_RDWR)
        assert h.seek(4, SEEK_SET) == 4
        assert h.read(2) == b"45"
        assert h.seek(-2, SEEK_CUR) == 4
        assert h.seek(-1, SEEK_END) == 9
        assert h.read(5) == b"9"

    def test_sparse_write(self, vfs):
        h = vfs.open("/tmp/sparse", O_RDWR | O_CREAT)
        h.seek(4, SEEK_SET)
        h.write(b"x")
        assert vfs.read_file("/tmp/sparse") == b"\x00\x00\x00\x00x"


class TestPipe:
    def test_write_then_read(self):
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        assert w.write(b"hello") == 5
        assert r.read(3) == b"hel"
        assert r.read(10) == b"lo"

    def test_read_empty_blocks(self):
        pipe = Pipe()
        assert pipe.read_end().read(1) is None

    def test_read_after_writer_closed_is_eof(self):
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        w.write(b"x")
        w.close()
        assert r.read(10) == b"x"
        assert r.read(10) == b""

    def test_write_after_reader_closed_epipe(self):
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        r.close()
        with pytest.raises(VfsError) as exc:
            w.write(b"x")
        assert exc.value.err == errno.EPIPE

    def test_write_full_blocks(self):
        pipe = Pipe()
        w = pipe.write_end()
        assert w.write(b"x" * Pipe.CAPACITY) == Pipe.CAPACITY
        assert w.write(b"y") is None

    def test_wrong_direction(self):
        pipe = Pipe()
        with pytest.raises(VfsError):
            pipe.read_end().write(b"x")
        with pytest.raises(VfsError):
            pipe.write_end().read(1)

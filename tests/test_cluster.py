"""Cluster determinism, warm-spawn equivalence, and worker fault tolerance.

The acceptance contract for ``repro.cluster`` (ISSUE 5 / DESIGN.md §11):

* the same batch on 1 worker and on 4 workers is byte-identical —
  stdout, exit codes, fault kinds, and per-sandbox metrics counters;
* a warm (snapshot-restored) spawn is observably identical to a cold
  load+verify spawn of the same ELF;
* killing a worker mid-batch loses no jobs: the supervisor restarts it
  and the batch completes with the same results as a clean run.
"""

import pytest

from repro.cluster import (
    Cluster,
    ClusterError,
    ImageCache,
    WarmPool,
    execute_job,
    normalize_metrics,
)
from repro.elf.format import write_elf
from repro.errors import VerificationError
from repro.obs import merge_snapshots
from repro.robustness import NEVER, RestartPolicy, WorkerSupervisor
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import busy_program, prologue, rt_exit, rtcall

WRITER = prologue() + """
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #10
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #0
""" + rt_exit() + """
.rodata
msg: .asciz "cluster ok"
"""

FORKER = prologue() + rtcall(RuntimeCall.FORK) + """
    cbnz x0, parent
    mov x0, #5
""" + rt_exit() + """
parent:
    adrp x1, status
    add x1, x1, :lo12:status
    mov x0, x1
""" + rtcall(RuntimeCall.WAIT) + """
    mov x0, #9
""" + rt_exit() + """
.data
.balign 8
status: .quad 0
"""

# The guarded store lands in the (unmapped) high guard region: a clean
# in-slot segv, so fault handling is part of the determinism contract.
FAULTER = prologue() + """
    movn x1, #0
    str x0, [x1]
""" + rt_exit()


@pytest.fixture(scope="module")
def images():
    return {
        "writer": write_elf(compile_lfi(WRITER).elf),
        "forker": write_elf(compile_lfi(FORKER).elf),
        "faulter": write_elf(compile_lfi(FAULTER).elf),
        "busy3": write_elf(compile_lfi(busy_program(3, 4_000)).elf),
        "busy4": write_elf(compile_lfi(busy_program(4, 8_000)).elf),
    }


def batch(images):
    """The mixed submission order every determinism test reuses."""
    return [
        images["writer"], images["busy3"], images["forker"],
        images["busy4"], images["faulter"], images["busy3"],
        images["writer"], images["busy4"],
    ]


def run_batch(images, workers, **kwargs):
    with Cluster(workers=workers, **kwargs) as cluster:
        for program in batch(images):
            cluster.submit(program)
        results = cluster.drain()
        report = cluster.metrics_report()
        fleet = cluster.fleet_report()
    return [r.deterministic_key() for r in results], report, fleet


class TestDeterminism:
    def test_one_vs_four_workers_byte_identical(self, images):
        keys1, report1, _ = run_batch(images, workers=1)
        keys4, report4, fleet4 = run_batch(images, workers=4)
        assert keys1 == keys4
        assert report1 == report4
        assert fleet4["workers"] == 4

    def test_batch_results_are_correct(self, images):
        keys, report, _ = run_batch(images, workers=2)
        by_id = {k[0]: k for k in keys}
        # (job_id, exit_code, stdout, stderr, metrics, faults)
        assert by_id[0][1] == 0 and by_id[0][2] == "cluster ok"
        assert by_id[1][1] == 3
        assert by_id[2][1] == 9  # forker parent
        assert by_id[4][1] == 128 + 11 and by_id[4][5] == ("segv",)
        assert report.startswith("cluster.jobs 8\n")

    def test_fork_metrics_normalized_to_job_root(self, images):
        keys, _, _ = run_batch(images, workers=2)
        forker_metrics = keys[2][4]
        assert "sandbox[0].instructions" in forker_metrics
        assert "sandbox[1].instructions" in forker_metrics  # the child
        assert "sandbox[0].calls.fork 1" in forker_metrics

    def test_warm_and_cold_clusters_agree(self, images):
        warm_keys, warm_report, warm_fleet = run_batch(
            images, workers=2, warm_spawn=True)
        cold_keys, cold_report, cold_fleet = run_batch(
            images, workers=2, warm_spawn=False)
        assert warm_keys == cold_keys
        assert warm_report == cold_report
        assert warm_fleet["warm_hits"] > 0
        assert cold_fleet["warm_hits"] == 0


class TestFaultTolerance:
    def test_kill_worker_mid_batch_loses_no_jobs(self, images):
        clean_keys, clean_report, _ = run_batch(images, workers=2)
        keys, report, fleet = run_batch(images, workers=2, chaos={0: 2})
        assert keys == clean_keys
        assert report == clean_report
        assert fleet["restarts"] == 1
        kinds = [line.split()[2] for line in fleet["incidents"]]
        assert "worker-crash" in kinds
        assert "worker-restart" in kinds

    def test_restart_exhaustion_raises(self, images):
        with Cluster(workers=1, restart_policy=NEVER,
                     chaos={0: 0}) as cluster:
            cluster.submit(images["writer"])
            with pytest.raises(ClusterError):
                cluster.drain()

    def test_submit_after_close_rejected(self, images):
        cluster = Cluster(workers=1)
        cluster.close()
        with pytest.raises(ClusterError):
            cluster.submit(images["writer"])


class TestWarmSpawn:
    def test_image_cache_verifies_once(self, images):
        cache = ImageCache()
        cache.get(images["writer"])
        cache.get(images["writer"])
        cache.get(images["busy3"])
        assert (cache.misses, cache.hits) == (2, 1)
        assert len(cache) == 2

    def test_image_cache_rejects_unverifiable(self):
        unsafe = write_elf(
            compile_native(prologue() + "    ldr x0, [x1]\n" + rt_exit()).elf)
        with pytest.raises(VerificationError):
            ImageCache().get(unsafe)

    def test_clone_state_matches_cold_spawn(self, images):
        cold = Runtime()
        cold_proc = cold.spawn(images["writer"])
        warm = Runtime()
        warm_proc = WarmPool(warm).spawn(images["writer"])
        for proc in (cold_proc, warm_proc):
            base = proc.layout.base
            regs = proc.registers
            assert regs["regs"][21] == base
        offsets = []
        for proc in (cold_proc, warm_proc):
            base = proc.layout.base
            offsets.append((
                proc.registers["sp"] - base,
                proc.registers["pc"] - base,
                proc.brk - base,
                proc.heap_start - base,
                sorted(addr - base for addr in proc.guard_map),
            ))
        assert offsets[0] == offsets[1]

    def test_warm_clone_runs_identical_to_cold_spawn(self, images):
        cold = Runtime()
        cold_proc = cold.spawn(images["forker"])
        cold_code = cold.run_until_exit(cold_proc)

        warm = Runtime()
        pool = WarmPool(warm)
        warm_proc = pool.spawn(images["forker"])
        assert pool.has_template(images["forker"])
        warm_code = warm.run_until_exit(warm_proc)

        assert (cold_code, cold.stdout_of(cold_proc),
                cold_proc.instructions) == \
            (warm_code, warm.stdout_of(warm_proc), warm_proc.instructions)

    def test_execute_job_leaves_runtime_clean(self, images):
        runtime = Runtime()
        pool = WarmPool(runtime)
        job = {"job_id": 0, "program": images["forker"]}
        first = execute_job(runtime, pool, job)
        assert runtime.processes == {}
        footprint = len(runtime.memory._pages)
        for job_id in range(1, 4):
            payload = execute_job(
                runtime, pool,
                {"job_id": job_id, "program": images["forker"]})
            assert payload["exit_code"] == first["exit_code"]
            assert payload["metrics"] == first["metrics"]
            assert payload["diag"]["warm"]
        # Reclaim keeps the footprint flat: only template pages persist.
        assert len(runtime.memory._pages) == footprint

    def test_job_instruction_budget_enforced(self, images):
        # Quotas are enforced at slice granularity; a small timeslice
        # makes the busy loop overrun its budget mid-run.
        runtime = Runtime(timeslice=200)
        payload = execute_job(
            runtime, None,
            {"job_id": 0, "program": images["busy4"],
             "max_instructions": 500})
        assert payload["exit_code"] == 128 + 9
        assert "quota" in payload["faults"]


class TestReports:
    def test_normalize_metrics_rebases_pids(self):
        text = ("sandbox[7].instructions 10\n"
                "sandbox[8].calls.exit 1\n"
                "host.cycles 5\n")
        assert normalize_metrics(text, 7) == (
            "sandbox[0].instructions 10\n"
            "sandbox[1].calls.exit 1\n"
            "host.cycles 5\n")

    def test_merge_snapshots_prefixes_in_order(self):
        merged = merge_snapshots([
            ("job[0]", "a 1\nb 2\n"),
            ("job[1]", "a 3\n"),
        ])
        assert merged == "job[0].a 1\njob[0].b 2\njob[1].a 3\n"
        assert merge_snapshots([]) == ""


class TestWorkerSupervisor:
    def test_on_failure_restarts_up_to_budget(self):
        sup = WorkerSupervisor(RestartPolicy(mode="on-failure",
                                             max_restarts=2))
        assert sup.worker_crashed(0, 100, 17, in_flight=3)
        assert sup.worker_crashed(0, 101, 17, in_flight=1)
        assert not sup.worker_crashed(0, 102, 17, in_flight=1)
        assert sup.restarts(0) == 2
        kinds = [line.split()[2] for line in sup.incident_log()]
        assert kinds.count("worker-crash") == 3
        assert kinds.count("worker-restart") == 2
        assert kinds.count("gave-up") == 1

    def test_never_policy_never_restarts(self):
        sup = WorkerSupervisor(NEVER)
        assert not sup.worker_crashed(1, 200, -9, in_flight=0)
        assert sup.total_restarts == 0

    def test_budget_is_per_worker(self):
        sup = WorkerSupervisor(RestartPolicy(mode="on-failure",
                                             max_restarts=1))
        assert sup.worker_crashed(0, 1, 17, in_flight=0)
        assert sup.worker_crashed(1, 2, 17, in_flight=0)
        assert sup.total_restarts == 2

"""Fault-path coverage: every way a sandbox dies must produce a precise
``ProcessFault`` record, leave siblings untouched, and never hang the
host loop.  Also covers the targeted pipe wake-up and shared-pipe
refcounting fixes."""

import pytest

from repro.runtime import Deadlock, ProcessState, Runtime, RuntimeCall
from repro.runtime.table import entry_address
from repro.runtime.vfs import Pipe, PipeEnd
from repro.toolchain import compile_lfi, compile_native
from repro.workloads.rtlib import prologue, rt_exit, rtcall

EXIT42 = prologue() + "    mov x0, #42\n" + rt_exit()

SEGV = prologue() + """
    mov x1, #0
    ldr x0, [x1]
""" + rt_exit()

SIGILL = prologue() + """
    brk #0
""" + rt_exit()

# entry_address(40) = 0xffff_0000_0140: a registered host entry with no
# handler behind it — the "bad runtime call" path.
BADCALL = prologue() + """
    movz x30, #0xffff, lsl #32
    movk x30, #0x0140
    blr x30
""" + rt_exit()


def native_proc(runtime, src):
    """Spawn hand-written (unverified) code — the fault-producing kind."""
    return runtime.spawn(compile_native(src).elf, verify=False)


class TestFaultRecords:
    def test_segv_record(self):
        runtime = Runtime()
        proc = native_proc(runtime, SEGV)
        runtime.run()
        assert proc.state == ProcessState.ZOMBIE
        assert proc.exit_code == 128 + 11
        (fault,) = runtime.faults
        assert fault.kind == "segv"
        assert fault.pid == proc.pid
        assert proc.layout.base <= fault.pc < proc.layout.end

    def test_sigill_record(self):
        runtime = Runtime()
        proc = native_proc(runtime, SIGILL)
        runtime.run()
        assert proc.exit_code == 128 + 11
        (fault,) = runtime.faults
        assert fault.kind == "sigill"
        assert fault.pid == proc.pid
        assert proc.layout.base <= fault.pc < proc.layout.end

    def test_badcall_record(self):
        runtime = Runtime()
        runtime.machine.register_host_entry(entry_address(40), 40)
        proc = native_proc(runtime, BADCALL)
        runtime.run()
        assert proc.exit_code == 128 + 11
        (fault,) = runtime.faults
        assert fault.kind == "badcall"
        assert fault.pid == proc.pid
        assert "40" in fault.detail

    def test_sibling_survives_fault(self):
        runtime = Runtime()
        bad = native_proc(runtime, SEGV)
        good = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        runtime.run()
        assert good.state == ProcessState.ZOMBIE
        assert good.exit_code == 42
        assert [f.pid for f in runtime.faults] == [bad.pid]

    def test_blocked_forever_raises_deadlock(self):
        """A reader with no writer must raise Deadlock, not spin."""
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + """
            ldr w20, [x19]
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + """
            mov x0, #0
        """ + rt_exit() + """
        .data
        .balign 8
        fds: .skip 8
        buf: .skip 8
        """
        runtime = Runtime()
        runtime.spawn(compile_lfi(src).elf, verify=True)
        with pytest.raises(Deadlock):
            runtime.run(max_instructions=1_000_000)


class TestTargetedWake:
    def test_wake_only_matching_pipe_waiters(self):
        """wake_pipe_waiters must not retry readers of *other* pipes."""
        runtime = Runtime()
        p1 = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        p2 = runtime.spawn(compile_lfi(EXIT42).elf, verify=True)
        pipe_a, pipe_b = Pipe(), Pipe()
        for proc, pipe in ((p1, pipe_a), (p2, pipe_b)):
            proc.state = ProcessState.BLOCKED
            proc.block_reason = "call"
            proc.block_pipe = pipe
        retried = []
        runtime._retry_blocked = retried.append
        runtime.wake_pipe_waiters(pipe_a)
        assert [p.pid for p in retried] == [p1.pid]
        runtime.wake_pipe_waiters(pipe_b)
        assert [p.pid for p in retried] == [p1.pid, p2.pid]


class TestPipeRefcount:
    def test_close_decrements_before_closing_direction(self):
        pipe = Pipe()
        end = pipe.read_end()
        assert end.retain() is end
        end.close()
        assert pipe.read_open  # one referent left
        end.close()
        assert not pipe.read_open
        end.close()  # extra close is harmless
        assert end.refs == 0

    def test_write_end_independent(self):
        pipe = Pipe()
        r, w = pipe.read_end(), pipe.write_end()
        w.retain()
        w.close()
        assert pipe.write_open
        r.close()
        assert not pipe.read_open and pipe.write_open
        w.close()
        assert not pipe.write_open

    def test_parent_pipe_survives_child_exit(self):
        """Fork shares the pipe ends; the child dying (its fd table torn
        down) must not close the parent's live descriptors.  Before the
        refcount fix the write below hit EPIPE and this exited 1."""
        src = prologue() + """
            adrp x19, fds
            add x19, x19, :lo12:fds
            mov x0, x19
        """ + rtcall(RuntimeCall.PIPE) + rtcall(RuntimeCall.FORK) + """
            cbnz x0, parent
            mov x0, #7
        """ + rt_exit() + """
        parent:
            mov x0, #0
        """ + rtcall(RuntimeCall.WAIT) + """
            ldr w20, [x19, #4]
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #65
            strb w2, [x1]
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.WRITE) + """
            tbnz x0, #63, bad
            ldr w20, [x19]
            mov x0, x20
            mov x2, #1
        """ + rtcall(RuntimeCall.READ) + """
            tbnz x0, #63, bad
            ldrb w3, [x1]
            cmp x3, #65
            b.ne bad
            mov x0, #65
        """ + rt_exit() + """
        bad:
            mov x0, #1
        """ + rt_exit() + """
        .data
        .balign 8
        fds: .skip 8
        buf: .skip 8
        """
        runtime = Runtime()
        proc = runtime.spawn(compile_lfi(src).elf, verify=True)
        assert runtime.run_until_exit(proc) == 65
        ends = [o for o in proc.fds.values() if isinstance(o, PipeEnd)]
        assert all(e.refs == 1 for e in ends)

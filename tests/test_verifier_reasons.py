"""One negative test per verifier rejection reason (ISSUE 2 satellite).

The verifier's security argument is the union of its rejection branches:
an unreachable or mis-ordered branch is a silent hole.  Every ``yield``
in ``repro/core/verifier.py`` gets a test here that triggers exactly it,
plus a positive twin where the rule has a legitimate near-miss.

Two branches are unreachable from decoded bytes (the decoder never
produces such instructions) and are exercised with synthetic
``Instruction`` objects: they are defense-in-depth against future decoder
changes, not dead code.

This suite also pins the fix for the fuzzer-found soundness bug: in
store-only mode (``sandbox_loads=False``) writeback loads through
x21/x22/x30 were accepted, letting a verified binary move the sandbox
base at runtime.
"""

from __future__ import annotations

import pytest

from repro.arm64 import parse_assembly
from repro.arm64.assembler import assemble
from repro.arm64.instructions import Instruction
from repro.arm64.registers import parse_register
from repro.core import Verifier, VerifierPolicy, verify_elf, verify_text
from repro.elf import build_elf


def _reasons(body, **policy):
    """Verify a snippet; return the list of violation reasons."""
    lines = [body] if isinstance(body, str) else list(body)
    source = ".text\n.globl _start\n_start:\n" + "".join(
        f"    {line}\n" for line in lines
    )
    elf = build_elf(assemble(parse_assembly(source)))
    result = Verifier(VerifierPolicy(**policy)).verify_elf(elf)
    return [v.reason for v in result.violations]


def _assert_reason(body, fragment, **policy):
    reasons = _reasons(body, **policy)
    assert any(fragment in r for r in reasons), \
        f"expected a reason containing {fragment!r}, got {reasons}"


class TestStreamShape:
    def test_text_size_not_multiple_of_four(self):
        result = verify_text(b"\x1f\x20\x03\xd5\x00")  # nop + stray byte
        assert not result.ok
        assert any("not a multiple of 4" in v.reason
                   for v in result.violations)

    def test_undecodable_instruction(self):
        result = verify_text(b"\xff\xff\xff\xff")
        assert not result.ok
        assert result.violations[0].reason == "undecodable instruction"

    def test_unsafe_mnemonic(self):
        _assert_reason("svc #0", "instruction not on the safe list")

    def test_exclusives_disallowed_by_policy(self):
        _assert_reason("ldxr x0, [x18]", "disallowed by policy",
                       allow_exclusives=False)

    def test_ordered_access_disallowed_by_policy(self):
        _assert_reason("ldar x0, [x18]", "disallowed by policy",
                       allow_exclusives=False)

    def test_exclusives_allowed_by_default(self):
        assert _reasons("ldxr x0, [x18]") == []


class TestMemoryAddressing:
    def test_register_offset_from_sp(self):
        _assert_reason("ldr x0, [sp, x1]",
                       "register-offset addressing from sp")

    def test_sp_displacement_exceeds_guard(self):
        # Reachable only with a reduced guard region: the architectural
        # imm12 maximum (32760) is below the default 1 << 15 ceiling.
        _assert_reason("ldr x0, [sp, #32]", "sp displacement 32 exceeds",
                       max_displacement=16)

    def test_sp_displacement_within_guard_ok(self):
        assert _reasons("ldr x0, [sp, #8]", max_displacement=16) == []

    def test_register_offset_from_guarded_base(self):
        _assert_reason("ldr x0, [x18, x1]",
                       "register-offset addressing from x18")

    def test_displacement_exceeds_guard(self):
        _assert_reason("ldr x0, [x18, #32]", "displacement 32 exceeds",
                       max_displacement=16)

    def test_writeback_modifies_guarded_base(self):
        _assert_reason("ldr x0, [x18], #8",
                       "writeback would modify reserved register x18")

    def test_unsafe_extend_from_x21(self):
        _assert_reason("ldr x0, [x21, w1, sxtw]", "unsafe extend sxtw")

    def test_guarded_extend_from_x21_ok(self):
        assert _reasons("ldr x0, [x21, w1, uxtw]") == []

    def test_unsafe_register_addressing_from_x21(self):
        _assert_reason("ldr x0, [x21, x1]", "unsafe addressing from x21")

    def test_unsafe_shifted_addressing_from_x21(self):
        _assert_reason("ldr x0, [x21, x1, lsl #3]",
                       "unsafe addressing from x21")

    def test_store_through_x21(self):
        _assert_reason("str x0, [x21, #8]", "runtime-call table is read-only")

    def test_writeback_modifies_x21(self):
        _assert_reason("ldr x0, [x21, #8]!", "writeback would modify x21")

    def test_negative_displacement_from_x21(self):
        _assert_reason("ldur x0, [x21, #-8]",
                       "negative displacement from x21")

    def test_x21_displacement_out_of_table(self):
        _assert_reason("ldr x0, [x21, #32]", "x21 displacement 32 out of",
                       max_displacement=16)

    def test_unguarded_base_register(self):
        _assert_reason("ldr x1, [x0]", "unguarded base register x0")

    def test_memory_instruction_without_memory_operand(self):
        # Unreachable from decoded bytes (the decoder always attaches a
        # Mem operand to memory mnemonics); guards against decoder drift.
        inst = Instruction("ldr", (parse_register("x0"),))
        reasons = list(Verifier()._check(inst, [inst], 0))
        assert "memory instruction without memory operand" in reasons


class TestLoadDestinations:
    def test_load_writes_x21(self):
        _assert_reason("ldr x21, [x18]", "load writes x21")

    def test_load_writes_reserved_register(self):
        _assert_reason("ldr x23, [x18]", "load writes reserved register x23")

    def test_64bit_load_writes_x22(self):
        _assert_reason("ldr x22, [x18]", "64-bit load writes x22")

    def test_32bit_load_into_w22_ok(self):
        assert _reasons("ldr w22, [x18]") == []

    def test_32bit_write_to_link_register(self):
        _assert_reason("ldr w30, [x18]", "32-bit write to link register")

    def test_load_writes_x30_without_guard(self):
        _assert_reason("ldr x30, [x18]", "without a following link-register")

    def test_load_x30_with_guard_ok(self):
        assert _reasons(["ldr x30, [x18]",
                         "add x30, x21, w30, uxtw"]) == []

    def test_runtime_call_idiom_ok(self):
        assert _reasons(["ldr x30, [x21, #16]", "blr x30"]) == []

    def test_store_exclusive_status_into_reserved(self):
        _assert_reason("stxr w18, x1, [x18]",
                       "load writes reserved register x18")


class TestNoLoadsWritebackRegression:
    """Fuzzer-found fix: store-only mode must still reject writeback loads
    through every reserved register, not just the guarded address ones."""

    @pytest.mark.parametrize("base", ["x18", "x21", "x22", "x23", "x24",
                                      "x30"])
    def test_reserved_base_writeback_rejected(self, base):
        _assert_reason(f"ldr x0, [{base}], #8",
                       f"writeback would modify reserved register {base}",
                       sandbox_loads=False)

    @pytest.mark.parametrize("base", ["x18", "x21", "x22", "x23", "x24",
                                      "x30"])
    def test_reserved_base_preindex_rejected(self, base):
        _assert_reason(f"ldr x0, [{base}, #16]!",
                       f"writeback would modify reserved register {base}",
                       sandbox_loads=False)

    def test_plain_load_unchecked_in_noloads_mode(self):
        # The point of the mode: load *addresses* are not sandboxed.
        assert _reasons("ldr x1, [x0]", sandbox_loads=False) == []

    def test_work_register_writeback_ok_in_noloads_mode(self):
        assert _reasons("ldr x1, [x0], #8", sandbox_loads=False) == []

    def test_sp_writeback_load_ok_in_noloads_mode(self):
        assert _reasons("ldr x0, [sp], #16", sandbox_loads=False) == []

    def test_stores_still_checked_in_noloads_mode(self):
        _assert_reason("str x1, [x0]", "unguarded base register x0",
                       sandbox_loads=False)


class TestIndirectBranches:
    def test_unguarded_branch_register(self):
        _assert_reason("br x5", "indirect branch through unguarded "
                                "register x5")

    def test_branch_through_guarded_register_ok(self):
        assert _reasons(["add x18, x21, w0, uxtw", "br x18"]) == []

    def test_bare_ret_needs_no_operand_check(self):
        assert _reasons(["adr x30, _start", "add x30, x21, w30, uxtw",
                         "ret"]) == []

    def test_malformed_indirect_branch(self):
        # Unreachable from decoded bytes (br/blr always decode with a
        # 64-bit GPR operand); guards against decoder drift.
        inst = Instruction("br", (parse_register("w0"),))
        reasons = list(Verifier()._check(inst, [inst], 0))
        assert any("malformed indirect branch" in r for r in reasons)


class TestRegisterWrites:
    def test_write_to_x21(self):
        _assert_reason("add x21, x21, #1", "write to x21 (sandbox base)")

    def test_guard_register_written_by_non_guard(self):
        _assert_reason("add x18, x18, #1",
                       "x18 modified by something other than the guard")

    def test_guard_register_32bit_write_rejected(self):
        _assert_reason("mov w23, w0",
                       "x23 modified by something other than the guard")

    def test_guard_write_ok(self):
        assert _reasons("add x18, x21, w0, uxtw") == []

    def test_64bit_write_to_x22(self):
        _assert_reason("mov x22, x0", "64-bit write to x22 breaks")

    def test_32bit_write_to_x22_ok(self):
        assert _reasons("mov w22, w0") == []

    def test_x30_written_by_non_guard(self):
        _assert_reason("mov x30, x0",
                       "x30 modified by something other than the guard")

    def test_x30_mov_then_guard_ok(self):
        assert _reasons(["mov x30, x0", "add x30, x21, w30, uxtw"]) == []

    def test_call_writes_x30_ok(self):
        assert _reasons(["bl _start"]) == []


class TestProverFoundSpHoles:
    """Regressions for the two sp soundness holes ``repro.prove`` found
    (DESIGN.md §13), pinned as the ``sp-arith-large-offset`` and
    ``sp-arith-32bit`` corpus entries."""

    def test_large_offset_close_rejected(self):
        # Pre-fix: any in-guard displacement closed an sp window, but an
        # access at sp+2000 only pins sp within 2000 of the mapped
        # region, so chained windows could walk sp past the guard band.
        _assert_reason(["sub sp, sp, #16", "str x0, [sp, #2000]"],
                       "sp arithmetic without a following sp access")

    def test_small_offset_close_still_ok(self):
        assert _reasons(["sub sp, sp, #16", "str x0, [sp, #1000]"]) == []

    def test_32bit_sp_arithmetic_rejected(self):
        # add wsp, wsp, #0 truncates sp to its low 32 bits — an absolute
        # address outside the sandbox — yet matched the pre-fix
        # small-drift pattern.  Raw words: the assembler has no wsp
        # spelling.
        data = b"".join(w.to_bytes(4, "little")
                        for w in (0x110003FF, 0xF90003E0))
        result = verify_text(data)
        assert not result.ok
        assert any("unsafe sp modification" in v.reason
                   for v in result.violations)

    def test_corpus_entries_replay_clean(self):
        from repro.fuzz.corpus import DEFAULT_CORPUS, load_corpus, \
            replay_entry

        entries = {e.name: e for e in load_corpus(DEFAULT_CORPUS)}
        for name in ("sp-arith-large-offset", "sp-arith-32bit",
                     "noloads-writeback-x21"):
            assert name in entries, f"corpus entry {name} missing"
            assert replay_entry(entries[name]) == []


class TestViolationMetadata:
    """ISSUE 7 satellite: violations carry disassembly, the policy mode,
    and a stable machine-readable code."""

    def _one_violation(self, body, **policy):
        lines = [body] if isinstance(body, str) else list(body)
        source = ".text\n.globl _start\n_start:\n" + "".join(
            f"    {line}\n" for line in lines)
        elf = build_elf(assemble(parse_assembly(source)))
        result = Verifier(VerifierPolicy(**policy)).verify_elf(elf)
        assert result.violations
        return result.violations[0]

    def test_violation_carries_disasm_and_mode(self):
        v = self._one_violation("ldr x0, [x21], #8", sandbox_loads=False)
        assert v.disasm == "ldr x0, [x21], #8"
        assert v.mode == "store-only"
        assert v.code == "writeback-reserved"
        text = str(v)
        assert "ldr x0, [x21], #8" in text
        assert "[store-only]" in text
        assert f"{v.word:#010x}" in text

    def test_default_policy_mode_label(self):
        v = self._one_violation("br x5")
        assert v.mode == "sandbox"
        assert v.code == "branch-unguarded"

    def test_undecodable_violation_has_no_disasm(self):
        result = verify_text(b"\xff\xff\xff\xff")
        v = result.violations[0]
        assert v.disasm == ""
        assert v.code == "undecodable"

    def test_every_reason_code_is_unique(self):
        from repro.core.verifier import _REASON_CODES

        codes = [code for _, code in _REASON_CODES]
        assert len(codes) == len(set(codes))


class TestStackPointer:
    def test_sp_arithmetic_without_access(self):
        _assert_reason(["sub sp, sp, #16", "ret"],
                       "sp arithmetic without a following sp access")

    def test_sp_arithmetic_with_access_ok(self):
        assert _reasons(["sub sp, sp, #16", "str x0, [sp]"]) == []

    def test_unsafe_sp_modification(self):
        _assert_reason("mov sp, x0", "unsafe sp modification")

    def test_large_sp_subtract_unsafe(self):
        _assert_reason(["sub sp, sp, #2048", "str x0, [sp]"],
                       "unsafe sp modification")

    def test_sp_guard_pair_ok(self):
        assert _reasons(["mov w22, wsp", "add sp, x21, x22"]) == []


def test_verify_elf_skips_non_executable_segments():
    source = (".text\n.globl _start\n_start:\n    brk #0\n"
              ".data\nbuffer:\n    .skip 64\n")
    elf = build_elf(assemble(parse_assembly(source)))
    result = verify_elf(elf)
    assert result.ok and result.instructions == 1

"""MetricsHub: primitives, event aggregation, pull gauges, snapshots."""

import pytest

from repro.emulator import APPLE_M1
from repro.obs import Counter, Gauge, Histogram, MetricsHub, Tracer
from repro.runtime import ResourceQuota, Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall


EXIT0 = prologue() + "    mov x0, #0\n" + rt_exit()

WRITES = prologue() + """
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #6
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #6
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #0
""" + rt_exit() + """
.rodata
msg: .asciz "hello\\n"
"""

STORE_LOOP = prologue() + """
    mov x0, #32
    adrp x1, buf
    add x1, x1, :lo12:buf
loop:
    str w0, [x1, x0, lsl #2]
    sub x0, x0, #1
    cbnz x0, loop
    mov x0, #0
""" + rt_exit() + """
.bss
buf: .zero 256
"""


def instrumented_run(src, quota=None):
    runtime = Runtime(model=APPLE_M1)
    tracer = Tracer().attach(runtime)
    hub = MetricsHub().attach(tracer, runtime)
    proc = runtime.spawn(compile_lfi(src).elf, verify=True)
    if quota is not None:
        runtime.set_quota(proc, quota)
    runtime.run_until_exit(proc)
    hub.collect(runtime)
    return runtime, hub, proc


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge()
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_buckets_cumulative(self):
        h = Histogram(bounds=(10.0, 100.0))
        for v in (5, 50, 500, 7):
            h.observe(v)
        assert h.count == 4
        assert h.total == 562.0
        lines = h.lines("x")
        assert "x.le_10 2" in lines
        assert "x.le_100 3" in lines
        assert "x.le_inf 4" in lines


class TestAggregation:
    def test_call_counters_and_latency(self):
        _, hub, proc = instrumented_run(WRITES)
        metrics = hub.sandboxes[proc.pid]
        assert metrics.calls["write"].value == 2
        assert metrics.calls["exit"].value == 1
        assert metrics.call_latency.count == 3

    def test_instructions_match_process(self):
        runtime, hub, proc = instrumented_run(EXIT0)
        metrics = hub.sandboxes[proc.pid]
        assert metrics.instructions.value == proc.instructions
        assert metrics.slices.value >= 1

    def test_guard_executions_by_class(self):
        _, hub, proc = instrumented_run(STORE_LOOP)
        metrics = hub.sandboxes[proc.pid]
        # the uxtw store is a zero-instruction guard; the address setup
        # adds (adrp/add) are rewritten as tagged memory guard work only
        # when instructions are inserted — assert we counted *something*
        # consistent with the loaded guard map.
        loaded = set(proc.guard_map.values())
        assert set(metrics.guard_exec) <= loaded | set()
        for klass, counter in metrics.guard_exec.items():
            assert counter.value > 0

    def test_tlb_gauges(self):
        _, hub, _ = instrumented_run(STORE_LOOP)
        assert hub.host["tlb_hits"].value > 0
        assert "tlb_misses" in hub.host

    def test_quota_headroom(self):
        quota = ResourceQuota(max_instructions=1_000_000, max_fds=8)
        _, hub, proc = instrumented_run(EXIT0, quota=quota)
        metrics = hub.sandboxes[proc.pid]
        headroom = metrics.headroom["instructions"].value
        assert 0 < headroom < 1_000_000
        assert metrics.headroom["fds"].value == 8 - len(proc.fds)


class TestSnapshot:
    def test_snapshot_deterministic(self):
        _, hub1, _ = instrumented_run(WRITES)
        _, hub2, _ = instrumented_run(WRITES)
        assert hub1.snapshot() == hub2.snapshot()

    def test_snapshot_contents(self):
        _, hub, proc = instrumented_run(WRITES)
        snap = hub.snapshot()
        assert f"sandbox[{proc.pid}].calls.write 2" in snap
        assert "host.cycles" in snap
        lines = snap.strip().splitlines()
        assert lines == sorted(lines) or len(lines) > 0  # stable layout

    def test_detach(self):
        runtime = Runtime(model=APPLE_M1)
        tracer = Tracer().attach(runtime)
        hub = MetricsHub().attach(tracer, runtime)
        hub.detach()
        proc = runtime.spawn(compile_lfi(EXIT0).elf, verify=True)
        runtime.run_until_exit(proc)
        assert hub.sandboxes == {}

"""Tests for the SPEC stand-in workload generators."""

import pytest

from repro.core import O0, O1, O2, O2_NO_LOADS, VerifierPolicy, verify_elf
from repro.emulator import APPLE_M1
from repro.runtime import Runtime
from repro.toolchain import compile_lfi, compile_native
from repro.workloads import (
    KERNELS,
    SPEC_BENCHMARKS,
    WASM_SUBSET,
    arena_bss_size,
    benchmark_names,
    build_benchmark,
)

SMALL = 4000  # dynamic-instruction target for fast tests


class TestProfiles:
    def test_fourteen_benchmarks(self):
        """The paper's 14-benchmark C/C++ subset (§6)."""
        assert len(SPEC_BENCHMARKS) == 14

    def test_wasm_subset_is_paper_seven(self):
        assert set(WASM_SUBSET) == {
            "505.mcf", "508.namd", "519.lbm", "525.x264",
            "531.deepsjeng", "544.nab", "557.xz",
        }

    def test_mixes_are_normalized(self):
        for profile in SPEC_BENCHMARKS.values():
            assert abs(sum(profile.mix.values()) - 1.0) < 1e-9
            for kernel in profile.mix:
                assert kernel in KERNELS

    def test_working_sets_power_of_two(self):
        for profile in SPEC_BENCHMARKS.values():
            ws = profile.working_set
            assert ws >= 1024 * 1024
            assert ws & (ws - 1) == 0

    def test_bad_mix_rejected(self):
        from repro.workloads.spec import BenchmarkProfile

        with pytest.raises(ValueError):
            BenchmarkProfile("x", {"chase": 0.5}, 1 << 20)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", {"chase": 1.0}, 3_000_000)


class TestKernels:
    def test_kernels_avoid_reserved_registers(self):
        from repro.arm64 import parse_assembly

        for kernel in KERNELS.values():
            program = parse_assembly(kernel.text)
            for inst in program.instructions():
                for reg in list(inst.uses()) + list(inst.defs()):
                    if not reg.is_vector:
                        assert reg.index not in (18, 21, 22, 23, 24), (
                            kernel.name, inst,
                        )

    def test_kernel_text_parses_and_has_label(self):
        from repro.arm64 import parse_assembly

        for kernel in KERNELS.values():
            program = parse_assembly(kernel.text)
            assert kernel.label in program.labels()
            assert program.instruction_count() > 4


class TestBuiltBenchmarks:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_builds_runs_native(self, name):
        asm = build_benchmark(name, target_instructions=SMALL)
        runtime = Runtime()
        proc = runtime.spawn(
            compile_native(asm, bss_size=arena_bss_size(name)).elf,
            verify=False,
        )
        assert runtime.run_until_exit(proc) == 0, runtime.faults

    @pytest.mark.parametrize("name", ["541.leela", "519.lbm", "505.mcf"])
    @pytest.mark.parametrize("options", [O0, O1, O2, O2_NO_LOADS])
    def test_rewrites_verify_and_run(self, name, options):
        asm = build_benchmark(name, target_instructions=SMALL)
        out = compile_lfi(asm, options=options,
                          bss_size=arena_bss_size(name))
        policy = VerifierPolicy(sandbox_loads=options.sandbox_loads)
        assert verify_elf(out.elf, policy).ok
        runtime = Runtime()
        proc = runtime.spawn(out.elf, verify=True, policy=policy)
        assert runtime.run_until_exit(proc) == 0, runtime.faults

    def test_native_and_lfi_compute_same_result(self):
        """Semantics preservation: the guards must not change behaviour.

        Both versions write kernel results into the arena scratch area;
        compare the exit codes and the scratch contents.
        """
        name = "531.deepsjeng"
        asm = build_benchmark(name, target_instructions=SMALL)
        bss = arena_bss_size(name)

        def scratch_of(elf, verify):
            runtime = Runtime()
            proc = runtime.spawn(elf, verify=verify)
            code = runtime.run_until_exit(proc)
            assert code == 0
            # Arena starts at the .bss base inside the sandbox.
            base = proc.layout.base + 0x3000_0000
            return runtime.memory.read(base, 64)

        native = scratch_of(compile_native(asm, bss_size=bss).elf, False)
        lfi = scratch_of(compile_lfi(asm, bss_size=bss).elf, True)
        assert native == lfi

    def test_target_scales_instruction_count(self):
        small = build_benchmark("508.namd", target_instructions=SMALL)
        large = build_benchmark("508.namd", target_instructions=8 * SMALL)
        runtime_small, runtime_large = Runtime(), Runtime()
        bss = arena_bss_size("508.namd")
        p1 = runtime_small.spawn(compile_native(small, bss_size=bss).elf,
                                 verify=False)
        p2 = runtime_large.spawn(compile_native(large, bss_size=bss).elf,
                                 verify=False)
        runtime_small.run_until_exit(p1)
        runtime_large.run_until_exit(p2)
        assert runtime_large.machine.instret > 3 * runtime_small.machine.instret

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("600.nonesuch")

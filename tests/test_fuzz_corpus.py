"""Corpus replay and property-based fuzz tests (ISSUE 2 tentpole).

The fast layer replays every shrunk failure under ``tests/corpus/`` and
checks the corpus machinery itself (round-trips, stale-entry detection).
The hypothesis layer re-states the three oracles as properties over the
generator's program space; the heavyweight instances carry the ``slow``
marker and run in the fuzz-smoke CI job rather than tier-1.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.options import O1
from repro.fuzz.corpus import (
    CorpusEntry,
    entry_elf,
    load_corpus,
    replay_corpus,
    replay_entry,
    save_entry,
)
from repro.fuzz.differential import (
    check_completeness,
    check_semantics,
    mutant_elf,
    rewrite_to_elf,
    soundness_probe,
)
from repro.fuzz.genasm import AsmGenerator, GenConfig
from repro.fuzz.mutate import OPS, Mutation, MutationEngine, apply_mutations

ENTRIES = load_corpus()


# -- the committed corpus ------------------------------------------------------


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 9


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays_clean(entry):
    assert replay_entry(entry) == []


def test_corpus_replay_log_is_deterministic():
    logs = []
    for _ in range(2):
        lines = []
        findings = replay_corpus(log=lines.append)
        assert findings == []
        logs.append(lines)
    assert logs[0] == logs[1]
    assert logs[0] == sorted(logs[0], key=lambda l: l.split()[1])


# -- corpus machinery ----------------------------------------------------------


def test_entry_round_trips_through_json(tmp_path):
    entry = CorpusEntry(name="rt", kind="machine", expect="reject",
                        description="round-trip", text_hex="1f2003d5",
                        policy={"sandbox_loads": False})
    save_entry(entry, tmp_path)
    loaded = load_corpus(tmp_path)
    assert loaded == [entry]
    assert not loaded[0].verifier_policy().sandbox_loads


def test_replay_flags_a_stale_reject_entry():
    # A "the verifier must reject this" entry whose payload is now clean
    # must fail replay loudly, not rot silently.
    entry = CorpusEntry(name="stale", kind="machine", expect="reject",
                        text_hex="1f2003d5")  # a lone nop: verifies fine
    findings = replay_entry(entry)
    assert findings
    assert "verifier accepted a known-bad mutant" in findings[0].detail


def test_replay_flags_a_stale_program_reject_entry():
    entry = CorpusEntry(name="stale-prog", kind="program", expect="reject",
                        source=(".text\n.globl _start\n_start:\n"
                                "    mov x0, #1\n    brk #0\n"))
    findings = replay_entry(entry)
    assert findings
    assert "expected rejection" in findings[0].detail


def test_entry_elf_places_text_and_data():
    entry = CorpusEntry(name="e", kind="machine", expect="contained",
                        text_hex="1f2003d5")
    elf = entry_elf(entry)
    assert elf.entry == 0x0004_0000
    assert [seg.vaddr for seg in elf.segments] == [0x0004_0000, 0x2000_0000]


# -- property layer (fast instances) ------------------------------------------

_FAST = settings(max_examples=10, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])
_SLOW = settings(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_SMALL = GenConfig(min_fragments=1, max_fragments=4)

_mutations = st.lists(
    st.tuples(st.sampled_from(OPS), st.integers(0, 1 << 16),
              st.integers(0, 1 << 16), st.integers(0, 30)),
    min_size=1, max_size=4,
).map(lambda raw: [Mutation(op, (a, b, c) if op != "bitflip" else (a, b))
                   for op, a, b, c in raw])


@_FAST
@given(st.randoms(use_true_random=False))
def test_property_rewrites_always_verify(rnd):
    program = AsmGenerator(_SMALL).generate(rnd)
    assert check_completeness(program.source) == []


@_FAST
@given(st.randoms(use_true_random=False), st.integers(1, 5))
def test_property_mutation_plans_apply_cleanly(rnd, count):
    source = AsmGenerator(_SMALL).generate(rnd).source
    text = bytes(rewrite_to_elf(source, O1).text.data)
    plan = MutationEngine(rnd).plan(text, count)
    mutated = apply_mutations(text, plan)
    assert len(mutated) == len(text)
    assert apply_mutations(text, plan) == mutated  # deterministic


@_FAST
@given(st.binary(min_size=4, max_size=64), _mutations)
def test_property_apply_mutations_total_on_any_text(data, mutations):
    text = data[: len(data) & ~3] or b"\x1f\x20\x03\xd5"
    mutated = apply_mutations(text, mutations)
    assert len(mutated) == len(text)


# -- property layer (slow instances, fuzz-smoke CI job) ------------------------


@pytest.mark.slow
@_SLOW
@given(st.randoms(use_true_random=False))
def test_property_semantics_preserved(rnd):
    program = AsmGenerator(_SMALL).generate(rnd)
    assert check_semantics(program.source) == []


@pytest.mark.slow
@_SLOW
@given(st.randoms(use_true_random=False), st.integers(1, 3))
def test_property_accepted_mutants_stay_contained(rnd, count):
    source = AsmGenerator(_SMALL).generate(rnd).source
    elf = rewrite_to_elf(source, O1)
    text = bytes(elf.text.data)
    plan = MutationEngine(rnd).plan(text, count)
    mutated = mutant_elf(elf, apply_mutations(text, plan))
    accepted, findings = soundness_probe(mutated, budget=20_000)
    assert findings == [], [f.line() for f in findings]


@pytest.mark.slow
def test_slow_campaign_smoke():
    from repro.fuzz.campaign import FuzzCampaign
    campaign = FuzzCampaign(seed=0, budget=25)
    assert campaign.run() == []


def test_random_seeded_generation_is_cheap_enough():
    # Guard against the generator quietly ballooning: tier-1 runs it a lot.
    program = AsmGenerator().generate(random.Random(0))
    assert program.instruction_estimate() < 400

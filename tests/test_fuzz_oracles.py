"""Tests of the fuzzing machinery itself (ISSUE 2 satellite).

The oracles are trusted to gate every future rewriter/verifier change, so
they get the same treatment as the code under test: determinism is pinned
byte-for-byte, and a planted escape checks that the soundness probe
actually notices a broken invariant rather than vacuously passing.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.core import VerifierPolicy, verify_elf
from repro.fuzz import differential
from repro.fuzz.campaign import FuzzCampaign
from repro.fuzz.differential import (
    assemble_to_elf,
    check_completeness,
    check_semantics,
    rewrite_to_elf,
    soundness_probe,
)
from repro.fuzz.genasm import AsmGenerator, GenConfig
from repro.fuzz.mutate import (
    Mutation,
    MutationEngine,
    apply_mutations,
    find_guards,
)
from repro.fuzz.shrink import shrink_mutations, shrink_program
from repro.fuzz.genasm import GeneratedProgram
from repro.core.options import O0


class TestDeterminism:
    def test_campaign_log_is_byte_identical_for_a_seed(self):
        runs = []
        for _ in range(2):
            campaign = FuzzCampaign(seed=20, budget=3)
            campaign.run()
            runs.append("\n".join(campaign.lines).encode())
        assert runs[0] == runs[1]

    def test_campaign_log_depends_on_the_seed(self):
        logs = []
        for seed in (20, 21):
            campaign = FuzzCampaign(seed=seed, budget=2)
            campaign.run()
            logs.append(campaign.lines)
        assert logs[0] != logs[1]

    def test_mutation_plans_replay_from_the_seed(self):
        source = AsmGenerator().generate(random.Random(5)).source
        text = bytes(rewrite_to_elf(source, O0).text.data)
        plans = [MutationEngine(random.Random(99)).plan(text, 5)
                 for _ in range(2)]
        assert plans[0] == plans[1]

    def test_generator_replays_from_the_seed(self):
        sources = [AsmGenerator().generate(random.Random(12)).source
                   for _ in range(2)]
        assert sources[0] == sources[1]


class TestMutations:
    def test_serialize_round_trips_every_op(self):
        for mutation in (Mutation("bitflip", (3, 17)),
                         Mutation("guarddel", (2, 1, 9)),
                         Mutation("regsub", (4, 5, 21)),
                         Mutation("splice", (1, 6, 0))):
            raw = mutation.serialize()
            assert all(isinstance(x, int) for x in raw)
            assert Mutation.deserialize(raw) == mutation

    def test_bitflip_is_an_involution_and_pure(self):
        text = bytes(range(16))
        flip = [Mutation("bitflip", (1, 9))]
        once = apply_mutations(text, flip)
        assert once != text
        assert apply_mutations(once, flip) == text
        assert text == bytes(range(16))  # input untouched

    def test_find_guards_sees_the_rewriter_output(self):
        source = (".text\n.globl _start\n_start:\n"
                  "    adrp x10, buffer\n"
                  "    add x10, x10, :lo12:buffer\n"
                  "    str x0, [x10]\n"
                  "    brk #0\n"
                  ".data\nbuffer:\n    .skip 16\n")
        text = bytes(rewrite_to_elf(source, O0).text.data)
        guards = find_guards(text)
        assert guards, "O0 rewrite of a store must contain a guard"
        for _index, dest, src in guards:
            assert dest in {18, 23, 24, 30} or dest == src

    def test_guarddel_nop_erases_the_guard_word(self):
        source = (".text\n.globl _start\n_start:\n"
                  "    adrp x10, buffer\n"
                  "    add x10, x10, :lo12:buffer\n"
                  "    str x0, [x10]\n"
                  "    brk #0\n"
                  ".data\nbuffer:\n    .skip 16\n")
        text = bytes(rewrite_to_elf(source, O0).text.data)
        index, _dest, src = find_guards(text)[0]
        nopped = apply_mutations(text, [Mutation("guarddel",
                                                 (index, 1, src))])
        word = int.from_bytes(nopped[4 * index: 4 * index + 4], "little")
        assert word == 0xD503201F  # nop
        assert not any(g[0] == index for g in find_guards(nopped))

    def test_guarddel_falls_back_to_bitflip_without_guards(self):
        text = (0xD503201F).to_bytes(4, "little") * 4  # nops: no guards
        engine = MutationEngine(random.Random(0))
        plan = engine.plan(text, 12)
        assert plan and all(m.op != "guarddel" for m in plan)


class TestPlantedEscape:
    """A known-bad mutant the soundness oracle must flag.

    ``ldr x0, [x21], #8`` moves the sandbox base: the verifier must reject
    it (the fuzzer-found fix), and — were it ever accepted again — the
    probe's register check must still catch the moved x21 at runtime.
    """

    SOURCE = (".text\n.globl _start\n_start:\n"
              "    ldr x0, [x21], #8\n"
              "    brk #0\n")

    def test_verifier_rejects_the_plant_in_noloads_mode(self):
        elf = assemble_to_elf(self.SOURCE)
        result = verify_elf(elf, VerifierPolicy(sandbox_loads=False))
        assert not result.ok
        accepted, findings = soundness_probe(
            elf, VerifierPolicy(sandbox_loads=False))
        assert (accepted, findings) == (False, [])

    def test_probe_flags_the_plant_when_the_verifier_is_blinded(
            self, monkeypatch):
        monkeypatch.setattr(differential, "verify_elf",
                            lambda elf, policy=None: SimpleNamespace(ok=True))
        accepted, findings = soundness_probe(assemble_to_elf(self.SOURCE))
        assert accepted
        assert any("x21" in f.detail for f in findings), \
            [f.line() for f in findings]
        assert all(f.oracle == "soundness" for f in findings)


class TestShrink:
    @staticmethod
    def _program(n, marker_at=()):
        fragments = [[f"mov x0, #{i}"] for i in range(n)]
        for i in marker_at:
            fragments[i] = [f"movz x7, #{7000 + i}"]
        return GeneratedProgram(fragments=fragments)

    @staticmethod
    def _has_marker(program, value):
        return any(f"movz x7, #{value}" in line
                   for frag in program.fragments for line in frag)

    def test_shrink_program_isolates_the_failing_fragment(self):
        program = self._program(8, marker_at=(5,))
        shrunk = shrink_program(
            program, lambda p: self._has_marker(p, 7005))
        assert len(shrunk.fragments) == 1
        assert self._has_marker(shrunk, 7005)

    def test_shrink_program_keeps_interacting_fragments(self):
        program = self._program(8, marker_at=(1, 6))
        shrunk = shrink_program(
            program,
            lambda p: self._has_marker(p, 7001) and self._has_marker(p, 7006))
        assert len(shrunk.fragments) == 2

    def test_shrink_program_never_returns_a_passing_case(self):
        program = self._program(4)
        shrunk = shrink_program(program, lambda p: len(p.fragments) >= 3)
        assert len(shrunk.fragments) == 3

    def test_shrink_mutations_drops_the_irrelevant_ones(self):
        culprit = Mutation("bitflip", (0, 5))
        plan = [Mutation("splice", (1, 2, 0)), culprit,
                Mutation("regsub", (3, 0, 21)), Mutation("bitflip", (2, 2))]
        shrunk = shrink_mutations(plan, lambda batch: culprit in batch)
        assert shrunk == [culprit]


class TestOracleSmoke:
    def test_oracles_pass_on_a_generated_program(self):
        program = AsmGenerator(GenConfig(min_fragments=2,
                                         max_fragments=4)).generate(
            random.Random(7))
        assert check_completeness(program.source) == []
        assert check_semantics(program.source) == []

    def test_completeness_reports_the_level(self):
        # A program the rewriter itself must refuse (reserved register).
        source = (".text\n.globl _start\n_start:\n"
                  "    add x21, x21, #1\n"
                  "    brk #0\n")
        findings = check_completeness(source)
        assert findings
        labels = {f.level for f in findings}
        assert "O0" in labels and "O2-noloads" in labels
        assert all(f.oracle == "completeness" for f in findings)

    def test_finding_line_format_is_stable(self):
        from repro.fuzz.differential import Finding
        line = Finding("soundness", "O1", "detail text").line()
        assert line == "FINDING soundness level=O1 detail text"

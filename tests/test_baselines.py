"""Tests for the comparison-system models (Wasm engines, hardware)."""

import pytest

from repro.baselines import (
    GVISOR_MODEL,
    LINUX_MODEL,
    NESTED_WALK_SCALE,
    WASM_ENGINES,
    wasm_rewrite,
)
from repro.arm64 import parse_assembly
from repro.emulator import APPLE_M1
from repro.runtime import Runtime
from repro.toolchain import compile_native
from repro.workloads import arena_bss_size, build_benchmark
from repro.workloads.rtlib import prologue, rt_exit


class TestWasmRewrite:
    def count_instructions(self, text):
        return parse_assembly(text).instruction_count()

    def test_engines_present(self):
        assert set(WASM_ENGINES) == {
            "wasmtime", "wasm2c", "wasm2c-nobarrier", "wasm2c-pinned",
            "wamr",
        }

    def test_stock_wasm2c_reloads_per_access(self):
        src = "ldr x1, [x0]\n ldr x2, [x0, #8]\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c"])
        # Two reloads of the heap base (the compiler barrier).
        assert out.count("ldr x28, [x27]") == 2

    def test_nobarrier_hoists_to_one_reload_per_block(self):
        src = "ldr x1, [x0]\n ldr x2, [x0, #8]\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c-nobarrier"])
        assert out.count("ldr x28, [x27]") == 1

    def test_block_boundary_forces_reload(self):
        src = "ldr x1, [x0]\nlabel:\n ldr x2, [x0, #8]\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c-nobarrier"])
        assert out.count("ldr x28, [x27]") == 2

    def test_pinned_never_reloads(self):
        src = "ldr x1, [x0]\n ldr x2, [x0, #8]\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c-pinned"])
        assert "ldr x28, [x27]" not in out
        # But still rebases each access through the pinned register.
        assert out.count("add x16, x28, w0, uxtw") == 2

    def test_indirect_call_check_inserted(self):
        src = "blr x3\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wamr"])
        assert "ldr x17, [x27, #8]" in out
        assert "__wasm_ok_0" in out

    def test_sp_accesses_untouched(self):
        src = "str x0, [sp, #16]\n ret\n"
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c"])
        assert "str x0, [sp, #16]" in out
        assert "[x27]" not in out.split("str x0")[1]

    def test_dilation_adds_instructions(self):
        src = "\n".join(["add x1, x1, #1"] * 40) + "\n ret\n"
        lean = wasm_rewrite(src, WASM_ENGINES["wasm2c-pinned"])
        fat = wasm_rewrite(src, WASM_ENGINES["wasmtime"])
        assert self.count_instructions(fat) > self.count_instructions(lean)

    @pytest.mark.parametrize("engine", sorted(WASM_ENGINES))
    def test_rewritten_benchmark_still_correct(self, engine):
        """Engine instrumentation must preserve program semantics."""
        name = "531.deepsjeng"
        asm = build_benchmark(name, target_instructions=4000)
        bss = arena_bss_size(name)

        def run(text):
            runtime = Runtime()
            proc = runtime.spawn(compile_native(text, bss_size=bss).elf,
                                 verify=False)
            code = runtime.run_until_exit(proc)
            assert code == 0, runtime.faults
            base = proc.layout.base + 0x3000_0000
            return runtime.memory.read(base, 64)

        native = run(asm)
        wasm = run(wasm_rewrite(asm, WASM_ENGINES[engine]))
        assert native == wasm

    def test_runtime_calls_still_work(self):
        src = prologue() + "    mov x0, #9\n" + rt_exit()
        out = wasm_rewrite(src, WASM_ENGINES["wasm2c"])
        runtime = Runtime()
        proc = runtime.spawn(compile_native(out).elf, verify=False)
        assert runtime.run_until_exit(proc) == 9


class TestHardwareModels:
    def test_nested_walk_doubles(self):
        assert NESTED_WALK_SCALE == 2.0

    def test_linux_syscall_matches_paper_m1(self):
        """Paper Table 5: ~129ns at 3.2GHz."""
        assert 110 < LINUX_MODEL.syscall_ns(3.2) < 150

    def test_linux_pipe_matches_paper_m1(self):
        """Paper Table 5: ~1504ns at 3.2GHz."""
        assert 1200 < LINUX_MODEL.pipe_ns(3.2) < 1800

    def test_gvisor_is_orders_slower(self):
        assert GVISOR_MODEL.syscall_ns(3.2) > 50 * LINUX_MODEL.syscall_ns(3.2)
        assert GVISOR_MODEL.pipe_ns(3.0) > 20_000

    def test_decomposition_consistency(self):
        m = LINUX_MODEL
        assert m.pipe_roundtrip_cycles() > 2 * m.syscall_cycles()

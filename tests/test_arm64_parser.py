"""Unit tests for the GNU assembly parser and printer."""

import pytest

from repro.arm64 import (
    AsmSyntaxError,
    Cond,
    Extended,
    Imm,
    Label,
    Mem,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    VecReg,
    W,
    X,
    XZR,
    SP,
    parse_assembly,
    parse_operand,
    print_assembly,
)
from repro.arm64.operands import ShiftedImm, canonical_condition, invert_condition
from repro.arm64.program import Directive, LabelDef


def parse_one(text):
    program = parse_assembly(text)
    insts = list(program.instructions())
    assert len(insts) == 1, insts
    return insts[0]


class TestOperands:
    def test_register(self):
        assert parse_operand("x0") is X[0]
        assert parse_operand("W13") is W[13]
        assert parse_operand("xzr") is XZR
        assert parse_operand("sp") is SP
        assert parse_operand("lr") is X[30]

    def test_immediates(self):
        assert parse_operand("#42") == Imm(42)
        assert parse_operand("#-8") == Imm(-8)
        assert parse_operand("#0x1f") == Imm(31)
        assert parse_operand("12") == Imm(12)

    def test_lo12_reloc(self):
        op = parse_operand(":lo12:mydata")
        assert op == Imm(0, reloc="lo12", symbol="mydata")

    def test_label(self):
        assert parse_operand(".Lfoo") == Label(".Lfoo")
        assert parse_operand("bar+16") == Label("bar", 16)

    def test_condition(self):
        assert parse_operand("eq") == Cond("eq")
        assert parse_operand("hs") == Cond("cs")  # alias

    def test_vector(self):
        op = parse_operand("v3.4s")
        assert isinstance(op, VecReg)
        assert op.reg.index == 3
        assert op.arrangement == "4s"
        assert op.lanes == 4 and op.lane_bits == 32

    def test_bad_operand(self):
        with pytest.raises(AsmSyntaxError):
            parse_operand("!!nope!!")


class TestMemoryOperands:
    def test_base_only(self):
        inst = parse_one("ldr x0, [x1]")
        assert inst.mem == Mem(X[1])

    def test_immediate_offset(self):
        inst = parse_one("ldr x0, [x1, #24]")
        assert inst.mem == Mem(X[1], Imm(24))

    def test_pre_index(self):
        inst = parse_one("str x0, [sp, #-16]!")
        assert inst.mem == Mem(SP, Imm(-16), PRE_INDEX)
        assert inst.mem.writes_back

    def test_post_index(self):
        inst = parse_one("ldr x0, [x1], #8")
        assert inst.mem == Mem(X[1], Imm(8), POST_INDEX)

    def test_register_offset_shifted(self):
        inst = parse_one("ldr x0, [x1, x2, lsl #3]")
        assert inst.mem == Mem(X[1], Shifted(X[2], "lsl", 3))

    def test_register_offset_extended(self):
        inst = parse_one("ldr x0, [x1, w2, uxtw #2]")
        assert inst.mem == Mem(X[1], Extended(W[2], "uxtw", 2))

    def test_guard_form(self):
        """The paper's zero-instruction guard addressing mode (§4.1)."""
        inst = parse_one("ldr x0, [x21, w1, uxtw]")
        assert inst.mem == Mem(X[21], Extended(W[1], "uxtw", None))

    def test_sxtw(self):
        inst = parse_one("str w0, [x1, w2, sxtw #2]")
        assert inst.mem == Mem(X[1], Extended(W[2], "sxtw", 2))

    def test_plain_register_offset(self):
        inst = parse_one("ldr x0, [x1, x2]")
        assert inst.mem == Mem(X[1], X[2])


class TestInstructions:
    def test_guard_instruction(self):
        inst = parse_one("add x18, x21, w1, uxtw")
        assert inst.mnemonic == "add"
        assert inst.operands == (X[18], X[21], Extended(W[1], "uxtw", None))

    def test_shifted_imm(self):
        inst = parse_one("movz x9, #0x1234, lsl #16")
        assert inst.operands == (X[9], ShiftedImm(0x1234, 16))

    def test_conditional_branch(self):
        inst = parse_one("b.eq .Ldone")
        assert inst.mnemonic == "b.eq"
        assert inst.base == "b"
        assert inst.branch_target() == Label(".Ldone")

    def test_tbz(self):
        inst = parse_one("tbz x0, #33, target")
        assert inst.operands == (X[0], Imm(33), Label("target"))

    def test_pair(self):
        inst = parse_one("ldp x29, x30, [sp], #16")
        assert inst.transfer_regs == [X[29], X[30]]
        assert inst.mem.mode == POST_INDEX

    def test_defs_load(self):
        inst = parse_one("ldr x0, [x1, #8]")
        assert inst.defs() == [X[0]]

    def test_defs_store_writeback(self):
        inst = parse_one("str x0, [sp, #-16]!")
        assert inst.defs() == [SP]

    def test_defs_bl(self):
        inst = parse_one("bl somewhere")
        assert inst.defs() == [X[30]]

    def test_defs_stxr_status(self):
        inst = parse_one("stxr w1, x0, [x2]")
        assert inst.defs() == [W[1]]

    def test_uses_store(self):
        inst = parse_one("str x0, [x1, x2]")
        assert set(inst.uses()) == {X[0], X[1], X[2]}

    def test_is_flags(self):
        assert parse_one("cmp x0, #0").defs() == []
        assert parse_one("ret").is_indirect_branch
        assert parse_one("b.ne foo").is_direct_branch
        assert not parse_one("b foo").is_call
        assert parse_one("bl foo").is_call
        assert parse_one("b foo").is_terminator
        assert not parse_one("b.eq foo").is_terminator


class TestProgramStructure:
    SRC = """
    .text
    .globl main
main:
    mov x0, #1
    ret
    .data
value:
    .quad 42
    """

    def test_labels_and_sections(self):
        program = parse_assembly(self.SRC)
        labels = program.labels()
        assert "main" in labels and "value" in labels
        sections = {
            item: section
            for item, section in program.items_with_sections()
            if isinstance(item, LabelDef)
        }
        by_name = {item.name: sec for item, sec in sections.items()}
        assert by_name["main"] == ".text"
        assert by_name["value"] == ".data"

    def test_comments_stripped(self):
        program = parse_assembly("mov x0, #1 // a comment\n/* block */ ret\n")
        assert [i.mnemonic for i in program.instructions()] == ["mov", "ret"]

    def test_label_and_inst_same_line(self):
        program = parse_assembly("foo: mov x0, #1\n")
        assert isinstance(program.items[0], LabelDef)
        assert program.items[1].mnemonic == "mov"

    def test_multiple_statements_per_line(self):
        program = parse_assembly("mov x0, #1; mov x1, #2\n")
        assert program.instruction_count() == 2

    def test_directive_args(self):
        program = parse_assembly('.section .rodata\n.asciz "hi, there"\n')
        directives = [i for i in program.items if isinstance(i, Directive)]
        assert directives[1].args == ('"hi, there"',)


class TestRoundTrip:
    CASES = [
        "add x0, x1, x2",
        "add x18, x21, w1, uxtw",
        "ldr x0, [x21, w1, uxtw]",
        "str x0, [sp, #-16]!",
        "ldp x29, x30, [sp], #16",
        "movz x9, #4660, lsl #16",
        "csel x0, x1, x2, ne",
        "b.eq .Ltarget",
        "tbz x0, #3, .Ltarget",
        "fmadd d0, d1, d2, d3",
        "add v0.4s, v1.4s, v2.4s",
        "ldr q0, [x1, #32]",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_print_parse_identity(self, text):
        program = parse_assembly(text)
        printed = print_assembly(program)
        reparsed = parse_assembly(printed)
        assert print_assembly(reparsed) == printed


class TestConditions:
    def test_canonical(self):
        assert canonical_condition("HS") == "cs"
        with pytest.raises(ValueError):
            canonical_condition("zz")

    def test_invert_pairs(self):
        assert invert_condition("eq") == "ne"
        assert invert_condition("ne") == "eq"
        assert invert_condition("lt") == "ge"
        assert invert_condition("hi") == "ls"

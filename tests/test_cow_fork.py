"""Tests for copy-on-write memory sharing and COW fork (paper §5.3)."""

import pytest

from repro.memory import PAGE_SIZE, PERM_R, PERM_RW, PagedMemory
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit, rtcall

BASE = 0x40000
ALIAS = 0x200000


class TestShareRegion:
    @pytest.fixture
    def mem(self):
        m = PagedMemory()
        m.map_region(BASE, PAGE_SIZE * 2, PERM_RW)
        m.write(BASE, b"original")
        m.share_region(BASE, ALIAS, PAGE_SIZE * 2)
        return m

    def test_alias_reads_shared_data(self, mem):
        assert mem.read(ALIAS, 8) == b"original"

    def test_no_copy_until_write(self, mem):
        assert mem.cow_copies == 0
        mem.read(ALIAS, 8)
        mem.read(BASE, 8)
        assert mem.cow_copies == 0

    def test_write_to_alias_does_not_change_source(self, mem):
        mem.write(ALIAS, b"CHANGED!")
        assert mem.read(ALIAS, 8) == b"CHANGED!"
        assert mem.read(BASE, 8) == b"original"
        assert mem.cow_copies == 1

    def test_write_to_source_does_not_change_alias(self, mem):
        mem.write(BASE, b"PARENT!!")
        assert mem.read(ALIAS, 8) == b"original"
        assert mem.read(BASE, 8) == b"PARENT!!"

    def test_only_touched_pages_copied(self, mem):
        mem.write(ALIAS, b"x")  # touches page 0 only
        assert mem.cow_copies == 1
        mem.write(ALIAS + PAGE_SIZE, b"y")  # now page 1
        assert mem.cow_copies == 2

    def test_share_of_unmapped_source_rejected(self):
        m = PagedMemory()
        with pytest.raises(ValueError):
            m.share_region(BASE, ALIAS, PAGE_SIZE)

    def test_permissions_inherited(self):
        m = PagedMemory()
        m.map_region(BASE, PAGE_SIZE, PERM_R)
        m.share_region(BASE, ALIAS, PAGE_SIZE)
        assert m.perms_at(ALIAS) == PERM_R

    def test_unmap_clears_cow_state(self, mem):
        mem.unmap(ALIAS, PAGE_SIZE * 2)
        mem.write(BASE, b"still ok")
        assert mem.read(BASE, 8) == b"still ok"


FORK_PROGRAM = prologue() + """
    adrp x19, value
    add x19, x19, :lo12:value
    mov x1, #100
    str x1, [x19]
""" + rtcall(RuntimeCall.FORK) + """
    cbnz x0, parent
    // child: mutate its copy, exit with parent's-original + delta
    ldr x1, [x19]
    add x1, x1, #11
    str x1, [x19]
    ldr x0, [x19]
""" + rt_exit() + """
parent:
    adrp x1, status
    add x1, x1, :lo12:status
    mov x0, x1
""" + rtcall(RuntimeCall.WAIT) + """
    // parent's copy must still hold 100; add child's status
    ldr x1, [x19]
    adrp x2, status
    add x2, x2, :lo12:status
    ldr w3, [x2]
    add x0, x1, x3           // 100 + 111 = 211
""" + rt_exit() + """
.data
.balign 8
value: .quad 0
status: .quad 0
"""


class TestCowFork:
    def test_child_writes_do_not_leak_to_parent(self):
        runtime = Runtime()
        parent = runtime.spawn(compile_lfi(FORK_PROGRAM).elf)
        runtime.run()
        assert parent.exit_code == 211 % 256
        # COW actually engaged: at least one lazy page copy happened.
        assert runtime.memory.cow_copies >= 1

    def test_eager_fork_matches_cow_semantics(self, monkeypatch):
        from repro.runtime import runtime as runtime_module

        runtime = Runtime()
        original_fork = runtime.fork
        monkeypatch.setattr(
            runtime, "fork", lambda proc: original_fork(proc, cow=False)
        )
        parent = runtime.spawn(compile_lfi(FORK_PROGRAM).elf)
        runtime.run()
        assert parent.exit_code == 211 % 256
        assert runtime.memory.cow_copies == 0

    def test_cow_copies_far_fewer_pages_than_eager(self):
        """The point of COW: a fork that touches little copies little."""
        runtime = Runtime()
        parent = runtime.spawn(compile_lfi(FORK_PROGRAM).elf)
        total_pages_before = len(runtime.memory._pages)
        runtime.run()
        # Only a handful of pages (stack + the written data page) copied.
        assert runtime.memory.cow_copies < total_pages_before


class TestForkSuperblocks:
    """Fork interacts with the superblock cache per-slot (DESIGN.md §10)."""

    def _run_forked(self, engine):
        runtime = Runtime(engine=engine)
        parent = runtime.spawn(compile_lfi(FORK_PROGRAM).elf)
        runtime.run()
        return runtime, parent

    def test_fork_program_identical_across_engines(self):
        results = {}
        for engine in ("stepping", "superblock"):
            runtime, parent = self._run_forked(engine)
            results[engine] = (
                parent.exit_code,
                runtime.machine.instret,
                [(f.kind, f.detail) for f in runtime.faults],
            )
        assert results["stepping"] == results["superblock"]

    def test_child_translates_its_own_blocks(self):
        """The child's slot gets fresh translations: block keys are
        absolute pcs, so the parent's blocks are never reused."""
        from repro.memory import SandboxLayout

        runtime, parent = self._run_forked("superblock")
        sb = runtime.machine._sb
        # The (reaped) child occupied the second slot.
        child_layout = SandboxLayout.for_slot(2)
        lo, hi = child_layout.base, child_layout.end
        child_blocks = [s for s in sb._blocks if lo <= s < hi]
        parent_blocks = [s for s in sb._blocks
                         if parent.layout.base <= s < parent.layout.end]
        assert child_blocks and parent_blocks
        assert not set(child_blocks) & set(parent_blocks)

    def test_child_mmap_over_translated_text_keeps_parent_blocks(self):
        """Regression: the child remaps a page the *parent's image* had
        superblock-translated (the child's text is a COW alias of it).
        Only the child's cached blocks on that page may die; the parent's
        blocks — same code bytes, different absolute pcs — must survive
        untouched, and vice versa below."""
        from repro.memory import SandboxLayout

        runtime, parent = self._run_forked("superblock")
        sb = runtime.machine._sb
        child_layout = SandboxLayout.for_slot(2)

        def blocks_in(layout):
            return {s for s in sb._blocks
                    if layout.base <= s < layout.end}

        child_blocks = blocks_in(child_layout)
        parent_blocks = blocks_in(parent.layout)
        assert child_blocks and parent_blocks
        page = min(child_blocks) & ~(PAGE_SIZE - 1)
        # mmap(MAP_FIXED)-over-text: replace the child's COW text page
        # with a fresh anonymous mapping.
        runtime.memory.unmap(page, PAGE_SIZE)
        runtime.memory.map_region(page, PAGE_SIZE, PERM_RW)
        for start in child_blocks:
            if page <= start < page + PAGE_SIZE:
                assert sb.block_at(start) is None
        assert blocks_in(parent.layout) == parent_blocks

    def test_parent_mmap_over_translated_text_keeps_child_blocks(self):
        """The mirror image: remapping the parent's translated text must
        not invalidate the child's cached blocks."""
        from repro.memory import SandboxLayout

        runtime, parent = self._run_forked("superblock")
        sb = runtime.machine._sb
        child_layout = SandboxLayout.for_slot(2)

        def blocks_in(layout):
            return {s for s in sb._blocks
                    if layout.base <= s < layout.end}

        child_blocks = blocks_in(child_layout)
        parent_blocks = blocks_in(parent.layout)
        assert child_blocks and parent_blocks
        page = min(parent_blocks) & ~(PAGE_SIZE - 1)
        runtime.memory.unmap(page, PAGE_SIZE)
        runtime.memory.map_region(page, PAGE_SIZE, PERM_RW)
        for start in parent_blocks:
            if page <= start < page + PAGE_SIZE:
                assert sb.block_at(start) is None
        assert blocks_in(child_layout) == child_blocks

    def test_fork_then_diverge_forces_retranslation(self):
        """Patching one slot's (COW) text must retranslate only that
        slot's blocks; the other slot's stay cached."""
        from repro.memory import SandboxLayout

        runtime, parent = self._run_forked("superblock")
        sb = runtime.machine._sb
        child_layout = SandboxLayout.for_slot(2)
        lo, hi = child_layout.base, child_layout.end
        child_blocks = [s for s in sb._blocks if lo <= s < hi]
        parent_count = len([s for s in sb._blocks
                            if parent.layout.base <= s
                            < parent.layout.end])
        target = min(child_blocks)
        translations_before = sb.translations
        # Host-side patch of one child text word (debugger / exec-style
        # divergence), via the explicit invalidation API.
        runtime.machine.invalidate_code(target, 4)
        assert sb.block_at(target) is None
        assert len([s for s in sb._blocks
                    if parent.layout.base <= s < parent.layout.end]) \
            == parent_count
        # Re-entering the patched pc retranslates rather than reusing.
        runtime.machine.cpu.pc = target
        try:
            runtime.machine.run(fuel=1)
        except Exception:
            pass  # any trap is fine; only translation is under test
        assert sb.translations > translations_before
        assert sb.block_at(target) is not None

"""Tier-1 tests for the ``repro.prove`` verifier-soundness prover.

Three acceptance criteria from ISSUE 7:

* a small class (``branch-reg``) is proven exhaustively with a known
  acceptance count and zero counterexamples;
* a deliberately weakened verifier (the PR-2 writeback hole restored)
  makes the prover produce counterexamples — the proof is not vacuous;
* a counterexample round-trips through the ddmin bridge into a corpus
  entry that the real (fixed) verifier rejects on replay.

Plus unit coverage for the symbolic-word machinery the driver rides on.
"""

from __future__ import annotations

import pytest

from repro.core.verifier import Verifier, VerifierPolicy
from repro.prove import (
    CONTEXTS,
    Counterexample,
    Field,
    InstructionClass,
    NeedSplit,
    SymInt,
    SymWord,
    WeakenedVerifier,
    analyze_word,
    class_by_name,
    context_words,
    counterexample_entry,
    default_classes,
    nightly_classes,
    probe_word,
    prove_class,
    render_reports,
    violating,
)

#: ldr x0, [x21], #8 — the word behind the PR-2 store-only hole.
WRITEBACK_X21 = 0xF84086A0

#: A small ldst-post slice: full imm9 symbolically, registers narrowed to
#: the interesting ones (reserved bases, sp, work regs).  48 shapes.
LDST_POST_SLICE = InstructionClass(
    name="ldst-post-slice",
    description="ldst-post with registers narrowed to the boundary cases",
    template=0x38000400,
    fields=(
        Field("size", 30, 2, values=(3,)),
        Field("v", 26, 1, values=(0,)),
        Field("opc", 22, 2, values=(0, 1)),
        Field("imm9", 12, 9),
        Field("rn", 5, 5, values=(0, 5, 18, 21, 28, 31)),
        Field("rt", 0, 5, values=(0, 22, 30, 31)),
    ),
    sym="imm9",
)


class TestEnumeration:
    def test_registry_names_unique(self):
        names = [c.name for c in default_classes() + nightly_classes()]
        assert len(names) == len(set(names))

    def test_class_spaces_disjoint(self):
        # Template signature bits (outside any field) must differ pairwise.
        classes = default_classes() + nightly_classes()
        sigs = []
        for c in classes:
            free = 0
            for f in c.fields:
                free |= f.mask
            sigs.append((~free & 0xFFFFFFFF, c.template))
        for i, (mask_a, sig_a) in enumerate(sigs):
            for mask_b, sig_b in sigs[i + 1:]:
                common = mask_a & mask_b
                assert (sig_a & common) != (sig_b & common)

    def test_contains_matches_enumeration(self):
        cls = class_by_name("branch-reg")
        words = set(cls.words())
        assert len(words) == cls.space()
        assert all(cls.contains(w) for w in words)
        assert not cls.contains(0)

    def test_slice_is_inside_the_full_class(self):
        full = class_by_name("ldst-post")
        for word in (0x38000400 | (3 << 30) | (8 << 12) | (21 << 5),
                     WRITEBACK_X21):
            assert full.contains(word)
            assert LDST_POST_SLICE.contains(word)

    def test_unknown_class_name(self):
        with pytest.raises(KeyError):
            class_by_name("no-such-class")


class TestSymbolicWord:
    def test_field_extraction_is_symbolic(self):
        w = SymWord(0x38000400, 12, 9, SymInt(1, 0, 0, 511))
        r = (w >> 12) & 0x1FF
        assert isinstance(r, SymInt)
        assert (r.a, r.b, r.flo, r.fhi) == (1, 0, 0, 511)

    def test_bits_outside_field_are_concrete(self):
        w = SymWord(0x38000400, 12, 9, SymInt(1, 0, 0, 511))
        assert (w >> 22) & 0x3FF == 0xE0
        assert (w >> 0) & 0xFFF == 0x400

    def test_mid_field_shift_block_constant(self):
        # imm9 in [256, 259]: bits 19.. are the same for the whole
        # interval, so a shift landing mid-field stays concrete.
        w = SymWord(0x38000400, 12, 9, SymInt(1, 0, 256, 259))
        assert (w >> 19) & 0x3 == 0x2 & 0x3

    def test_mid_field_shift_splits_at_block_boundary(self):
        w = SymWord(0x38000400, 12, 9, SymInt(1, 0, 0, 511))
        with pytest.raises(NeedSplit) as exc:
            _ = w >> 19
        assert any(0 < p <= 511 for p in exc.value.points)

    def test_symint_comparison_splits(self):
        s = SymInt(1, 0, 0, 511)
        with pytest.raises(NeedSplit):
            bool(s < 256)
        assert bool(SymInt(1, 0, 0, 255) < 256)


class TestBranchRegExhaustive:
    """The whole branch-register space, word by word, both policies."""

    @pytest.mark.parametrize("policy", [VerifierPolicy(),
                                        VerifierPolicy(sandbox_loads=False)],
                             ids=["sandbox", "store-only"])
    def test_exactly_the_guarded_targets_accepted(self, policy):
        report = prove_class(class_by_name("branch-reg"), policy=policy)
        assert report.ok
        assert report.checked == 512
        # br/blr/ret through each of x18/x23/x24/x30: 3 * 4 words.
        assert report.accepted == 12
        assert report.accepted_by_context == {"solo": 12}
        assert report.counterexample_words == 0

    def test_accepted_words_are_the_expected_ones(self):
        verifier = Verifier(VerifierPolicy())
        accepted = [w for w in class_by_name("branch-reg").words()
                    if analyze_word(w, verifier).accepted]
        regs = {(w >> 5) & 0x1F for w in accepted}
        assert regs == {18, 23, 24, 30}


class TestSliceProof:
    @pytest.mark.parametrize("policy", [VerifierPolicy(),
                                        VerifierPolicy(sandbox_loads=False)],
                             ids=["sandbox", "store-only"])
    def test_slice_proves_clean(self, policy):
        report = prove_class(LDST_POST_SLICE, policy=policy,
                             cross_check=4, probe=4)
        assert report.ok, "\n".join(report.lines())
        assert report.checked == LDST_POST_SLICE.space()
        assert report.mismatches == []
        assert report.probe_issues == []
        assert report.accepted > 0


class TestNonVacuity:
    """A weakened verifier must make the prover scream (ISSUE 7)."""

    def test_restored_writeback_hole_is_found(self):
        policy = VerifierPolicy(sandbox_loads=False)
        report = prove_class(LDST_POST_SLICE, policy=policy,
                             verifier=WeakenedVerifier(policy))
        assert not report.ok
        assert report.counterexample_words > 0
        # The exact PR-2 word must be covered by a recorded record.
        assert report.finds(WRITEBACK_X21,
                            sym_lo=LDST_POST_SLICE.sym_field.lo)

    def test_fixed_verifier_rejects_the_same_word(self):
        policy = VerifierPolicy(sandbox_loads=False)
        verdict = analyze_word(WRITEBACK_X21, Verifier(policy))
        assert verdict.decoded and not verdict.accepted

    def test_violating_predicate_matches(self):
        policy = VerifierPolicy(sandbox_loads=False)
        assert not violating([WRITEBACK_X21], policy)
        assert violating([WRITEBACK_X21], policy,
                         verifier=WeakenedVerifier(policy))


class TestCounterexampleBridge:
    def test_entry_from_known_word(self):
        from repro.fuzz import entry_from_words

        entry = entry_from_words("t", [WRITEBACK_X21],
                                 policy=VerifierPolicy(sandbox_loads=False))
        assert entry.text_hex == "a08640f8000020d4"
        assert entry.policy == {"sandbox_loads": False}

    def test_round_trip_to_corpus_and_replay(self):
        from repro.fuzz.corpus import replay_entry

        policy = VerifierPolicy(sandbox_loads=False)
        report = prove_class(LDST_POST_SLICE, policy=policy,
                             verifier=WeakenedVerifier(policy))
        assert report.counterexamples
        cx = report.counterexamples[0]
        entry = counterexample_entry(cx, policy)
        assert entry.kind == "machine" and entry.expect == "reject"
        assert "prove" in entry.description
        # The fixed verifier rejects the entry, so replay is silent.
        assert replay_entry(entry) == []

    def test_shrinking_drops_unneeded_context(self):
        policy = VerifierPolicy(sandbox_loads=False)
        cx = Counterexample(
            klass="ldst-post", policy="store-only",
            context="x30-guard", word=WRITEBACK_X21, reason="r")
        # Build against the weakened verifier: violating() with the real
        # one would refuse every candidate, so shrinking keeps all words.
        from repro.fuzz.shrink import shrink_words
        from repro.prove import violating as _violating

        weak = WeakenedVerifier(policy)
        words = [WRITEBACK_X21] + context_words("x30-guard")
        shrunk = shrink_words(
            words, lambda ws: _violating(ws, policy, verifier=weak))
        assert shrunk == [WRITEBACK_X21]


class TestContexts:
    def test_context_words_encode_round_trip(self):
        from repro.arm64.decoder import decode_word

        for name in CONTEXTS:
            for word in context_words(name):
                assert decode_word(word) is not None

    def test_unknown_context(self):
        with pytest.raises(KeyError):
            context_words("no-such-context")


class TestProbe:
    def test_probe_accepted_word_is_silent(self):
        # str x0, [x21-guarded base]: accepted and well-behaved.
        for seed in range(3):
            assert probe_word(0xF9000240, seed=seed) == []  # str x0, [x18]

    def test_probe_undecodable_word_is_silent(self):
        assert probe_word(0xFFFFFFFF) == []


class TestReportRendering:
    def test_render_is_deterministic(self):
        r1 = prove_class(class_by_name("branch-reg"))
        r2 = prove_class(class_by_name("branch-reg"))
        assert render_reports([r1]) == render_reports([r2])
        assert r1.to_dict() == r2.to_dict()

    def test_report_json_shape(self):
        rep = prove_class(class_by_name("branch-reg"))
        d = rep.to_dict()
        assert d["ok"] is True
        assert d["class"] == "branch-reg"
        assert d["accepted"] == 12

    def test_truncated_report_is_marked(self):
        rep = prove_class(class_by_name("ldst-post"), limit=4)
        assert rep.truncated
        assert "TRUNCATED" in rep.lines()[0]


class TestCli:
    def test_prove_smoke(self, capsys):
        from repro.tools.cli import main

        assert main(["prove", "--class", "branch-reg",
                     "--policy", "sandbox"]) == 0
        out = capsys.readouterr().out
        assert "OK branch-reg [sandbox]" in out
        assert "proved 1/1" in out

    def test_prove_unknown_class_is_a_tool_error(self, capsys):
        from repro.tools.cli import main

        assert main(["prove", "--class", "bogus-name"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro.tools: error:")
        assert "bogus-name" in err

    def test_prove_list(self, capsys):
        from repro.tools.cli import main

        assert main(["prove", "--list"]) == 0
        out = capsys.readouterr().out
        assert "branch-reg" in out and "nightly" in out

"""Exhaustive condition-code and flag-semantics coverage for the emulator.

Every one of the 14 usable ARM64 condition codes is checked against a
Python oracle over signed/unsigned comparisons, via both ``cset`` and
``b.cond`` — these drive the verifier-relevant control flow, so they must
be exactly right.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .conftest import run_asm
from .test_emulator import regs_after

U64 = 2**64


def _cmp_flags(a, b):
    """NZCV after ``cmp a, b`` (64-bit)."""
    result = (a - b) % U64
    n = result >> 63
    z = 1 if result == 0 else 0
    c = 1 if a >= b else 0  # no borrow
    sa = a - U64 if a >> 63 else a
    sb = b - U64 if b >> 63 else b
    v = 1 if (sa - sb) != (result - U64 if result >> 63 else result) else 0
    return n, z, c, v


ORACLE = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "cs": lambda a, b: a >= b,  # unsigned >=
    "cc": lambda a, b: a < b,  # unsigned <
    "hi": lambda a, b: a > b,  # unsigned >
    "ls": lambda a, b: a <= b,  # unsigned <=
    "mi": lambda a, b: (a - b) % U64 >> 63 == 1,
    "pl": lambda a, b: (a - b) % U64 >> 63 == 0,
    "ge": lambda a, b: _signed(a) >= _signed(b),
    "lt": lambda a, b: _signed(a) < _signed(b),
    "gt": lambda a, b: _signed(a) > _signed(b),
    "le": lambda a, b: _signed(a) <= _signed(b),
    "vs": lambda a, b: _overflows(a, b),
    "vc": lambda a, b: not _overflows(a, b),
}


def _signed(x):
    return x - U64 if x >> 63 else x


def _overflows(a, b):
    diff = _signed(a) - _signed(b)
    return not (-(2**63) <= diff < 2**63)


def _load64(reg, value):
    lines = [f"movz {reg}, #{value & 0xFFFF}"]
    for shift in (16, 32, 48):
        chunk = (value >> shift) & 0xFFFF
        if chunk:
            lines.append(f"movk {reg}, #{chunk}, lsl #{shift}")
    return "\n ".join(lines)


PAIRS = [
    (0, 0),
    (1, 0),
    (0, 1),
    (5, 5),
    (2**63, 1),
    (1, 2**63),
    (2**63 - 1, 2**64 - 1),
    (2**64 - 1, 1),
    (2**63, 2**63),
    (0x1234, 0xFFFF_FFFF_FFFF_0000),
]


class TestConditionCodes:
    @pytest.mark.parametrize("cond", sorted(ORACLE))
    @pytest.mark.parametrize("a,b", PAIRS)
    def test_cset_matches_oracle(self, cond, a, b):
        cpu = regs_after(
            f"{_load64('x1', a)}\n {_load64('x2', b)}\n"
            f" cmp x1, x2\n cset x0, {cond}"
        )
        assert cpu.regs[0] == int(ORACLE[cond](a, b)), (cond, a, b)

    @pytest.mark.parametrize("cond", sorted(ORACLE))
    def test_branch_agrees_with_cset(self, cond):
        a, b = 7, 2**63 + 3
        cpu = regs_after(
            f"{_load64('x1', a)}\n {_load64('x2', b)}\n"
            f" cmp x1, x2\n"
            f" mov x0, #0\n"
            f" b.{cond} taken\n"
            f" b done\n"
            f"taken: mov x0, #1\n"
            f"done:"
        )
        assert cpu.regs[0] == int(ORACLE[cond](a, b))

    @given(st.integers(min_value=0, max_value=U64 - 1),
           st.integers(min_value=0, max_value=U64 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_unsigned_comparisons(self, a, b):
        cpu = regs_after(
            f"{_load64('x1', a)}\n {_load64('x2', b)}\n"
            " cmp x1, x2\n cset x0, hi\n cset x3, ls\n"
            " cset x4, cs\n cset x5, cc"
        )
        assert cpu.regs[0] == int(a > b)
        assert cpu.regs[3] == int(a <= b)
        assert cpu.regs[4] == int(a >= b)
        assert cpu.regs[5] == int(a < b)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
           st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_signed_comparisons(self, sa, sb):
        a, b = sa % U64, sb % U64
        cpu = regs_after(
            f"{_load64('x1', a)}\n {_load64('x2', b)}\n"
            " cmp x1, x2\n cset x0, gt\n cset x3, le\n"
            " cset x4, ge\n cset x5, lt"
        )
        assert cpu.regs[0] == int(sa > sb)
        assert cpu.regs[3] == int(sa <= sb)
        assert cpu.regs[4] == int(sa >= sb)
        assert cpu.regs[5] == int(sa < sb)


class TestFlagSetters:
    def test_32bit_flags_differ_from_64bit(self):
        # 0x1_0000_0000 - 1: zero in 32-bit arithmetic, nonzero in 64-bit.
        cpu = regs_after(
            "movz x1, #1, lsl #32\n subs w0, w1, #0\n cset x2, eq\n"
            " subs x0, x1, #0\n cset x3, eq"
        )
        assert cpu.regs[2] == 1  # w-view of x1 is 0
        assert cpu.regs[3] == 0

    def test_ands_clears_cv(self):
        cpu = regs_after(
            "movn x0, #0\n adds x1, x0, x0\n"  # sets C
            " ands x2, x0, x0\n cset x3, cs"
        )
        assert cpu.regs[3] == 0

    def test_cmn(self):
        cpu = regs_after("movn x0, #0\n cmn x0, #1\n cset x1, eq")
        assert cpu.regs[1] == 1  # -1 + 1 == 0

    def test_ccmp_taken_path(self):
        cpu = regs_after(
            "mov x0, #5\n cmp x0, #5\n"
            " ccmp x0, #3, #0, eq\n"  # eq holds: flags = cmp(5, 3)
            " cset x1, hi"
        )
        assert cpu.regs[1] == 1

    def test_ccmp_untaken_uses_nzcv_imm(self):
        cpu = regs_after(
            "mov x0, #5\n cmp x0, #6\n"
            " ccmp x0, #3, #4, eq\n"  # eq fails: NZCV = 0b0100 (Z)
            " cset x1, eq"
        )
        assert cpu.regs[1] == 1

    def test_fcmp_unordered_sets_c_and_v(self):
        cpu = regs_after(
            "movz x0, #0x7ff8, lsl #48\n fmov d0, x0\n"  # quiet NaN
            " fmov d1, #1.0\n fcmp d0, d1\n"
            " cset x1, vs\n cset x2, cs\n cset x3, eq"
        )
        assert cpu.regs[1] == 1 and cpu.regs[2] == 1 and cpu.regs[3] == 0

"""Tests for the §7.2 x86-64 port design study."""

import pytest

from repro.x86 import (
    X86RewriteError,
    parse_x86,
    print_x86,
    rewrite_x86,
    verify_x86,
)
from repro.x86.isa import MemRef, reg64_of


def lines_of(text):
    return [l.strip() for l in text.splitlines()
            if l.strip() and not l.strip().startswith(".")]


class TestIsa:
    def test_reg_canonicalization(self):
        assert reg64_of("%eax") == "rax"
        assert reg64_of("%r15d") == "r15"
        assert reg64_of("%rsp") == "rsp"
        assert reg64_of("%nope") is None

    def test_parse_memory_operand(self):
        program = parse_x86("movq 8(%rdi), %rax\n")
        inst = program.instructions()[0]
        assert inst.mem == MemRef(disp=8, base="rdi")

    def test_parse_indexed(self):
        program = parse_x86("movq 16(%rdi, %rsi, 8), %rax\n")
        assert program.instructions()[0].mem == MemRef(
            disp=16, base="rdi", index="rsi", scale=8
        )

    def test_parse_gs_segment(self):
        program = parse_x86("movq %gs:8(%r15), %rax\n")
        mem = program.instructions()[0].mem
        assert mem.segment == "gs" and mem.base == "r15" and mem.disp == 8

    def test_gs_absolute(self):
        program = parse_x86("addq %gs:0, %r15\n")
        mem = program.instructions()[0].mem
        assert mem.segment == "gs" and mem.base is None and mem.disp == 0

    def test_roundtrip(self):
        src = "f:\n\tmovq 8(%rdi), %rax\n\tret\n"
        assert print_x86(parse_x86(src)) == src


class TestRewriter:
    def test_load_guarded_through_gs(self):
        out = lines_of(rewrite_x86("movq 8(%rdi), %rax\n"))
        assert out == [
            "movl %edi, %r15d",
            "movq %gs:8(%r15), %rax",
        ]

    def test_store_guarded(self):
        out = lines_of(rewrite_x86("movq %rax, 16(%rsi)\n"))
        assert out == [
            "movl %esi, %r15d",
            "movq %rax, %gs:16(%r15)",
        ]

    def test_indexed_access_folded_with_lea(self):
        out = lines_of(rewrite_x86("movq (%rdi, %rsi, 8), %rax\n"))
        assert out == [
            "leal (%rdi, %rsi, 8), %r15d",
            "movq %gs:(%r15), %rax",
        ]

    def test_rsp_relative_free(self):
        out = lines_of(rewrite_x86("movq 24(%rsp), %rax\n"))
        assert out == ["movq 24(%rsp), %rax"]

    def test_push_pop_free(self):
        out = lines_of(rewrite_x86("push %rbp\n pop %rbp\n"))
        assert out == ["push %rbp", "pop %rbp"]

    def test_indirect_jump_guard_and_rebase(self):
        out = lines_of(rewrite_x86("jmp *%rax\n"))
        assert out == [
            "movl %eax, %r15d",
            "addq %gs:0, %r15",
            "jmp *%r15",
        ]

    def test_indirect_call(self):
        out = lines_of(rewrite_x86("call *%rdx\n"))
        assert out[-1] == "call *%r15"

    def test_function_labels_get_endbr64(self):
        out = rewrite_x86("func:\n ret\n.Llocal:\n ret\n")
        lines = lines_of(out)
        assert lines[lines.index("func:") + 1] == "endbr64"
        assert ".Llocal:" in out
        # Local labels don't need landing pads.
        idx = [l.strip() for l in out.splitlines()].index(".Llocal:")
        assert "endbr64" not in out.splitlines()[idx + 1]

    def test_rsp_small_with_access_elided(self):
        out = lines_of(rewrite_x86("subq $32, %rsp\n movq %rax, (%rsp)\n"))
        assert out == ["subq $32, %rsp", "movq %rax, (%rsp)"]

    def test_rsp_large_guarded(self):
        out = lines_of(rewrite_x86("subq $4096, %rsp\n ret\n"))
        assert out[:3] == ["subq $4096, %rsp", "movl %esp, %esp",
                           "addq %gs:0, %rsp"]

    def test_r15_in_input_rejected(self):
        with pytest.raises(X86RewriteError):
            rewrite_x86("movq %r15, %rax\n")

    def test_syscall_rejected(self):
        with pytest.raises(X86RewriteError):
            rewrite_x86("syscall\n")

    def test_gs_in_input_rejected(self):
        with pytest.raises(X86RewriteError):
            rewrite_x86("movq %gs:8(%rax), %rbx\n")


class TestVerifier:
    def assert_ok(self, src):
        violations = verify_x86(src)
        assert not violations, violations

    def assert_rejected(self, src, fragment):
        reasons = " | ".join(v.reason for v in verify_x86(src))
        assert fragment in reasons, reasons

    def test_naked_access_rejected(self):
        self.assert_rejected("movq 8(%rdi), %rax\n", "unguarded memory")

    def test_guarded_access_accepted(self):
        self.assert_ok("movl %edi, %r15d\n movq %gs:8(%r15), %rax\n")

    def test_gs_without_guard_rejected(self):
        self.assert_rejected("movq %gs:8(%r15), %rax\n",
                             "without a preceding guard")

    def test_r15_64bit_write_rejected(self):
        self.assert_rejected("movq %rax, %r15\n", "%r15 modified")

    def test_rebase_needs_guard_before(self):
        self.assert_rejected("addq %gs:0, %r15\n", "without a preceding")

    def test_indirect_branch_needs_rebase(self):
        self.assert_rejected("movl %eax, %r15d\n jmp *%r15\n",
                             "without a guard+rebase")
        self.assert_ok(
            "movl %eax, %r15d\n addq %gs:0, %r15\n jmp *%r15\n"
        )

    def test_indirect_through_other_register(self):
        self.assert_rejected("jmp *%rax\n", "unguarded")

    def test_missing_endbr64(self):
        self.assert_rejected("func:\n ret\n", "endbr64")

    def test_unsafe_rsp(self):
        self.assert_rejected("movq %rax, %rsp\n ret\n",
                             "unsafe rsp modification")

    def test_syscall_rejected(self):
        self.assert_rejected("syscall\n", "unsafe instruction")

    @pytest.mark.parametrize("src", [
        "f:\n movq 8(%rdi), %rax\n movq %rax, (%rsi)\n ret\n",
        "f:\n jmp *%rax\n",
        "f:\n subq $4096, %rsp\n movq %rax, (%rsp)\n ret\n",
        "f:\n movq (%rdi, %rsi, 8), %rax\n ret\n",
        "f:\n push %rbp\n movq 16(%rsp), %rax\n pop %rbp\n ret\n",
    ])
    def test_rewrite_then_verify_property(self, src):
        self.assert_ok(rewrite_x86(src))

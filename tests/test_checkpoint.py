"""Checkpoint/restore, live migration, and elastic rebalancing (ISSUE 6).

The acceptance contract (DESIGN.md §12):

* a run interrupted at any slice boundary, serialized through
  :class:`~repro.checkpoint.Checkpoint` bytes, and resumed in a *fresh*
  runtime is byte-identical to the uninterrupted run — registers, memory,
  metrics, and the full normalized event trace;
* a restored sandbox carries its exact :class:`ResourceQuota` headroom
  (fd / page / instruction), never a fresh quota;
* incremental checkpoints cost O(dirty pages) via COW aliasing;
* on a worker crash the cluster resumes in-flight jobs from their last
  checkpoint (re-executed instructions bounded by the interval), restarts
  the worker after a bounded-jitter exponential backoff, and the batch
  result stays byte-identical;
* :meth:`Cluster.migrate` and :meth:`Cluster.resize` preserve the same
  byte-identity.
"""

import dataclasses

import pytest

from repro.checkpoint import (
    Checkpoint,
    CheckpointSession,
    canonical_registers,
    capture_job,
    memory_digest,
    normalize_events,
    restore_job,
    track_slot_bases,
)
from repro.cluster import Cluster, WarmPool, derive_worker_seed, execute_job
from repro.elf.format import write_elf
from repro.errors import CheckpointError
from repro.fuzz.differential import check_checkpoint
from repro.obs import MetricsHub, Tracer, merge_snapshots
from repro.robustness import WorkerSupervisor
from repro.runtime import Runtime, RuntimeCall
from repro.runtime.runtime import ResourceQuota
from repro.runtime.vfs import O_RDONLY
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program, prologue, rt_exit, rtcall

FORKER = prologue() + rtcall(RuntimeCall.FORK) + """
    cbnz x0, parent
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #6
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #5
""" + rt_exit() + """
parent:
    adrp x1, status
    add x1, x1, :lo12:status
    mov x0, x1
""" + rtcall(RuntimeCall.WAIT) + """
    mov x3, #200
loop:
    sub x3, x3, #1
    cbnz x3, loop
    mov x0, #1
    adrp x1, msg2
    add x1, x1, :lo12:msg2
    mov x2, #7
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #9
""" + rt_exit() + """
.data
.balign 8
status: .quad 0
.rodata
msg: .asciz "child."
msg2: .asciz "parent."
"""

# Child blocks reading the pipe while the parent spins, so mid-run
# checkpoints catch a BLOCKED process with a pending runtime call.
PIPE_BLOCK = prologue() + """
    adrp x19, fds
    add x19, x19, :lo12:fds
    mov x0, x19
""" + rtcall(RuntimeCall.PIPE) + rtcall(RuntimeCall.FORK) + """
    cbnz x0, parent
    ldr w20, [x19]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x0, x20
    mov x2, #1
""" + rtcall(RuntimeCall.READ) + """
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]
    add x0, x0, #1
""" + rt_exit() + """
parent:
    mov x3, #300
spin:
    sub x3, x3, #1
    cbnz x3, spin
    ldr w20, [x19, #4]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #65
    strb w2, [x1]
    mov x0, x20
    mov x2, #1
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #0
""" + rtcall(RuntimeCall.WAIT) + """
    mov x0, #0
""" + rt_exit() + """
.data
.balign 8
fds: .skip 8
buf: .skip 8
"""

WRITER = prologue() + """
    mov x0, #1
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #10
""" + rtcall(RuntimeCall.WRITE) + """
    mov x0, #0
""" + rt_exit() + """
.rodata
msg: .asciz "cluster ok"
"""


@pytest.fixture(scope="module")
def forker_elf():
    return compile_lfi(FORKER).elf


def observed(timeslice=50):
    """A fresh fully-observed runtime: (runtime, tracer, hub, bases)."""
    runtime = Runtime(model=None, timeslice=timeslice)
    tracer = Tracer(record=True)
    tracer.attach(runtime)
    hub = MetricsHub().attach(tracer, runtime)
    bases = track_slot_bases(runtime, tracer)
    return runtime, tracer, hub, bases


def take(runtime, proc, hub=None):
    return capture_job(runtime, proc, hub,
                       consumed_instructions=runtime.machine.instret,
                       consumed_cycles=runtime.machine.cycles)


class TestRoundTrip:
    def test_split_run_byte_identical(self, forker_elf):
        """The tentpole contract, asserted piece by piece."""
        rt1, tr1, hub1, b1 = observed()
        p1 = rt1.spawn(forker_elf)
        assert rt1.run_bounded(p1, 10_000_000)
        ref_events = normalize_events(tr1.events, b1, pid_base=p1.pid)
        ref_metrics = hub1.state_dict(pid_base=p1.pid)

        rt2, tr2, hub2, b2 = observed()
        p2 = rt2.spawn(forker_elf)
        assert not rt2.run_bounded(p2, 120)
        ckpt = Checkpoint.from_bytes(take(rt2, p2, hub2).to_bytes())
        phase1 = normalize_events(tr2.events, b2, pid_base=p2.pid)

        rt3, tr3, hub3, b3 = observed()
        p3 = restore_job(rt3, ckpt, hub3)
        assert rt3.run_bounded(p3, 10_000_000)

        assert rt3.stdout_of(p3) == rt1.stdout_of(p1) == "child.parent."
        assert p3.exit_code == p1.exit_code == 9
        assert p3.instructions == p1.instructions
        assert canonical_registers(p3.registers, p3.layout) \
            == canonical_registers(p1.registers, p1.layout)
        assert memory_digest(rt3.memory, p3.layout) \
            == memory_digest(rt1.memory, p1.layout)
        assert hub3.state_dict(pid_base=p3.pid) == ref_metrics
        phase2 = normalize_events(
            tr3.events, b3, ts_base=-ckpt.consumed_cycles,
            pid_base=p3.pid, instret_base=-ckpt.consumed_instructions)
        assert phase1 + phase2 == ref_events

    def test_oracle_clean_on_fork_and_pipes(self):
        for source in (FORKER, PIPE_BLOCK):
            findings = check_checkpoint(compile_lfi(source).elf)
            assert findings == [], [f.line() for f in findings]

    def test_oracle_clean_with_stdin(self):
        reader = prologue() + """
            mov x0, #0
            adrp x1, buf
            add x1, x1, :lo12:buf
            mov x2, #4
        """ + rtcall(RuntimeCall.READ) + """
            mov x0, #1
            mov x2, #4
        """ + rtcall(RuntimeCall.WRITE) + """
            mov x0, #0
        """ + rt_exit() + """
        .data
        buf: .skip 8
        """
        findings = check_checkpoint(compile_lfi(reader).elf, points=(8, 30),
                                    stdin=b"ping")
        assert findings == [], [f.line() for f in findings]

    def test_serialization_deterministic(self, forker_elf):
        """Two identical captures from two fresh runs: identical bytes."""
        blobs = []
        for _ in range(2):
            runtime = Runtime(model=None, timeslice=50)
            proc = runtime.spawn(forker_elf)
            assert not runtime.run_bounded(proc, 120)
            blobs.append(take(runtime, proc).to_bytes())
        assert blobs[0] == blobs[1]

    def test_digest_survives_byte_roundtrip(self, forker_elf):
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(forker_elf)
        assert not runtime.run_bounded(proc, 120)
        ckpt = take(runtime, proc)
        again = Checkpoint.from_bytes(ckpt.to_bytes())
        assert again.digest() == ckpt.digest()
        assert again.to_bytes() == ckpt.to_bytes()

    def test_version_mismatch_rejected(self, forker_elf):
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(forker_elf)
        assert not runtime.run_bounded(proc, 120)
        bad = dataclasses.replace(take(runtime, proc), version=99)
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(bad.to_bytes())

    def test_restore_preserves_absolute_pids(self):
        """The guest has observed its pids; restore must reuse them."""
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(compile_lfi(PIPE_BLOCK).elf)
        # Parent is mid-spin, child is blocked on the pipe read: two
        # live processes, one of them with a pending runtime call.
        assert not runtime.run_bounded(proc, 200)
        ckpt = take(runtime, proc)
        assert len(ckpt.procs) == 2

        target = Runtime(model=None, timeslice=50)
        target._next_pid = 7  # a busy worker's pid high-water mark
        restored = restore_job(target, ckpt)
        assert restored.pid == proc.pid
        assert target._next_pid >= 7  # high-water mark never rolls back
        assert sorted(p - restored.pid for p in target.processes) == [0, 1]

    def test_pid_collision_rejected(self, forker_elf):
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(forker_elf)
        assert not runtime.run_bounded(proc, 120)
        ckpt = take(runtime, proc)
        target = Runtime(model=None, timeslice=50)
        target.spawn(forker_elf)  # occupies the checkpoint's root pid
        with pytest.raises(CheckpointError):
            restore_job(target, ckpt)

    def test_unlinked_file_handle_carried_by_value(self):
        """An open fd whose path was unlinked survives by content."""
        runtime = Runtime(model=None, timeslice=5)
        proc = runtime.spawn(compile_lfi(WRITER).elf)
        runtime.vfs.write_file("/scratch", b"hello")
        handle = runtime.vfs.open("/scratch", O_RDONLY)
        proc.fds[3] = handle
        assert handle.read(2) == b"he"
        runtime.vfs.unlink("/scratch")
        assert not runtime.run_bounded(proc, 4)

        restored = restore_job(Runtime(model=None, timeslice=5),
                               take(runtime, proc))
        assert restored.fds[3].read(3) == b"llo"  # offset and data intact


class TestQuotaCarryover:
    def test_restored_quota_exact_headroom(self, forker_elf):
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(forker_elf)
        quota = ResourceQuota(max_mapped_pages=64, max_fds=6,
                              max_instructions=5_000)
        runtime.set_quota(proc, quota)
        assert not runtime.run_bounded(proc, 120)

        target = Runtime(model=None, timeslice=50)
        restored = restore_job(target, take(runtime, proc))
        carried = target.quotas[restored.pid]
        assert carried == quota  # the limits, not a fresh default
        # ... and the *consumption* against them travelled too: identical
        # instruction count means identical remaining headroom.
        assert restored.instructions == proc.instructions
        assert len(restored.fds) == len(proc.fds)

    def test_quota_trips_at_same_point_after_restore(self):
        """A limit crossed *after* the checkpoint fires identically."""
        elf = compile_lfi(busy_program(3, 6_000)).elf

        reference = Runtime(model=None, timeslice=50)
        ref = reference.spawn(elf)
        reference.set_quota(ref, ResourceQuota(max_instructions=2_000))
        assert reference.run_bounded(ref, 1_000_000)

        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(elf)
        runtime.set_quota(proc, ResourceQuota(max_instructions=2_000))
        assert not runtime.run_bounded(proc, 700)  # before the limit

        target = Runtime(model=None, timeslice=50)
        restored = restore_job(target, take(runtime, proc))
        assert target.run_bounded(restored, 1_000_000)
        assert restored.exit_code == ref.exit_code == 128 + 9
        assert restored.instructions == ref.instructions
        assert [f.kind for f in target.faults] == ["quota"]

    def test_quota_is_per_pid_across_clones(self, forker_elf):
        """Only the quota-holding pid carries one through a checkpoint."""
        runtime = Runtime(model=None, timeslice=50)
        pool = WarmPool(runtime)
        data = write_elf(forker_elf)
        first = pool.spawn(data)
        second = pool.spawn(data)  # spawn_clone sibling, no quota
        runtime.set_quota(first, ResourceQuota(max_instructions=9_999))
        assert not runtime.run_bounded(first, 120)
        ckpt = take(runtime, first)

        target = Runtime(model=None, timeslice=50)
        restored = restore_job(target, ckpt)
        assert target.quotas[restored.pid].max_instructions == 9_999
        assert set(target.quotas) == {restored.pid}
        assert second.pid not in target.processes


STORE_SPIN = prologue() + """
    adrp x19, arr
    add x19, x19, :lo12:arr
    movz x1, #2000
loop:
    str x1, [x19]
    sub x1, x1, #1
    cbnz x1, loop
    mov x0, #0
""" + rt_exit() + """
.data
.balign 8
arr: .skip 64
"""


class TestIncrementalSession:
    def test_dirty_page_tracking(self):
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(compile_lfi(STORE_SPIN).elf)
        session = CheckpointSession(runtime, proc)
        assert not runtime.run_bounded(proc, 120)
        first = session.capture(
            consumed_instructions=runtime.machine.instret,
            consumed_cycles=runtime.machine.cycles)
        assert first.dirty_pages == first.total_pages  # cold capture
        assert first.stats["seq"] == 1

        assert not runtime.run_bounded(proc, 120)
        second = session.capture(
            consumed_instructions=runtime.machine.instret,
            consumed_cycles=runtime.machine.cycles)
        assert second.stats["seq"] == 2
        # A few slices touch a few pages; code/rodata stayed clean.
        assert 0 < second.dirty_pages < second.total_pages

    def test_incremental_capture_matches_cold_capture(self, forker_elf):
        """Cached clean pages must reproduce exactly what a from-scratch
        capture of the same state sees."""
        runtime = Runtime(model=None, timeslice=50)
        proc = runtime.spawn(forker_elf)
        session = CheckpointSession(runtime, proc)
        assert not runtime.run_bounded(proc, 120)
        session.capture(consumed_instructions=runtime.machine.instret,
                        consumed_cycles=runtime.machine.cycles)
        assert not runtime.run_bounded(proc, 120)
        incremental = session.capture(
            consumed_instructions=runtime.machine.instret,
            consumed_cycles=runtime.machine.cycles)
        cold = take(runtime, proc)
        assert incremental.digest() == cold.digest()


class TestBackoffAndOpsMetrics:
    def test_backoff_deterministic_per_seed(self):
        def timeline(seed):
            supervisor = WorkerSupervisor(seed=seed)
            out = []
            for _ in range(4):
                supervisor.worker_crashed(0, 100, 1, 0)
                out.append(supervisor.next_backoff(0))
            return out

        assert timeline(3) == timeline(3)
        assert timeline(3) != timeline(4)

    def test_backoff_exponential_bounded_jitter(self):
        supervisor = WorkerSupervisor(backoff_unit=0.05, max_backoff=2.0,
                                      jitter_frac=0.25, seed=0)
        base = supervisor.policy.backoff_base
        factor = supervisor.policy.backoff_factor
        for _ in range(8):
            supervisor.worker_crashed(0, 100, 1, 0)
            exponent = max(0, supervisor.restarts(0) - 1)
            expected = min(2.0, 0.05 * base * factor ** exponent)
            delay = supervisor.next_backoff(0)
            assert expected <= delay <= expected * 1.25
        assert supervisor.next_backoff(0) <= 2.0 * 1.25  # hard cap

    def test_host_metrics_merge(self):
        hub = MetricsHub()
        hub.host_counter("worker.restarts").inc(2)
        hub.host_histogram("job.restore_latency_s",
                           (0.01, 0.1)).observe(0.05)
        merged = merge_snapshots([("ops", hub.snapshot())])
        assert "ops.host.worker.restarts 2" in merged
        assert "ops.host.job.restore_latency_s.le_0.1 1" in merged
        assert "ops.host.job.restore_latency_s.count 1" in merged


LONG_BATCH_KW = dict(checkpoint_interval=50_000, timeslice=10_000)


@pytest.fixture(scope="module")
def long_batch():
    long_elf = write_elf(compile_lfi(busy_program(7, 400_000)).elf)
    short_elf = write_elf(compile_lfi(busy_program(3, 4_000)).elf)
    return [long_elf, short_elf, long_elf, short_elf, long_elf]


def run_long_batch(batch, workers, hook=None, **kwargs):
    with Cluster(workers=workers, **LONG_BATCH_KW, **kwargs) as cluster:
        for program in batch:
            cluster.submit(program)
        if hook is not None:
            hook(cluster)
        results = cluster.drain()
        return ([r.deterministic_key() for r in results],
                cluster.metrics_report(), cluster.fleet_report())


@pytest.fixture(scope="module")
def long_reference(long_batch):
    keys, report, _ = run_long_batch(long_batch, workers=1)
    return keys, report


class TestClusterRecovery:
    def test_reexecuted_instructions_bounded_by_interval(self):
        """Crash recovery redoes at most one checkpoint interval."""
        interval, timeslice = 400, 100
        elf = write_elf(compile_lfi(busy_program(4, 3_000)).elf)
        job = {"job_id": 0, "program": elf, "stdin": b"",
               "max_instructions": None}

        reference = execute_job(Runtime(model=None, timeslice=timeslice),
                                None, dict(job))

        sunk = []
        crashed = Runtime(model=None, timeslice=timeslice)
        yielded = execute_job(
            crashed, None, dict(job), checkpoint_interval=interval,
            checkpoint_sink=sunk.append,
            # "Crash" at the third checkpoint boundary: the front-end
            # only ever saw the first two checkpoints.
            control_poll=lambda job_id: len(sunk) >= 2)
        assert yielded["kind"] == "yield"
        crash_point = Checkpoint.from_bytes(
            yielded["checkpoint"]).consumed_instructions
        last_seen = Checkpoint.from_bytes(
            sunk[-1].to_bytes()).consumed_instructions

        resumed = execute_job(
            Runtime(model=None, timeslice=timeslice), None,
            {**job, "resume": sunk[-1].to_bytes()},
            checkpoint_interval=interval)
        # Work redone = progress lost between the last delivered
        # checkpoint and the crash: strictly bounded by the interval
        # (plus the slice the pause rounded up to).
        assert 0 < crash_point - last_seen <= interval + timeslice
        assert resumed["diag"]["resumed_at"] == last_seen
        for key in ("exit_code", "stdout", "stderr", "metrics", "faults"):
            assert resumed[key] == reference[key]
        assert resumed["diag"]["instructions"] \
            == reference["diag"]["instructions"]

    def test_worker_kill_recovery_byte_identical(self, long_batch,
                                                 long_reference):
        """chaos kills worker 0 mid-first-job; the batch still matches."""
        keys, report, fleet = run_long_batch(long_batch, workers=2,
                                             chaos={0: 0})
        assert (keys, report) == long_reference
        assert fleet["restarts"] == 1
        assert fleet["restores"] >= 1  # resumed from a checkpoint,
        #                                not re-run from scratch

    def test_migrate_byte_identical(self, long_batch, long_reference):
        def hook(cluster):
            cluster.migrate(0, 1)

        keys, report, fleet = run_long_batch(long_batch, workers=2,
                                             hook=hook)
        assert (keys, report) == long_reference
        assert fleet["migrations"] == 1
        assert fleet["restores"] >= 1

    def test_resize_byte_identical(self, long_batch, long_reference):
        def hook(cluster):
            cluster.resize(4)
            cluster.resize(1)

        keys, report, fleet = run_long_batch(long_batch, workers=2,
                                             hook=hook)
        assert (keys, report) == long_reference
        assert fleet["workers"] == 1

    def test_chaos_faults_seeded_replay(self):
        """Seeded sandbox-level fault injection replays byte-identically."""
        elf = write_elf(compile_lfi(busy_program(2, 30_000)).elf)

        def run():
            with Cluster(workers=1, seed=3, chaos_faults={0: 2},
                         timeslice=5_000) as cluster:
                for _ in range(3):
                    cluster.submit(elf)
                return [r.deterministic_key() for r in cluster.drain()]

        first, second = run(), run()
        assert first == second
        # This seed's plan corrupts exactly the second job: its guarded
        # pointer loses the base and traps, while its siblings run clean.
        assert [r[1] for r in first] == [2, 139, 2]
        assert [r[5] for r in first] == [(), ("segv",), ()]

    def test_ops_report_counters(self, long_batch):
        with Cluster(workers=2, chaos={0: 0}, **LONG_BATCH_KW) as cluster:
            for program in long_batch:
                cluster.submit(program)
            cluster.drain()
            ops = cluster.ops_report()
        assert "ops.host.worker.restarts 1" in ops
        assert "ops.host.job.restores 1" in ops
        assert "ops.host.job.restore_latency_s.count 1" in ops
        assert cluster.ops.host_counter("job.checkpoints").value > 0

    def test_derive_worker_seed_decorrelated(self):
        seeds = {derive_worker_seed(0, w, g)
                 for w in range(4) for g in range(3)}
        assert len(seeds) == 12
        assert derive_worker_seed(1, 2, 3) == derive_worker_seed(1, 2, 3)

"""repro.serve: admission control, hot-reload edge cases, determinism."""

import asyncio

import pytest

from repro.elf.format import write_elf
from repro.errors import Overloaded, ServeError, StalePolicy
from repro.serve import (
    AsyncGateway,
    Autoscale,
    Gateway,
    PolicyStore,
    TenantLoad,
    TenantPolicy,
    load_config,
    run_loadgen,
)
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program


@pytest.fixture(scope="module")
def images():
    """Compile each busy image once for the whole module."""
    def build(value, target):
        return write_elf(compile_lfi(busy_program(value, target)).elf)
    return {
        "short": build(7, 3000),      # ~3 ms of virtual time
        "long": build(9, 40_000),     # ~40 ms
        "medium": build(5, 20_000),   # ~20 ms
    }


def counter(gateway, name):
    return gateway.hub.host_counter(name).value


# -- policy store ------------------------------------------------------------


class TestPolicyStore:
    def test_monotonic_token_protocol(self):
        store = PolicyStore()
        store.add("a", TenantPolicy())
        assert store.version("a") == 0
        assert store.reload("a", TenantPolicy(priority=2), token=5) == 5
        assert store.version("a") == 5
        assert store.get("a").priority == 2

    def test_stale_token_rejected(self):
        store = PolicyStore()
        store.add("a", TenantPolicy())
        store.reload("a", TenantPolicy(), token=3)
        with pytest.raises(StalePolicy, match="token 3 <= current"):
            store.reload("a", TenantPolicy(), token=3)
        with pytest.raises(StalePolicy):
            store.reload("a", TenantPolicy(), token=1)
        assert store.version("a") == 3  # refused reloads change nothing

    def test_unknown_tenant_and_duplicates(self):
        store = PolicyStore()
        store.add("a", TenantPolicy())
        with pytest.raises(ServeError):
            store.add("a", TenantPolicy())
        with pytest.raises(ServeError):
            store.reload("ghost", TenantPolicy(), token=1)

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            TenantPolicy(rate=0)
        with pytest.raises(ServeError):
            TenantPolicy(priority=-1)
        with pytest.raises(ServeError):
            TenantPolicy(queue_limit=0)
        with pytest.raises(ServeError):
            TenantPolicy(quota={"max_threads": 4})


# -- admission ---------------------------------------------------------------


class TestAdmission:
    def test_unknown_tenant_sheds_typed(self, images):
        gateway = Gateway({"a": TenantPolicy()}, lanes=1)
        with pytest.raises(Overloaded, match="unknown-tenant"):
            gateway.offer("ghost", images["short"])

    def test_token_bucket_throttles(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=10.0, burst=1.0)},
                          lanes=1)
        gateway.offer("a", images["short"])  # consumes the only token
        with pytest.raises(Overloaded, match="throttled") as err:
            gateway.offer("a", images["short"])
        assert err.value.tenant == "a"
        assert counter(gateway, "serve.rejected[reason=throttled,tenant=a]") \
            == 1

    def test_bucket_refills_in_virtual_time(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=10.0, burst=1.0)},
                          lanes=1)
        gateway.offer("a", images["short"], at=0.0)
        gateway.offer("a", images["short"], at=0.01)   # bucket still empty
        gateway.offer("a", images["short"], at=0.25)   # refilled
        results = gateway.drain()
        by_status = sorted((r.status, r.reason) for r in results)
        assert by_status == [("ok", ""), ("ok", ""),
                             ("rejected", "throttled")]

    def test_queue_full_sheds(self, images):
        gateway = Gateway(
            {"a": TenantPolicy(rate=1000.0, burst=100.0, queue_limit=2)},
            lanes=1)
        gateway.offer("a", images["long"])      # occupies the lane
        gateway.offer("a", images["short"])     # queued (1/2)
        gateway.offer("a", images["short"])     # queued (2/2)
        with pytest.raises(Overloaded, match="queue-full"):
            gateway.offer("a", images["short"])
        results = gateway.drain()
        assert sum(1 for r in results if r.status == "ok") == 3
        assert gateway.peak_queued == 2

    def test_priority_classes_dispatch_first(self, images):
        gateway = Gateway(
            {"gold": TenantPolicy(priority=0, rate=100.0, burst=4.0),
             "bronze": TenantPolicy(priority=2, rate=100.0, burst=4.0)},
            lanes=1)
        gateway.offer("bronze", images["long"], at=0.0)   # running
        gateway.offer("bronze", images["short"], at=0.001)
        gateway.offer("gold", images["short"], at=0.002)  # arrives later
        gateway.drain()
        starts = [line for line in gateway.log if " start " in line]
        assert "tenant=bronze" in starts[0]
        assert "tenant=gold" in starts[1]     # jumped the bronze waiter
        assert "tenant=bronze" in starts[2]

    def test_deadline_sheds_at_dispatch_only(self, images):
        gateway = Gateway(
            {"a": TenantPolicy(rate=100.0, burst=4.0, deadline_s=0.01)},
            lanes=1)
        gateway.offer("a", images["long"], at=0.0)     # runs ~40 ms
        late = gateway.offer("a", images["short"], at=0.001)
        results = {r.request_id: r for r in gateway.drain()}
        # The first request started before its deadline expired, so it
        # completes; the waiter expired before a lane freed up.
        assert results[late - 1].status == "ok"
        assert results[late].status == "rejected"
        assert results[late].reason == "deadline"

    def test_warm_spawn_across_requests(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=100.0, burst=8.0)},
                          lanes=1)
        gateway.offer("a", images["short"], at=0.0)
        gateway.offer("a", images["short"], at=0.1)
        results = gateway.drain()
        assert [r.warm for r in results] == [False, True]
        assert counter(gateway, "serve.warm_hits") == 1


# -- policy hot-reload edge cases --------------------------------------------


class TestHotReload:
    def test_reload_applies_without_restart(self, images):
        policies = {"a": TenantPolicy(rate=100.0,
                                      quota={"max_instructions": 80_000})}
        gateway = Gateway(policies, lanes=1, checkpoint_interval=2000)
        gateway.offer("a", images["long"], at=0.0)
        gateway.reload("a", TenantPolicy(rate=100.0,
                                         quota={"max_instructions": 60_000}),
                       token=1, at=0.011)
        result = gateway.drain()[0]
        applied = [line for line in gateway.log if " apply-policy " in line]
        assert len(applied) == 1
        assert f"pid={result.pid}" in applied[0]
        assert f"slot={hex(result.slot)}" in applied[0]
        assert result.status == "ok" and result.exit_code == 9
        assert result.attempts == 1   # never restarted

    def test_stale_scheduled_reload_logged_not_raised(self, images):
        gateway = Gateway({"a": TenantPolicy()}, lanes=1)
        gateway.reload("a", TenantPolicy(), token=2, at=0.01)
        gateway.reload("a", TenantPolicy(), token=2, at=0.02)  # stale dup
        gateway.run(0.1)
        assert counter(gateway, "serve.reloads_stale[tenant=a]") == 1
        assert any(" reload-stale " in line for line in gateway.log)
        assert gateway.store.version("a") == 2

    def test_stale_immediate_reload_raises(self):
        gateway = Gateway({"a": TenantPolicy()}, lanes=1)
        gateway.reload("a", TenantPolicy(), token=1)
        with pytest.raises(StalePolicy):
            gateway.reload("a", TenantPolicy(), token=1)

    def test_quota_shrink_trips_on_next_check_not_retroactively(self,
                                                                images):
        """Shrinking below current usage must not rewind the guest: the
        chunks already executed stand, and the trip lands at the first
        quota check *after* the reload boundary."""
        policies = {"a": TenantPolicy(rate=100.0,
                                      quota={"max_instructions": 80_000})}
        gateway = Gateway(policies, lanes=1, checkpoint_interval=2000)
        gateway.offer("a", images["medium"], at=0.0)   # ~20k instructions
        reload_at = 0.005                              # ~5k already run
        gateway.reload("a", TenantPolicy(rate=100.0,
                                         quota={"max_instructions": 1000}),
                       token=1, at=reload_at)
        result = gateway.drain()[0]
        assert result.exit_code == 128 + 9
        assert "quota" in result.faults
        # Not retroactive: the guest kept everything it had executed
        # before the shrink landed, far beyond the new 1k budget.
        assert result.instructions > 4000
        assert result.finish_s > reload_at

    def test_resumed_request_gets_reloaded_policy(self, images):
        """A checkpoint parked across a crash must not resurrect the
        quota it was checkpointed with: re-dispatch applies the tenant's
        *current* policy."""
        policies = {"a": TenantPolicy(rate=100.0,
                                      quota={"max_instructions": 80_000})}
        gateway = Gateway(policies, lanes=1, checkpoint_interval=2000,
                          chaos={0: 1})  # lane 0 dies at its 1st boundary
        gateway.offer("a", images["medium"], at=0.0)
        # Reload lands while the request is parked awaiting the restart.
        gateway.reload("a", TenantPolicy(rate=100.0,
                                         quota={"max_instructions": 1000}),
                       token=1, at=0.0021)
        result = gateway.drain()[0]
        assert counter(gateway, "serve.crashes") == 1
        assert result.attempts == 2
        assert result.exit_code == 128 + 9      # tight quota applied
        assert "quota" in result.faults

    def test_crash_resumes_from_checkpoint_same_pid(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=100.0)}, lanes=1,
                          checkpoint_interval=2000, chaos={0: 1})
        gateway.offer("a", images["medium"], at=0.0)
        result = gateway.drain()[0]
        assert result.status == "ok" and result.exit_code == 5
        assert result.attempts == 2
        assert counter(gateway, "serve.restarts") == 1
        starts = [line for line in gateway.log if " start " in line]
        assert len(starts) == 2
        # The checkpoint restores the guest's original pid on resume.
        assert f"pid={result.pid}" in starts[0]
        assert f"pid={result.pid}" in starts[1]
        # Total instructions cover the whole program exactly once plus
        # nothing lost: the resume continued from the boundary.
        assert result.instructions >= 20_000


# -- elasticity and migration ------------------------------------------------


class TestElasticity:
    def test_autoscale_up_and_down(self, images):
        gateway = Gateway(
            {"a": TenantPolicy(rate=1000.0, burst=50.0, queue_limit=32)},
            lanes=1, autoscale=Autoscale(min_lanes=1, max_lanes=3,
                                         queue_high=2))
        for i in range(8):
            gateway.offer("a", images["short"], at=0.0001 * (i + 1))
        gateway.drain()
        ups = counter(gateway, "serve.scale_ups")
        downs = counter(gateway, "serve.scale_downs")
        assert ups >= 2
        assert downs >= 2
        assert len(gateway.live_lanes()) == 1   # back at min_lanes

    def test_resize_drains_busy_lane(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=100.0, burst=8.0)},
                          lanes=2, checkpoint_interval=2000)
        gateway.offer("a", images["long"], at=0.0)    # lands on lane 0
        gateway.resize(1, at=0.005)                   # lane 1 idle: gone
        results = gateway.drain()
        assert results[0].status == "ok"
        assert gateway.live_lanes() == [0]
        assert any(" retire lane=1" in line for line in gateway.log)

    def test_migrate_moves_request_keeps_pid(self, images):
        gateway = Gateway({"a": TenantPolicy(rate=100.0, burst=8.0)},
                          lanes=2, checkpoint_interval=2000)
        req = gateway.offer("a", images["long"], at=0.0)
        gateway.migrate(req, to_lane=1, at=0.005)
        result = gateway.drain()[0]
        assert result.status == "ok"
        assert result.lane == 1
        assert counter(gateway, "serve.migrations[tenant=a]") == 1
        starts = [line for line in gateway.log if " start " in line]
        assert "lane=0" in starts[0] and "lane=1" in starts[1]
        assert f"pid={result.pid}" in starts[0]   # pid survives the move


# -- determinism -------------------------------------------------------------


def _replay(seed):
    policies = {
        "gold": TenantPolicy(priority=0, rate=60.0, burst=8.0,
                             queue_limit=8, sla_s=0.05),
        "bronze": TenantPolicy(priority=2, rate=20.0, burst=4.0,
                               queue_limit=4),
    }
    gateway = Gateway(policies, lanes=2, checkpoint_interval=2000,
                      seed=seed)
    loads = [TenantLoad("gold", rate=40.0, target_instructions=3000,
                        value=1),
             TenantLoad("bronze", rate=80.0, target_instructions=4000,
                        value=2)]
    results = run_loadgen(gateway, loads, 0.25, seed=seed)
    return gateway, results


class TestDeterminism:
    def test_seeded_admission_schedule_replays_byte_identically(self):
        g1, r1 = _replay(seed=5)
        g2, r2 = _replay(seed=5)
        assert g1.log == g2.log
        assert [r.deterministic_key() for r in r1] \
            == [r.deterministic_key() for r in r2]
        assert g1.report() == g2.report()

    def test_different_seed_differs(self):
        g1, _ = _replay(seed=5)
        g2, _ = _replay(seed=6)
        assert g1.log != g2.log

    def test_chaos_fault_injection_is_deterministic(self, images):
        def run():
            gateway = Gateway({"a": TenantPolicy(rate=100.0, burst=8.0)},
                              lanes=1, checkpoint_interval=2000,
                              chaos_faults={0: 2}, seed=9)
            gateway.offer("a", images["medium"], at=0.0)
            return [r.deterministic_key() for r in gateway.drain()]
        assert run() == run()


# -- async facade ------------------------------------------------------------


class TestAsyncGateway:
    def test_submit_roundtrip_and_typed_overload(self, images):
        async def scenario():
            # Refill is ~zero, so the bucket stays empty after the first
            # admit no matter how much wall time the await burned.
            policies = {"a": TenantPolicy(rate=0.001, burst=1.0)}
            async with AsyncGateway(policies, lanes=1,
                                    time_scale=500.0) as gw:
                result = await gw.submit("a", images["short"])
                with pytest.raises(Overloaded):
                    await gw.submit("a", images["short"])
                return result
        result = asyncio.run(scenario())
        assert result.status == "ok"
        assert result.exit_code == 7

    def test_submit_requires_started_gateway(self, images):
        gw = AsyncGateway({"a": TenantPolicy()})

        async def scenario():
            with pytest.raises(RuntimeError):
                await gw.submit("a", images["short"])
        asyncio.run(scenario())


# -- config loading ----------------------------------------------------------


class TestLoadConfig:
    def test_full_shape(self):
        kwargs, policies, loads, duration = load_config({
            "lanes": 3, "duration_s": 0.5, "checkpoint_interval": 1000,
            "tenants": {"t": {"priority": 1, "rate": 30, "sla_ms": 100,
                              "quota": {"max_instructions": 10_000},
                              "load": {"rate": 20, "instructions": 2500,
                                       "value": 3}}}})
        assert kwargs == {"lanes": 3, "checkpoint_interval": 1000}
        assert duration == 0.5
        assert policies["t"].sla_s == 0.1
        assert loads[0].target_instructions == 2500

    def test_rejects_unknown_keys(self):
        with pytest.raises(ServeError, match="unknown config keys"):
            load_config({"tenants": {"t": {}}, "lane": 2})
        with pytest.raises(ServeError, match="unknown keys"):
            load_config({"tenants": {"t": {"rte": 10}}})
        with pytest.raises(ServeError, match="JSON object"):
            load_config(["not", "a", "dict"])
        with pytest.raises(ServeError, match="tenants"):
            load_config({"lanes": 2})

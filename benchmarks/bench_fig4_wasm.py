"""Figure 4: LFI vs WebAssembly engines on the 7 Wasm-compatible stand-ins.

Regenerates both panels: overhead over native (LTO) for Wasmtime, stock
Wasm2c, Wasm2c without the compiler barrier, Wasm2c with a pinned heap
register, WAMR, and LFI — and checks the paper's findings:

* LFI has less than half the overhead of the best Wasm configuration
  (Table 4: 6.4-7.3% vs ~15-16%);
* removing the compiler barrier helps Wasm2c a lot, pinning helps more;
* Wasmtime (Cranelift) trails the LLVM-based engines.
"""

import pytest

from repro.baselines import WASM_ENGINES
from repro.core import O2
from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf import format_overhead_table, geomean, lfi_variant, wasm_variant
from repro.workloads import WASM_SUBSET

from .conftest import overheads_for, suite_overheads

VARIANTS = tuple(
    wasm_variant(WASM_ENGINES[name])
    for name in ("wasmtime", "wasm2c", "wasm2c-nobarrier", "wasm2c-pinned",
                 "wamr")
) + (lfi_variant(O2, "LFI"),)

COLUMNS = [v.name for v in VARIANTS]


@pytest.mark.parametrize("model", [GCP_T2A, APPLE_M1], ids=lambda m: m.name)
def test_fig4_wasm_comparison(model):
    table = suite_overheads(WASM_SUBSET, VARIANTS, model)
    print()
    print(format_overhead_table(
        table, columns=COLUMNS,
        title=f"Figure 4 — LFI vs Wasm engines, {model.name}",
    ))

    means = {
        c: geomean([table[b][c] for b in table]) for c in COLUMNS
    }
    # LFI beats every Wasm engine by at least 2x on geomean (§6.2).
    for engine in COLUMNS[:-1]:
        assert means["LFI"] * 2 < means[engine], (engine, means)
    # Barrier removal and pinning are each an improvement (Table 4).
    assert means["wasm2c-nobarrier"] < means["wasm2c"]
    assert means["wasm2c-pinned"] < means["wasm2c-nobarrier"]
    # Cranelift's weaker codegen shows: Wasmtime is the slowest system.
    assert means["wasmtime"] == max(means.values())


def test_fig4_every_benchmark_lfi_wins():
    table = suite_overheads(WASM_SUBSET, VARIANTS, APPLE_M1)
    for bench, row in table.items():
        for engine in COLUMNS[:-1]:
            assert row["LFI"] < row[engine], (bench, engine, row)


def test_fig4_representative_run_benchmark(benchmark):
    from repro.baselines import WASM_ENGINES
    from repro.perf import run_variant, wasm_variant
    from repro.workloads import arena_bss_size, build_benchmark

    asm = build_benchmark("505.mcf", target_instructions=8000)
    bss = arena_bss_size("505.mcf")
    variant = wasm_variant(WASM_ENGINES["wasm2c"])

    def once():
        return run_variant(asm, bss, variant, APPLE_M1)

    metrics = benchmark(once)
    assert metrics.exit_code == 0

"""Open-loop overload serving benchmark (DESIGN.md §14) — BENCH_PR8.json.

The serving gateway's contract under overload, measured in virtual time
(1 virtual second = 1M emulated instructions; lanes run ``model=None``
runtimes so the schedule is deterministic and CI-host independent):

* **SLA under 2x load** — with offered load ~2x the fleet's execution
  capacity, the gold tenants (priority 0) keep p99 latency within their
  SLA while the bronze bulk (priority 2) absorbs the shedding;
* **explicit backpressure** — every shed request carries a typed reason
  (``throttled``/``queue-full``), and the waiting depth never exceeds
  the sum of the per-tenant queue limits: overload cannot grow an
  unbounded queue by construction;
* **goodput** — instructions completed per virtual second stay >= 90%
  of the batch cluster's drain throughput at the same worker count
  (the admission layer does not tax execution);
* **hot-reload** — a policy reload under a monotonic token lands on a
  *running* guest at its next chunk boundary: the guest keeps its pid
  and slot across the reload and completes cleanly.

Run:  python benchmarks/bench_serving.py --out BENCH_PR8.json
"""

import pytest

from repro.elf.format import write_elf
from repro.serve import (
    CLOCK_HZ,
    Gateway,
    TenantLoad,
    TenantPolicy,
    percentile,
    run_loadgen,
)
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import busy_program


def overload_fleet(lanes: int, factor: float = 2.0):
    """Policies + loads offering ``factor`` x the fleet's capacity.

    Capacity is ``lanes`` x 1M instructions per virtual second.  Gold
    offers a modest, SLA-bearing trickle; bronze offers the bulk, far
    beyond what its token buckets and queue bounds will admit.
    """
    capacity = lanes * CLOCK_HZ
    gold_rate = 0.075 * capacity / 3000      # 2 tenants -> 15% of capacity
    bronze_offer = (factor * capacity - 2 * gold_rate * 3000) / (2 * 5000)
    policies = {
        "gold-a": TenantPolicy(priority=0, rate=gold_rate * 1.5, burst=8.0,
                               queue_limit=16, sla_s=0.05,
                               quota={"max_instructions": 50_000}),
        "gold-b": TenantPolicy(priority=0, rate=gold_rate * 1.5, burst=8.0,
                               queue_limit=16, sla_s=0.05,
                               quota={"max_instructions": 50_000}),
        # bronze-a's bucket admits well under what the fleet could run
        # for it (token-bucket throttling does its shedding); bronze-b's
        # bucket is generous, so its bounded queue does the shedding.
        # Together the two exercise both explicit rejection reasons.
        "bronze-a": TenantPolicy(priority=2, rate=0.2 * capacity / 5000,
                                 burst=16.0, queue_limit=8),
        "bronze-b": TenantPolicy(priority=2, rate=0.6 * capacity / 5000,
                                 burst=16.0, queue_limit=8),
    }
    loads = [
        TenantLoad("gold-a", rate=gold_rate, target_instructions=3000,
                   value=1),
        TenantLoad("gold-b", rate=gold_rate, target_instructions=3000,
                   value=2),
        TenantLoad("bronze-a", rate=bronze_offer,
                   target_instructions=5000, value=3),
        TenantLoad("bronze-b", rate=bronze_offer,
                   target_instructions=5000, value=4),
    ]
    offered = 2 * gold_rate * 3000 + 2 * bronze_offer * 5000
    return policies, loads, offered / capacity


def serving_point(lanes: int, duration: float, seed: int,
                  factor: float = 2.0) -> dict:
    """One overload serving run; returns the gated statistics."""
    policies, loads, offered_x = overload_fleet(lanes, factor)
    gateway = Gateway(policies, lanes=lanes, checkpoint_interval=2000,
                      seed=seed)
    results = run_loadgen(gateway, loads, duration, seed=seed)

    ok = [r for r in results if r.status == "ok"]
    shed = [r for r in results if r.status == "rejected"]
    reasons = {}
    for r in shed:
        reasons[r.reason] = reasons.get(r.reason, 0) + 1
    tenants = {}
    for tenant, policy in policies.items():
        latencies = [r.latency_s for r in ok if r.tenant == tenant]
        tenants[tenant] = {
            "priority": policy.priority,
            "sla_s": policy.sla_s,
            "completed": len(latencies),
            "p50_s": round(percentile(latencies, 50), 6),
            "p99_s": round(percentile(latencies, 99), 6),
        }
    completed_instructions = sum(r.instructions for r in ok)
    last_finish = max((r.finish_s for r in ok), default=duration)
    queue_bound = sum(p.queue_limit for p in policies.values())
    return {
        "lanes": lanes,
        "duration_vs": duration,
        "offered_x_capacity": round(offered_x, 3),
        "offered": len(results),
        "completed": len(ok),
        "shed": len(shed),
        "shed_reasons": dict(sorted(reasons.items())),
        "tenants": tenants,
        "completed_instructions": completed_instructions,
        "goodput_ipvs": round(completed_instructions / last_finish, 1),
        "peak_queued": gateway.peak_queued,
        "queue_bound": queue_bound,
    }


def drain_baseline(workers: int, jobs: int, target: int = 5000) -> dict:
    """The batch cluster's drain throughput at the same worker count.

    Virtual makespan = the largest per-worker emulated-cycle total
    (model=None ties cycles to instret), exactly as bench_scaling gates
    scale-out; throughput is instructions per virtual second at the
    serving clock.
    """
    from collections import defaultdict

    from repro.cluster import Cluster
    from repro.workloads.rtlib import busy_program as busy

    program = write_elf(compile_lfi(busy(1, target)).elf)
    with Cluster(workers=workers) as cluster:
        for _ in range(jobs):
            cluster.submit(program)
        results = cluster.drain()
    per_worker = defaultdict(int)
    total = 0
    for r in results:
        per_worker[r.diag["worker"]] += int(r.diag["cycles"])
        total += int(r.diag["instructions"])
    makespan = max(per_worker.values())
    return {
        "workers": workers,
        "jobs": jobs,
        "total_instructions": total,
        "makespan_cycles": makespan,
        "throughput_ipvs": round(total * CLOCK_HZ / makespan, 1),
    }


def reload_proof(seed: int) -> dict:
    """Reload policy onto a running guest; prove no restart happened."""
    policies = {"gold": TenantPolicy(priority=0, rate=40.0,
                                     quota={"max_instructions": 80_000})}
    gateway = Gateway(policies, lanes=1, checkpoint_interval=2000,
                      seed=seed)
    image = write_elf(compile_lfi(busy_program(9, 40_000)).elf)
    request = gateway.offer("gold", image, at=0.0)
    gateway.reload("gold", TenantPolicy(priority=0, rate=40.0,
                                        quota={"max_instructions": 60_000}),
                   token=1, at=0.011)
    result = gateway.drain()[0]
    applied = [line for line in gateway.log if " apply-policy " in line]
    return {
        "request": request,
        "applied_log": applied[0] if applied else None,
        "pid": result.pid,
        "slot": result.slot,
        "exit_code": result.exit_code,
        "status": result.status,
        "pid_slot_unchanged": bool(
            applied
            and f"pid={result.pid}" in applied[0]
            and f"slot={hex(result.slot)}" in applied[0]),
        "completed_clean": result.status == "ok"
        and result.exit_code == 9,
    }


# -- tier-1 smoke (small scale, the qualitative shape) -----------------------


def test_overload_sheds_bronze_keeps_gold_sla():
    point = serving_point(lanes=2, duration=0.25, seed=7)
    assert point["shed"] > 0, "2x load must shed"
    assert set(point["shed_reasons"]) <= {"throttled", "queue-full",
                                          "deadline"}
    for tenant, stats in point["tenants"].items():
        if stats["sla_s"] is not None and stats["completed"]:
            assert stats["p99_s"] <= stats["sla_s"], tenant
    assert point["peak_queued"] <= point["queue_bound"]


def test_reload_lands_on_running_guest():
    proof = reload_proof(seed=3)
    assert proof["pid_slot_unchanged"]
    assert proof["completed_clean"]


@pytest.mark.slow
def test_goodput_vs_drain_baseline():
    point = serving_point(lanes=2, duration=0.5, seed=11)
    baseline = drain_baseline(workers=2, jobs=40)
    assert point["goodput_ipvs"] >= 0.9 * baseline["throughput_ipvs"]


# -- gated CLI ---------------------------------------------------------------


def main(argv=None):
    import argparse
    import json
    import sys
    import time

    parser = argparse.ArgumentParser(
        description="Open-loop overload serving benchmark "
                    "(virtual-time gated)")
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1.0,
                        help="virtual seconds of offered load")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--factor", type=float, default=2.0,
                        help="offered load as a multiple of capacity")
    parser.add_argument("--baseline-jobs", type=int, default=160)
    parser.add_argument("--min-goodput-ratio", type=float, default=0.9)
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    point = serving_point(args.lanes, args.duration, args.seed,
                          args.factor)
    serve_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    baseline = drain_baseline(args.lanes, args.baseline_jobs)
    baseline_wall = time.perf_counter() - t0
    proof = reload_proof(args.seed)
    ratio = point["goodput_ipvs"] / baseline["throughput_ipvs"]

    print(f"offered {point['offered_x_capacity']:.2f}x capacity on "
          f"{args.lanes} lanes for {args.duration:g} virtual s: "
          f"{point['completed']} ok, {point['shed']} shed "
          f"{point['shed_reasons']}")
    for tenant in sorted(point["tenants"]):
        stats = point["tenants"][tenant]
        sla = (f"sla={stats['sla_s']:.3f}" if stats["sla_s"] is not None
               else "sla=-")
        print(f"  {tenant:<8} prio={stats['priority']} "
              f"ok={stats['completed']:>4} p50={stats['p50_s']:.6f} "
              f"p99={stats['p99_s']:.6f} {sla}")
    print(f"peak queued {point['peak_queued']} (bound "
          f"{point['queue_bound']}); goodput "
          f"{point['goodput_ipvs']:,.0f} i/vs vs drain "
          f"{baseline['throughput_ipvs']:,.0f} i/vs -> "
          f"ratio {ratio:.3f}")
    print(f"reload proof: {proof['applied_log']} -> pid/slot unchanged "
          f"{proof['pid_slot_unchanged']}, clean {proof['completed_clean']}")

    report = {
        "bench": "serving-overload",
        "clock_hz": CLOCK_HZ,
        "seed": args.seed,
        "serving": point,
        "drain_baseline": baseline,
        "goodput_ratio": round(ratio, 4),
        "reload_proof": proof,
        "wall_seconds": {"serving": round(serve_wall, 3),
                         "baseline": round(baseline_wall, 3)},
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    ok = True
    for tenant, stats in point["tenants"].items():
        if stats["sla_s"] is not None and stats["completed"] \
                and stats["p99_s"] > stats["sla_s"]:
            print(f"FAIL: {tenant} p99 {stats['p99_s']:.6f} > SLA "
                  f"{stats['sla_s']:.3f}", file=sys.stderr)
            ok = False
    for reason in ("throttled", "queue-full"):
        if not point["shed_reasons"].get(reason):
            print(f"FAIL: expected explicit {reason} rejections under "
                  f"overload", file=sys.stderr)
            ok = False
    if point["peak_queued"] > point["queue_bound"]:
        print(f"FAIL: peak queue {point['peak_queued']} exceeded bound "
              f"{point['queue_bound']}", file=sys.stderr)
        ok = False
    if ratio < args.min_goodput_ratio:
        print(f"FAIL: goodput ratio {ratio:.3f} < "
              f"{args.min_goodput_ratio}", file=sys.stderr)
        ok = False
    if not (proof["pid_slot_unchanged"] and proof["completed_clean"]):
        print("FAIL: reload proof did not hold", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Sandbox-count scaling: the paper's headline scalability claim (§1/§3).

LFI supports ~65,000 sandboxes in a 48-bit address space because slots are
4GiB-aligned and adjacent, page tables are never switched, and the
per-sandbox state is tiny (one table page + the loaded image).  These
benches exercise the mechanism at a scale the emulator can run — hundreds
of live sandboxes in one address space — and check the properties the
limit rests on:

* slot addresses cover the full 48-bit range (the 65,536th slot is
  addressable);
* spawn cost and per-sandbox memory stay flat as the count grows
  (sparse paging);
* round-robin execution across hundreds of sandboxes preserves isolation.
"""

import pytest

from repro.memory import MAX_SANDBOXES_48BIT, SANDBOX_SIZE, SandboxLayout
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


def tiny_program(value: int) -> str:
    return prologue() + f"    movz x0, #{value & 0xFFFF}\n" + rt_exit()


def test_address_space_math():
    """§3: 64Ki sandboxes in 48 bits, 128Ki with the kernel's half."""
    assert MAX_SANDBOXES_48BIT == 1 << 16
    last = SandboxLayout.for_slot(MAX_SANDBOXES_48BIT - 1)
    assert last.end == 1 << 48
    assert last.base % SANDBOX_SIZE == 0


def test_hundreds_of_sandboxes_run_isolated():
    runtime = Runtime(timeslice=500)
    count = 200
    elf = compile_lfi(tiny_program(0)).elf  # shared image, distinct slots
    procs = []
    for i in range(count):
        proc = runtime.spawn(compile_lfi(tiny_program(i % 251)).elf)
        procs.append(proc)
    runtime.run()
    assert [p.exit_code for p in procs] == [i % 251 for i in range(count)]
    bases = {p.layout.base for p in procs}
    assert len(bases) == count


def test_memory_stays_sparse():
    """Mapping N sandboxes materializes only the pages actually used."""
    runtime = Runtime()
    before = len(runtime.memory._pages)
    for i in range(64):
        runtime.spawn(compile_lfi(tiny_program(i)).elf)
    pages_per_sandbox = (len(runtime.memory._pages) - before) / 64
    # A 4GiB slot is 262,144 pages; we materialize well under 100.
    assert pages_per_sandbox < 100


def test_spawn_cost_flat():
    """The Nth spawn costs the same as the 1st (no global rescans)."""
    import time

    runtime = Runtime()
    elf_src = tiny_program(1)

    def spawn_batch(n):
        start = time.perf_counter()
        for _ in range(n):
            runtime.spawn(compile_lfi(elf_src).elf)
        return (time.perf_counter() - start) / n

    first = spawn_batch(20)
    runtime2 = Runtime()
    for _ in range(200):
        runtime2.spawn(compile_lfi(elf_src).elf)
    # Now spawn more into the already-populated runtime.
    start_slot = runtime2._next_slot
    import time as _t

    t0 = _t.perf_counter()
    for _ in range(20):
        runtime2.spawn(compile_lfi(elf_src).elf)
    late = (_t.perf_counter() - t0) / 20
    assert runtime2._next_slot == start_slot + 20
    assert late < first * 5  # flat-ish, not superlinear


def test_spawn_throughput_benchmark(benchmark):
    """pytest-benchmark: verified spawn into a fresh slot."""
    runtime = Runtime()
    elf = compile_lfi(tiny_program(3)).elf

    def spawn():
        return runtime.spawn(elf)

    proc = benchmark(spawn)
    assert proc.layout.base % SANDBOX_SIZE == 0


def test_context_switch_benchmark(benchmark):
    """pytest-benchmark: a full save/restore context switch."""
    runtime = Runtime()
    a = runtime.spawn(compile_lfi(tiny_program(1)).elf)
    b = runtime.spawn(compile_lfi(tiny_program(2)).elf)

    def switch():
        runtime._switch_to(a)
        runtime._save(a)
        runtime._switch_to(b)
        runtime._save(b)

    benchmark(switch)

"""Sandbox-count scaling: the paper's headline scalability claim (§1/§3).

LFI supports ~65,000 sandboxes in a 48-bit address space because slots are
4GiB-aligned and adjacent, page tables are never switched, and the
per-sandbox state is tiny (one table page + the loaded image).  These
benches exercise the mechanism at a scale the emulator can run — hundreds
of live sandboxes in one address space — and check the properties the
limit rests on:

* slot addresses cover the full 48-bit range (the 65,536th slot is
  addressable);
* spawn cost and per-sandbox memory stay flat as the count grows
  (sparse paging);
* round-robin execution across hundreds of sandboxes preserves isolation.
"""

import pytest

from repro.memory import MAX_SANDBOXES_48BIT, SANDBOX_SIZE, SandboxLayout
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.rtlib import prologue, rt_exit


def tiny_program(value: int) -> str:
    return prologue() + f"    movz x0, #{value & 0xFFFF}\n" + rt_exit()


def test_address_space_math():
    """§3: 64Ki sandboxes in 48 bits, 128Ki with the kernel's half."""
    assert MAX_SANDBOXES_48BIT == 1 << 16
    last = SandboxLayout.for_slot(MAX_SANDBOXES_48BIT - 1)
    assert last.end == 1 << 48
    assert last.base % SANDBOX_SIZE == 0


def test_hundreds_of_sandboxes_run_isolated():
    runtime = Runtime(timeslice=500)
    count = 200
    elf = compile_lfi(tiny_program(0)).elf  # shared image, distinct slots
    procs = []
    for i in range(count):
        proc = runtime.spawn(compile_lfi(tiny_program(i % 251)).elf)
        procs.append(proc)
    runtime.run()
    assert [p.exit_code for p in procs] == [i % 251 for i in range(count)]
    bases = {p.layout.base for p in procs}
    assert len(bases) == count


def test_memory_stays_sparse():
    """Mapping N sandboxes materializes only the pages actually used."""
    runtime = Runtime()
    before = len(runtime.memory._pages)
    for i in range(64):
        runtime.spawn(compile_lfi(tiny_program(i)).elf)
    pages_per_sandbox = (len(runtime.memory._pages) - before) / 64
    # A 4GiB slot is 262,144 pages; we materialize well under 100.
    assert pages_per_sandbox < 100


def test_spawn_cost_flat():
    """The Nth spawn costs the same as the 1st (no global rescans)."""
    import time

    runtime = Runtime()
    elf_src = tiny_program(1)

    def spawn_batch(n):
        start = time.perf_counter()
        for _ in range(n):
            runtime.spawn(compile_lfi(elf_src).elf)
        return (time.perf_counter() - start) / n

    first = spawn_batch(20)
    runtime2 = Runtime()
    for _ in range(200):
        runtime2.spawn(compile_lfi(elf_src).elf)
    # Now spawn more into the already-populated runtime.
    start_slot = runtime2._next_slot
    import time as _t

    t0 = _t.perf_counter()
    for _ in range(20):
        runtime2.spawn(compile_lfi(elf_src).elf)
    late = (_t.perf_counter() - t0) / 20
    assert runtime2._next_slot == start_slot + 20
    assert late < first * 5  # flat-ish, not superlinear


def test_spawn_throughput_benchmark(benchmark):
    """pytest-benchmark: verified spawn into a fresh slot."""
    runtime = Runtime()
    elf = compile_lfi(tiny_program(3)).elf

    def spawn():
        return runtime.spawn(elf)

    proc = benchmark(spawn)
    assert proc.layout.base % SANDBOX_SIZE == 0


def test_context_switch_benchmark(benchmark):
    """pytest-benchmark: a full save/restore context switch."""
    runtime = Runtime()
    a = runtime.spawn(compile_lfi(tiny_program(1)).elf)
    b = runtime.spawn(compile_lfi(tiny_program(2)).elf)

    def switch():
        runtime._switch_to(a)
        runtime._save(a)
        runtime._switch_to(b)
        runtime._save(b)

    benchmark(switch)


# ---------------------------------------------------------------------------
# Cluster scale-out CLI (DESIGN.md §11) — `python benchmarks/bench_scaling.py`
#
# CI machines expose a single CPU, so wall-clock cannot demonstrate
# multi-worker speedup honestly.  The gated figure is therefore the
# *virtual-time makespan*: each worker's emulated-cycle total is exact and
# deterministic (model=None ties cycles to instret), and the batch's
# makespan is the largest per-worker total.  Wall clock is recorded
# alongside for reference, never gated.

NOMINAL_HZ = 3.2e9  # nominal clock used to express cycles as seconds


def _cluster_point(workers, jobs, target, distinct):
    import time
    from collections import defaultdict

    from repro.cluster import Cluster
    from repro.elf.format import write_elf
    from repro.workloads.rtlib import busy_program

    programs = [
        write_elf(compile_lfi(busy_program(v % 256, target)).elf)
        for v in range(distinct)
    ]
    t0 = time.perf_counter()
    with Cluster(workers=workers) as cluster:
        for i in range(jobs):
            cluster.submit(programs[i % distinct])
        results = cluster.drain()
        fleet = cluster.fleet_report()
    wall_s = time.perf_counter() - t0
    per_worker = defaultdict(int)
    for r in results:
        per_worker[r.diag["worker"]] += int(r.diag["cycles"])
    makespan = max(per_worker.values())
    return {
        "workers": workers,
        "jobs": jobs,
        "total_cycles": sum(per_worker.values()),
        "makespan_cycles": makespan,
        "virtual_seconds": makespan / NOMINAL_HZ,
        "throughput_jobs_per_vsec": jobs / (makespan / NOMINAL_HZ),
        "wall_seconds": round(wall_s, 4),
        "warm_hits": fleet["warm_hits"],
        "restarts": fleet["restarts"],
    }


def _warm_spawn_point(repeats, target):
    """Cold parse+verify+load vs. warm snapshot-restore, per spawn."""
    import time

    from repro.cluster import WarmPool
    from repro.elf.format import write_elf
    from repro.workloads.rtlib import busy_program

    data = write_elf(compile_lfi(busy_program(1, target)).elf)

    cold_rt = Runtime()
    t0 = time.perf_counter()
    for _ in range(repeats):
        cold_rt.spawn(data)
    cold_us = (time.perf_counter() - t0) / repeats * 1e6

    warm_rt = Runtime()
    pool = WarmPool(warm_rt)
    pool.spawn(data)  # builds the template (the one cold-cost spawn)
    t0 = time.perf_counter()
    for _ in range(repeats):
        pool.spawn(data)
    warm_us = (time.perf_counter() - t0) / repeats * 1e6

    return {
        "repeats": repeats,
        "cold_spawn_us": round(cold_us, 2),
        "warm_spawn_us": round(warm_us, 2),
        "speedup": round(cold_us / warm_us, 2),
    }


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Cluster scale-out benchmark (virtual-time gated)")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts")
    parser.add_argument("--jobs", type=int, default=16)
    parser.add_argument("--target", type=int, default=20_000,
                        help="instructions per job")
    parser.add_argument("--distinct", type=int, default=4,
                        help="distinct images in the batch")
    parser.add_argument("--spawn-repeats", type=int, default=50)
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="min virtual-time speedup at max workers vs 1")
    parser.add_argument("--min-warm-speedup", type=float, default=3.0,
                        help="min warm-vs-cold spawn speedup")
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    counts = sorted({int(w) for w in args.workers.split(",")})
    series = [_cluster_point(w, args.jobs, args.target, args.distinct)
              for w in counts]
    warm = _warm_spawn_point(args.spawn_repeats, args.target)

    base = series[0]["makespan_cycles"]
    for point in series:
        point["speedup_vs_1"] = round(base / point["makespan_cycles"], 2)
        print(f"workers={point['workers']:2d}  "
              f"makespan={point['makespan_cycles']:>12,} cycles  "
              f"speedup={point['speedup_vs_1']:.2f}x  "
              f"wall={point['wall_seconds']:.2f}s  "
              f"warm_hits={point['warm_hits']}")
    print(f"spawn: cold={warm['cold_spawn_us']:.0f}us  "
          f"warm={warm['warm_spawn_us']:.0f}us  "
          f"speedup={warm['speedup']:.1f}x")

    report = {
        "bench": "cluster-scaling",
        "nominal_hz": NOMINAL_HZ,
        "series": series,
        "warm_spawn": warm,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    ok = True
    scale = series[-1]["speedup_vs_1"]
    if counts[0] == 1 and len(counts) > 1 and scale < args.min_speedup:
        print(f"FAIL: {counts[-1]}-worker speedup {scale:.2f}x "
              f"< {args.min_speedup}x", file=sys.stderr)
        ok = False
    if warm["speedup"] < args.min_warm_speedup:
        print(f"FAIL: warm-spawn speedup {warm['speedup']:.2f}x "
              f"< {args.min_warm_speedup}x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablations of LFI design choices (DESIGN.md §4).

Beyond the paper's figures, these benches isolate the contribution of the
individual mechanisms the paper describes:

* one vs two hoisting registers (§4.3: "the second register makes it
  possible to hoist two sets of redundant guards in the same basic
  block");
* the stack-pointer same-basic-block elision (§4.2);
* the Spectre/side-channel hardening policy (§7.1: disallow LL/SC at
  verification time) — a functionality knob, checked for cost neutrality
  on exclusive-free code.
"""

import pytest

from repro.core import O2, RewriteOptions, rewrite_program
from repro.arm64 import parse_assembly
from repro.emulator import APPLE_M1
from repro.perf import lfi_variant, run_variant
from repro.workloads import arena_bss_size, build_benchmark

from .conftest import TARGET

INTERLEAVED = """
ldr x0, [x1]
ldr x2, [x3, #8]
str x0, [x1, #8]
str x2, [x3, #16]
ldr x4, [x1, #16]
ldr x5, [x3, #24]
"""


class TestHoistRegisterAblation:
    def test_two_registers_beat_one_on_interleaved_runs(self):
        """§4.3's rationale for reserving a second hoisting register."""
        program = parse_assembly(INTERLEAVED)
        one = rewrite_program(program.copy(),
                              O2.with_(hoist_registers=1))
        two = rewrite_program(program.copy(),
                              O2.with_(hoist_registers=2))
        assert two.stats.hoisted_accesses > one.stats.hoisted_accesses
        assert two.stats.output_instructions < one.stats.output_instructions

    def test_zero_registers_equals_o1(self):
        from repro.core import O1

        program = parse_assembly(INTERLEAVED)
        none = rewrite_program(program.copy(), O2.with_(hoist_registers=0))
        o1 = rewrite_program(program.copy(), O1)
        assert none.stats.output_instructions == o1.stats.output_instructions

    def test_runtime_effect_on_benchmark(self):
        name = "519.lbm"  # the most hoisting-sensitive stand-in
        asm = build_benchmark(name, target_instructions=min(TARGET, 40_000))
        bss = arena_bss_size(name)
        cycles = {}
        for count in (0, 1, 2):
            variant = lfi_variant(O2.with_(hoist_registers=count),
                                  f"hoist{count}")
            cycles[count] = run_variant(asm, bss, variant, APPLE_M1).cycles
        print(f"\nhoisting ablation on {name}: "
              + ", ".join(f"{k} regs = {v:.0f}c" for k, v in cycles.items()))
        assert cycles[2] <= cycles[1] <= cycles[0]


class TestSpElisionAblation:
    def test_elision_saves_instructions(self):
        src = "sub sp, sp, #64\n str x0, [sp]\n add sp, sp, #64\n ret\n"
        on = rewrite_program(parse_assembly(src), O2)
        off = rewrite_program(parse_assembly(src),
                              O2.with_(sp_block_elision=False))
        assert on.stats.sp_guards_elided >= 1
        assert off.stats.sp_guards_elided == 0
        assert on.stats.output_instructions < off.stats.output_instructions

    def test_stack_heavy_benchmark_cost(self):
        name = "502.gcc"  # has a stack-heavy component
        asm = build_benchmark(name, target_instructions=min(TARGET, 40_000))
        bss = arena_bss_size(name)
        on = run_variant(asm, bss, lfi_variant(O2, "elide"), APPLE_M1)
        off = run_variant(
            asm, bss,
            lfi_variant(O2.with_(sp_block_elision=False), "noelide"),
            APPLE_M1,
        )
        assert on.cycles <= off.cycles


class TestSpectreHardeningAblation:
    def test_policy_free_on_exclusive_free_code(self):
        """Disallowing LL/SC costs nothing on code that never uses it."""
        name = "541.leela"
        asm = build_benchmark(name, target_instructions=min(TARGET, 40_000))
        bss = arena_bss_size(name)
        default = run_variant(asm, bss, lfi_variant(O2, "dflt"), APPLE_M1)
        hardened = run_variant(
            asm, bss,
            lfi_variant(O2.with_(allow_exclusives=False), "hard"),
            APPLE_M1,
        )
        assert hardened.cycles == pytest.approx(default.cycles, rel=1e-9)

    def test_policy_blocks_llsc_programs(self):
        from repro.core import RewriteError

        src = "ldxr x0, [x1]\n ret\n"
        with pytest.raises(RewriteError):
            rewrite_program(parse_assembly(src),
                            O2.with_(allow_exclusives=False))


def test_ablation_benchmark(benchmark):
    asm = build_benchmark("519.lbm", target_instructions=8000)
    bss = arena_bss_size("519.lbm")
    variant = lfi_variant(O2.with_(hoist_registers=1), "hoist1")

    def once():
        return run_variant(asm, bss, variant, APPLE_M1)

    metrics = benchmark(once)
    assert metrics.exit_code == 0

"""Runtime-transition benchmarks: fusion, chaining, and the batch ABI.

The PR-9 companion to ``bench_engines.py``.  Where that bench times whole
workloads end-to-end (compile + verify + spawn + run), this one isolates
the *transition* machinery the superblock engine accelerates:

* **transition latency** — a hot loop making one ``GETPID`` runtime call
  per trip.  Every trip crosses sandbox -> runtime -> sandbox, so the
  wall-clock ratio between the stepping interpreter and the superblock
  engine (fused springboards + block chaining + compiled blocks) is the
  speedup of the crossing itself.
* **batch amortization** — the same requests submitted one ``rtcall`` at
  a time versus a single ``RuntimeCall.BATCH`` buffer: one crossing for
  N requests.  Both the modeled cycles per request and the crossing
  count are deterministic, so this gate is noise-free.
* **Table-4 geomean** — every Table-4 kernel compiled once (LFI O2) and
  then *executed* under both engines; only ``run_until_exit`` is timed,
  matching the paper's methodology of reporting execution overhead.
  The committed gate is a >= 3.2x geomean (the PR-4 snapshot recorded
  2.58x with compile+spawn folded into the timed region).
* **equivalence** — the superblock fast paths must be invisible: final
  state, stdout, cycle totals, exported trace events, and the
  ``GuardProfiler`` attribution must be bit-identical to stepping.

All times are single-threaded host **CPU seconds** (``time.process_time``
with the cyclic GC paused during the timed region): shared-runner
scheduling bursts make wall-clock ratios swing by 1.5x run-to-run, while
the CPU time of this single-threaded emulator measures the same work
stably.  Architectural results (cycles, instructions) must repeat
bit-identically across repeats, which is asserted on every measurement.

Usable as a script producing ``BENCH_PR9.json`` (the CI ``bench-smoke``
job uploads it), as a pytest module (``-m transitions``), and via
``python -m benchmarks.bench_transitions``.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import time

import pytest

from repro import EngineConfig
from repro.core import O2
from repro.emulator import APPLE_M1
from repro.obs import GuardProfiler, Tracer
from repro.perf import lfi_variant
from repro.runtime import Runtime, RuntimeCall
from repro.toolchain import compile_lfi
from repro.workloads import WASM_SUBSET
from repro.workloads.rtlib import batch_block, prologue, rt_exit, rtcall
from repro.workloads.spec import arena_bss_size, build_benchmark

ENGINES = ("stepping", "superblock")

LFI = lfi_variant(O2, "LFI O2")


# -- programs -----------------------------------------------------------------


def call_loop(iterations: int) -> str:
    """One ``GETPID`` runtime call per loop trip; exits 0."""
    lo = iterations & 0xFFFF
    hi = (iterations >> 16) & 0xFFFF
    asm = prologue() + f"\tmovz x20, #{lo}\n"
    if hi:
        asm += f"\tmovk x20, #{hi}, lsl #16\n"
    asm += "loop:\n"
    asm += rtcall(RuntimeCall.GETPID)
    asm += "\tsub x20, x20, #1\n"
    asm += "\tcbnz x20, loop\n"
    asm += "\tmov x0, #0\n"
    return asm + rt_exit()


def individual_calls(count: int) -> str:
    """``count`` runtime calls submitted one crossing at a time."""
    return call_loop(count)


def batched_calls(count: int) -> str:
    """``count`` requests submitted through one ``BATCH`` crossing."""
    asm = prologue()
    asm += "\tadrp x19, arena\n\tadd x19, x19, :lo12:arena\n"
    asm += batch_block([(RuntimeCall.GETPID, [])] * count)
    asm += "\tmov x0, #0\n" + rt_exit()
    asm += ".bss\n.balign 64\narena:\n"
    asm += f"\t.skip {count * 64}\n"
    return asm


# -- measurement --------------------------------------------------------------


def _exec_run(elf, engine: str, repeat: int = 1, expect_exit: int = 0):
    """Best exec-only CPU seconds over ``repeat`` runs, plus counters.

    Compilation, verification, and spawning are engine-independent and
    excluded from the timed region: only ``run_until_exit`` is measured.
    Architectural results must repeat bit-identically.
    """
    best = math.inf
    seen = None
    counters = {}
    for _ in range(repeat):
        runtime = Runtime(model=APPLE_M1, engine=EngineConfig(kind=engine))
        proc = runtime.spawn(elf, verify=LFI.verify, policy=LFI.policy)
        gc.collect()
        gc.disable()
        try:
            t0 = time.process_time()
            code = runtime.run_until_exit(proc)
            best = min(best, time.process_time() - t0)
        finally:
            gc.enable()
        assert code == expect_exit, f"exited {code}, wanted {expect_exit}"
        machine = runtime.machine
        arch = (machine.instret, machine.cycles)
        assert seen is None or seen == arch, "non-deterministic run"
        seen = arch
        sb = getattr(machine, "_sb", None)
        counters = {
            "instructions": machine.instret,
            "cycles": machine.cycles,
            "fused_calls": sb.fused_calls if sb else 0,
            "chain_links": sb.chain_links if sb else 0,
            "compiled_blocks": sb.compiled_blocks if sb else 0,
        }
    counters["cpu_s"] = round(best, 6)
    return counters


def measure_transition_latency(iterations: int = 20_000, repeat: int = 5):
    """CPU seconds for the runtime-call hot loop under both engines."""
    elf = compile_lfi(call_loop(iterations), options=O2).elf
    rows = {e: _exec_run(elf, e, repeat=repeat) for e in ENGINES}
    for key in ("instructions", "cycles"):
        assert rows["stepping"][key] == rows["superblock"][key], \
            f"engines disagree on {key}"
    # ``fused_calls`` counts translate-time fusions (one per translated
    # call site), not per-crossing executions.
    assert rows["superblock"]["fused_calls"] > 0, \
        "the fused springboard never fired"
    return {
        "iterations": iterations,
        "stepping_cpu_s": rows["stepping"]["cpu_s"],
        "superblock_cpu_s": rows["superblock"]["cpu_s"],
        "speedup": rows["stepping"]["cpu_s"] / rows["superblock"]["cpu_s"],
        "cycles_per_call": rows["superblock"]["cycles"] / iterations,
        "fused_calls": rows["superblock"]["fused_calls"],
        "chain_links": rows["superblock"]["chain_links"],
        "compiled_blocks": rows["superblock"]["compiled_blocks"],
    }


def measure_batch_amortization(count: int = 64, repeat: int = 3):
    """One crossing for N requests vs N crossings for N requests.

    Cycles and crossing counts are emulated, hence deterministic: this
    section's gate never depends on host wall-clock noise.
    """
    single = compile_lfi(individual_calls(count), options=O2).elf
    batch = compile_lfi(batched_calls(count), options=O2).elf
    rows = {
        "individual": _exec_run(single, "superblock", repeat=repeat),
        "batched": _exec_run(batch, "superblock", repeat=repeat),
    }
    # +1 crossing each for the final EXIT call.
    crossings = {"individual": count + 1, "batched": 2}
    out = {}
    for kind, row in rows.items():
        out[kind] = {
            "cpu_s": row["cpu_s"],
            "cycles_per_request": row["cycles"] / count,
            "instructions_per_request": row["instructions"] / count,
            "crossings": crossings[kind],
        }
    out["cycles_amortization"] = (
        out["individual"]["cycles_per_request"]
        / out["batched"]["cycles_per_request"])
    out["crossing_amortization"] = (count + 1) / 2
    return out


def measure_table4(names=None, target: int = 60_000, repeat: int = 3):
    """Exec-only stepping/superblock ratio for every Table-4 kernel."""
    names = sorted(names or WASM_SUBSET)
    workloads = {}
    for name in names:
        asm = build_benchmark(name, target_instructions=target)
        elf = LFI.compile(asm, arena_bss_size(name))
        rows = {e: _exec_run(elf, e, repeat=repeat) for e in ENGINES}
        for key in ("instructions", "cycles"):
            assert rows["stepping"][key] == rows["superblock"][key], \
                f"{name}: engines disagree on {key}"
        workloads[name] = {
            "stepping_cpu_s": rows["stepping"]["cpu_s"],
            "superblock_cpu_s": rows["superblock"]["cpu_s"],
            "speedup": (rows["stepping"]["cpu_s"]
                        / rows["superblock"]["cpu_s"]),
            "instructions": rows["stepping"]["instructions"],
            "cycles": rows["stepping"]["cycles"],
            "compiled_blocks": rows["superblock"]["compiled_blocks"],
        }
    speedups = [w["speedup"] for w in workloads.values()]
    return {
        "target_instructions": target,
        "workloads": workloads,
        "geomean_speedup": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)),
    }


def check_equivalence(iterations: int = 400):
    """Trace + profiler + state parity between the engines.

    Runs the runtime-call loop four times: once per engine with a
    recording :class:`Tracer` attached, once per engine with a
    :class:`GuardProfiler` attached.  Every observable must match
    bit-for-bit (trace timestamps are emulated cycles).
    """
    elf = compile_lfi(call_loop(iterations), options=O2).elf

    def traced(engine):
        runtime = Runtime(model=APPLE_M1, engine=EngineConfig(kind=engine))
        tracer = Tracer(record=True).attach(runtime)
        proc = runtime.spawn(elf, verify=LFI.verify, policy=LFI.policy)
        code = runtime.run_until_exit(proc)
        tracer.detach()
        return {
            "exit": code,
            "stdout": runtime.stdout_of(proc),
            "cycles": runtime.machine.cycles,
            "instructions": runtime.machine.instret,
            "regs": runtime.machine.cpu.snapshot(),
            "events": tracer.events,
        }

    def profiled(engine):
        runtime = Runtime(model=APPLE_M1, engine=EngineConfig(kind=engine))
        profiler = GuardProfiler().attach(runtime)
        proc = runtime.spawn(elf, verify=LFI.verify, policy=LFI.policy)
        runtime.run_until_exit(proc)
        profiler.detach()
        return profiler.breakdown()

    traces = {e: traced(e) for e in ENGINES}
    assert traces["stepping"] == traces["superblock"], \
        "trace/state parity broken"
    breakdowns = {e: profiled(e) for e in ENGINES}
    assert breakdowns["stepping"] == breakdowns["superblock"], \
        "profiler attribution parity broken"
    return {
        "trace_events": len(traces["superblock"]["events"]),
        "trace_identical": True,
        "profiler_buckets": sorted(breakdowns["superblock"]),
        "profiler_identical": True,
    }


def measure_transitions(target: int = 60_000, repeat: int = 3,
                        iterations: int = 20_000):
    report = {
        "model": APPLE_M1.name,
        "transition": measure_transition_latency(iterations=iterations,
                                                 repeat=repeat + 2),
        "batch": measure_batch_amortization(repeat=repeat),
        "table4": measure_table4(target=target, repeat=repeat),
        "equivalence": check_equivalence(),
    }
    return report


# -- pytest entry points ------------------------------------------------------


@pytest.mark.transitions
def test_transition_latency_speedup():
    row = measure_transition_latency(iterations=4_000, repeat=2)
    assert row["speedup"] > 1.5


@pytest.mark.transitions
def test_batch_amortizes_crossings():
    row = measure_batch_amortization(repeat=1)
    assert row["crossing_amortization"] > 30
    assert row["cycles_amortization"] > 1.0


@pytest.mark.transitions
def test_trace_and_profiler_parity():
    result = check_equivalence(iterations=200)
    assert result["trace_identical"] and result["profiler_identical"]


@pytest.mark.transitions
def test_table4_exec_speedup():
    report = measure_table4(target=20_000, repeat=1)
    assert report["geomean_speedup"] > 1.5


# -- script entry point -------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="runtime-transition benchmarks (fusion/chaining/batch)")
    parser.add_argument("--target", type=int, default=60_000,
                        help="dynamic instructions per Table-4 run")
    parser.add_argument("--iterations", type=int, default=20_000,
                        help="runtime calls in the latency loop")
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-clock repeats (best is kept)")
    parser.add_argument("-o", "--out", default="BENCH_PR9.json")
    parser.add_argument("--min-transition-speedup", type=float, default=3.0,
                        help="fail unless the call-loop ratio beats this")
    parser.add_argument("--min-geomean", type=float, default=3.2,
                        help="fail unless the Table-4 geomean beats this")
    args = parser.parse_args(argv)
    report = measure_transitions(target=args.target, repeat=args.repeat,
                                 iterations=args.iterations)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    t = report["transition"]
    print(f"transition latency   {t['stepping_cpu_s']:>8.3f}s -> "
          f"{t['superblock_cpu_s']:>7.3f}s  {t['speedup']:>5.2f}x  "
          f"({t['fused_calls']} fused call sites, "
          f"{t['compiled_blocks']} compiled blocks)")
    b = report["batch"]
    print(f"batch amortization   {b['individual']['cycles_per_request']:>8.1f}"
          f" -> {b['batched']['cycles_per_request']:>7.1f} cycles/req  "
          f"{b['cycles_amortization']:>5.2f}x  "
          f"({b['crossing_amortization']:.1f}x fewer crossings)")
    print(f"{'workload':<16} {'stepping':>9} {'superblock':>10} {'speedup':>8}")
    for name, row in sorted(report["table4"]["workloads"].items()):
        print(f"{name:<16} {row['stepping_cpu_s']:>8.3f}s "
              f"{row['superblock_cpu_s']:>9.3f}s {row['speedup']:>7.2f}x")
    geomean = report["table4"]["geomean_speedup"]
    print(f"{'geomean':<16} {'':>9} {'':>10} {geomean:>7.2f}x")
    eq = report["equivalence"]
    print(f"equivalence          {eq['trace_events']} trace events and "
          f"{len(eq['profiler_buckets'])} profiler buckets bit-identical")

    failed = False
    if t["speedup"] < args.min_transition_speedup:
        print(f"FAILED: transition speedup {t['speedup']:.2f}x "
              f"< {args.min_transition_speedup}x")
        failed = True
    if geomean < args.min_geomean:
        print(f"FAILED: Table-4 geomean {geomean:.2f}x < {args.min_geomean}x")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 5: LFI vs hardware-assisted virtualization (QEMU/KVM) on M1.

KVM's guest code runs at native CPU speed but every TLB miss walks nested
page tables, doubling the walk cost (§6.4).  We run the native binaries
with the walk cost scaled by 2x and compare against LFI O2:

* KVM's overhead concentrates in the TLB-miss-heavy, large-working-set
  benchmarks (mcf, omnetpp, lbm, xz);
* cache-resident benchmarks are nearly free under KVM but not under LFI —
  the two systems' costs come from different places, which is the
  tradeoff Figure 5 illustrates.
"""

import pytest

from repro.core import O2
from repro.emulator import APPLE_M1
from repro.perf import (
    format_overhead_table,
    geomean,
    kvm_variant,
    lfi_variant,
)
from repro.workloads import SPEC_BENCHMARKS, benchmark_names

from .conftest import suite_overheads

VARIANTS = (kvm_variant("QEMU KVM"), lfi_variant(O2, "LFI"))
COLUMNS = [v.name for v in VARIANTS]


def test_fig5_kvm_vs_lfi():
    table = suite_overheads(benchmark_names(), VARIANTS, APPLE_M1)
    print()
    print(format_overhead_table(
        table, columns=COLUMNS,
        title="Figure 5 — LFI vs hardware-assisted virtualization, apple-m1",
    ))

    kvm = {b: row["QEMU KVM"] for b, row in table.items()}
    lfi = {b: row["LFI"] for b, row in table.items()}

    # KVM overhead is modest on average (paper: low single digits).
    assert 0.0 <= geomean(kvm.values()) < 10.0
    # KVM costs nothing without TLB pressure: its worst benchmarks are
    # the big-working-set ones.
    worst_kvm = sorted(kvm, key=kvm.get, reverse=True)[:5]
    big_ws = {
        name for name in kvm
        if SPEC_BENCHMARKS[name].working_set >= 8 * 1024 * 1024
    }
    assert set(worst_kvm) & big_ws, worst_kvm
    # On cache-resident code, KVM beats LFI; the reverse can hold under
    # TLB pressure — the tradeoff exists in at least one direction.
    assert any(kvm[b] < lfi[b] for b in kvm)


def test_fig5_kvm_overhead_tracks_tlb_pressure():
    """Doubling the walk cost only matters when walks happen."""
    table = suite_overheads(benchmark_names(), VARIANTS, APPLE_M1)
    kvm = {b: row["QEMU KVM"] for b, row in table.items()}
    small = [kvm[b] for b in kvm
             if SPEC_BENCHMARKS[b].working_set <= 2 * 1024 * 1024]
    large = [kvm[b] for b in kvm
             if SPEC_BENCHMARKS[b].working_set >= 16 * 1024 * 1024]
    assert geomean(small) <= geomean(large) + 0.5


def test_fig5_representative_run_benchmark(benchmark):
    from repro.perf import run_variant
    from repro.workloads import arena_bss_size, build_benchmark

    asm = build_benchmark("505.mcf", target_instructions=8000)
    bss = arena_bss_size("505.mcf")

    def once():
        return run_variant(asm, bss, VARIANTS[0], APPLE_M1)

    metrics = benchmark(once)
    assert metrics.exit_code == 0

"""Code-size overhead (paper §6.3).

The paper reports, for the LFI-supported SPEC subset:

* geomean text-segment increase: 12.9%;
* geomean overall-binary increase: 8.3%;
* WAMR (Wasm AOT) overall-binary increase on its subset: ~22%.

LFI's advantage comes from having *no alignment padding* (reserved
registers instead of bundling) plus the zero-instruction guards and
redundant guard elimination.  We regenerate the size table from the actual
rewriter output and check the bands and orderings.
"""

import pytest

from repro.baselines import WASM_ENGINES
from repro.baselines.wasm import wasm_rewrite
from repro.core import O0, O1, O2
from repro.perf import format_overhead_table, geomean
from repro.toolchain import compile_lfi, compile_native
from repro.workloads import WASM_SUBSET, benchmark_names, build_benchmark

from .conftest import TARGET

_SIZE_CACHE = {}


def size_row(name):
    if name not in _SIZE_CACHE:
        asm = build_benchmark(name, target_instructions=TARGET)
        native = compile_native(asm)
        lfi = compile_lfi(asm, options=O2)
        wamr = compile_native(wasm_rewrite(asm, WASM_ENGINES["wamr"]))
        _SIZE_CACHE[name] = {
            "native_text": native.text_size,
            "native_binary": native.binary_size,
            "LFI text": 100.0 * (lfi.text_size / native.text_size - 1),
            "LFI binary": 100.0 * (lfi.binary_size / native.binary_size - 1),
            "WAMR binary": 100.0 * (wamr.binary_size / native.binary_size - 1),
        }
    return _SIZE_CACHE[name]


def test_code_size_table():
    table = {
        name: {k: v for k, v in size_row(name).items()
               if k in ("LFI text", "LFI binary", "WAMR binary")}
        for name in benchmark_names()
    }
    print()
    print(format_overhead_table(
        table, columns=["LFI text", "LFI binary", "WAMR binary"],
        title="§6.3 — code size increase over native",
    ))
    text_mean = geomean([row["LFI text"] for row in table.values()])
    binary_mean = geomean([row["LFI binary"] for row in table.values()])
    # Paper: 12.9% text / 8.3% binary geomean.  Our drivers are smaller
    # than full SPEC programs, so allow a generous band around those.
    assert 4.0 < text_mean < 30.0, text_mean
    assert binary_mean <= text_mean + 0.5
    # Binary grows less than text (headers/data are unchanged).
    for name, row in table.items():
        assert row["LFI binary"] <= row["LFI text"] + 0.5, name


def test_wamr_size_overhead_larger_than_lfi():
    """Paper: WAMR's binary overhead (~22%) exceeds LFI's (~8%)."""
    lfi = []
    wamr = []
    for name in WASM_SUBSET:
        row = size_row(name)
        lfi.append(row["LFI binary"])
        wamr.append(row["WAMR binary"])
    assert geomean(lfi) < geomean(wamr)


def test_no_alignment_padding():
    """LFI adds no padding: size growth equals instructions inserted."""
    asm = build_benchmark("541.leela", target_instructions=TARGET)
    lfi = compile_lfi(asm, options=O2)
    stats = lfi.rewrite.stats
    native = compile_native(asm)
    assert lfi.text_size - native.text_size == 4 * stats.added_instructions


def test_higher_opt_levels_do_not_grow_code():
    """O2's hoisting reduces code size relative to O1 (§4.3)."""
    asm = build_benchmark("519.lbm", target_instructions=TARGET)
    sizes = {
        level.opt_level: compile_lfi(asm, options=level).text_size
        for level in (O0, O1, O2)
    }
    assert sizes[2] <= sizes[1]


def test_code_size_benchmark(benchmark):
    def measure():
        asm = build_benchmark("502.gcc", target_instructions=8000)
        return compile_lfi(asm, options=O2).text_size

    size = benchmark(measure)
    assert size > 0

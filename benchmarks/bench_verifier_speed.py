"""Verifier throughput (paper §5.2).

The paper's 300-line Rust verifier runs at ~34 MB/s and checks every SPEC
binary in under 0.3 seconds.  Ours is pure Python, so the absolute MB/s is
orders of magnitude lower (documented divergence, DESIGN.md §6); what we
verify here is the *structure*: a single linear pass whose cost is linear
in the text size, measured with pytest-benchmark.
"""

import time

import pytest

from repro.core import O2, Verifier, verify_text
from repro.toolchain import compile_lfi
from repro.workloads import benchmark_names, build_benchmark

from .conftest import TARGET


def _binary(name, target=None):
    asm = build_benchmark(name, target_instructions=target or TARGET)
    out = compile_lfi(asm, options=O2)
    return bytes(out.image.text.data), out.image.text.base


def test_verifier_throughput_report():
    total_bytes = 0
    total_seconds = 0.0
    print()
    for name in benchmark_names()[:6]:
        data, base = _binary(name)
        start = time.perf_counter()
        result = verify_text(data, base)
        elapsed = time.perf_counter() - start
        assert result.ok
        total_bytes += len(data)
        total_seconds += elapsed
    rate = total_bytes / total_seconds / 1e6
    print(f"§5.2 — verifier throughput: {rate:.3f} MB/s over "
          f"{total_bytes} bytes (paper's Rust core: ~34 MB/s)")
    assert rate > 0.01  # sanity: it completes at a measurable rate


def test_verifier_is_linear():
    """Doubling the text roughly doubles the verification time."""
    small, base = _binary("505.mcf", target=TARGET)
    # A longer build of the same benchmark: more static code via unrolled
    # driver calls is not available, so concatenate the text instead.
    big = small * 4

    def timed(data):
        start = time.perf_counter()
        verify_text(data, base)
        return time.perf_counter() - start

    t_small = min(timed(small) for _ in range(3))
    t_big = min(timed(big) for _ in range(3))
    assert t_big < t_small * 10  # linear-ish, not quadratic


def test_single_pass_instruction_count():
    data, base = _binary("508.namd")
    result = verify_text(data, base)
    assert result.ok
    assert result.instructions == len(data) // 4
    assert result.bytes_verified == len(data)


def test_verifier_throughput_benchmark(benchmark):
    data, base = _binary("541.leela", target=8000)
    verifier = Verifier()

    result = benchmark(verifier.verify_text, data, base)
    assert result.ok

"""Figure 3: LFI optimization-level overheads on the 14 SPEC stand-ins.

Regenerates both panels (GCP T2A and Apple M1): percent increase over
native runtime for LFI O0 / O1 / O2 / O2-no-loads, and checks the paper's
qualitative findings:

* the O0 -> O1 jump is the big one (zero-instruction guards, §6.1);
* O2 (redundant guard elimination) improves on O1 by a small amount;
* full isolation lands in single-digit geomean territory (paper: 6.4% M1,
  7.3% T2A);
* "no loads" cuts overhead dramatically (paper: ~1%).
"""

import pytest

from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf import format_overhead_table, geomean
from repro.workloads import benchmark_names

from .conftest import LFI_LEVELS, overheads_for, suite_overheads


@pytest.mark.parametrize("model", [GCP_T2A, APPLE_M1], ids=lambda m: m.name)
def test_fig3_overheads(model):
    table = suite_overheads(benchmark_names(), LFI_LEVELS, model)
    print()
    print(format_overhead_table(
        table,
        columns=[v.name for v in LFI_LEVELS],
        title=f"Figure 3 — overhead over native runtime, {model.name}",
    ))

    means = {
        v.name: geomean([table[b][v.name] for b in table])
        for v in LFI_LEVELS
    }
    # The optimization-level ordering of §6.1.
    assert means["LFI O0"] > means["LFI O1"] >= means["LFI O2"]
    assert means["LFI O2, no loads"] < means["LFI O2"]
    # The O0->O1 jump is the dominant one.
    assert (means["LFI O0"] - means["LFI O1"]) > (
        means["LFI O1"] - means["LFI O2"]
    )
    # Full isolation stays in the single-digit band the paper reports.
    assert 2.0 < means["LFI O2"] < 12.0
    # Store-only isolation is cheap (paper: around 1%).
    assert means["LFI O2, no loads"] < 4.0
    # Every benchmark individually: O0 is never cheaper than O2.
    for bench, row in table.items():
        assert row["LFI O0"] >= row["LFI O2"] - 0.5, bench


def test_fig3_worst_case_is_search_code():
    """leela (branchy unhoistable search) is at or near the worst case."""
    table = suite_overheads(benchmark_names(), LFI_LEVELS, APPLE_M1)
    o2 = {b: row["LFI O2"] for b, row in table.items()}
    worst = sorted(o2, key=o2.get, reverse=True)[:4]
    assert "541.leela" in worst, o2


def test_fig3_streaming_fp_is_cheap():
    """lbm (streaming FP) lands well below the geomean, as in the paper."""
    table = suite_overheads(benchmark_names(), LFI_LEVELS, APPLE_M1)
    mean = geomean([row["LFI O2"] for row in table.values()])
    assert table["519.lbm"]["LFI O2"] < mean + 1.0


def test_fig3_representative_run_benchmark(benchmark):
    """pytest-benchmark hook: time one representative simulation."""
    from repro.core import O2
    from repro.perf import lfi_variant, run_variant
    from repro.workloads import arena_bss_size, build_benchmark

    asm = build_benchmark("541.leela", target_instructions=8000)
    bss = arena_bss_size("541.leela")
    variant = lfi_variant(O2, "LFI O2")

    def once():
        return run_variant(asm, bss, variant, APPLE_M1)

    metrics = benchmark(once)
    assert metrics.exit_code == 0

"""Stepping vs superblock engine: wall-clock speedup + equivalence gate.

Runs every Table-4 workload (the WASM_SUBSET kernels) under the stepping
interpreter and the superblock engine (DESIGN.md §10) and reports, per
workload:

* host wall-clock seconds for each engine (best of ``--repeat``);
* the speedup ratio (stepping / superblock);
* the *emulated* LFI-vs-native overhead percentage, which must come out
  bit-identical under both engines — the architectural-equivalence gate.

Usable three ways: as a script producing ``BENCH_PR4.json`` (the CI
``bench-smoke`` job and the committed snapshot), as a pytest module (the
equivalence assertions), and from ``python -m benchmarks.bench_engines``.
"""

from __future__ import annotations

import argparse
import json
import math
import time

from repro.core import O2
from repro.emulator import APPLE_M1
from repro.perf import geomean, lfi_variant, native_variant, run_variant
from repro.workloads import WASM_SUBSET
from repro.workloads.spec import arena_bss_size, build_benchmark

ENGINES = ("stepping", "superblock")


def _timed_run(asm, bss, variant, engine, repeat):
    """(best wall-clock seconds, RunMetrics) over ``repeat`` runs."""
    best = math.inf
    metrics = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        m = run_variant(asm, bss, variant, APPLE_M1, engine=engine)
        best = min(best, time.perf_counter() - t0)
        if metrics is not None:
            # Architectural equivalence across repeats of one engine.
            assert (m.instructions, m.cycles) \
                == (metrics.instructions, metrics.cycles)
        metrics = m
    return best, metrics


def measure_engines(names=None, target: int = 60_000, repeat: int = 2):
    """The full comparison table; raises if the engines ever disagree."""
    names = sorted(names or WASM_SUBSET)
    lfi = lfi_variant(O2, "LFI O2")
    native = native_variant()
    workloads = {}
    for name in names:
        asm = build_benchmark(name, target_instructions=target)
        bss = arena_bss_size(name)
        row = {}
        for variant in (native, lfi):
            per_engine = {}
            for engine in ENGINES:
                wall, metrics = _timed_run(asm, bss, variant, engine, repeat)
                per_engine[engine] = {
                    "wall_s": round(wall, 6),
                    "instructions": metrics.instructions,
                    "cycles": metrics.cycles,
                }
            # The equivalence gate: identical architectural results.
            for key in ("instructions", "cycles"):
                assert per_engine["stepping"][key] \
                    == per_engine["superblock"][key], \
                    f"{name}/{variant.name}: engines disagree on {key}"
            row[variant.name] = per_engine
        overheads = {
            engine: 100.0 * (row["LFI O2"][engine]["cycles"]
                             - row["native"][engine]["cycles"])
            / row["native"][engine]["cycles"]
            for engine in ENGINES
        }
        assert overheads["stepping"] == overheads["superblock"]
        workloads[name] = {
            "stepping_wall_s": sum(
                row[v][ "stepping"]["wall_s"] for v in row),
            "superblock_wall_s": sum(
                row[v]["superblock"]["wall_s"] for v in row),
            "speedup": (
                sum(row[v]["stepping"]["wall_s"] for v in row)
                / sum(row[v]["superblock"]["wall_s"] for v in row)
            ),
            "overhead_pct": overheads["superblock"],
            "detail": row,
        }
    speedups = [w["speedup"] for w in workloads.values()]
    return {
        "model": APPLE_M1.name,
        "target_instructions": target,
        "workloads": workloads,
        "geomean_speedup": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)),
        "geomean_overhead_pct": geomean(
            [w["overhead_pct"] for w in workloads.values()]),
    }


# -- pytest entry points ------------------------------------------------------


def test_engines_agree_and_superblock_wins():
    report = measure_engines(target=20_000, repeat=1)
    # Equivalence is asserted inside measure_engines; here the perf gate.
    assert report["geomean_speedup"] > 1.5


# -- script entry point -------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="stepping vs superblock engine comparison")
    parser.add_argument("--target", type=int, default=60_000,
                        help="dynamic instructions per workload run")
    parser.add_argument("--repeat", type=int, default=2,
                        help="wall-clock repeats (best is kept)")
    parser.add_argument("-o", "--out", default="BENCH_PR4.json")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail unless the geomean beats this ratio")
    args = parser.parse_args(argv)
    report = measure_engines(target=args.target, repeat=args.repeat)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"{'workload':<16} {'stepping':>9} {'superblock':>10} "
          f"{'speedup':>8} {'overhead':>9}")
    for name, row in sorted(report["workloads"].items()):
        print(f"{name:<16} {row['stepping_wall_s']:>8.3f}s "
              f"{row['superblock_wall_s']:>9.3f}s "
              f"{row['speedup']:>7.2f}x {row['overhead_pct']:>8.2f}%")
    print(f"{'geomean':<16} {'':>9} {'':>10} "
          f"{report['geomean_speedup']:>7.2f}x "
          f"{report['geomean_overhead_pct']:>8.2f}%")
    if report["geomean_speedup"] < args.min_speedup:
        print(f"FAILED: geomean speedup "
              f"{report['geomean_speedup']:.2f}x < {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

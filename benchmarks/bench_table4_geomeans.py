"""Table 4: geometric-mean overheads of the Figure-4 systems.

The paper's numbers for reference:

    System                 T2A     M1
    Wasmtime             47.0%  67.1%
    Wasm2c               40.7%  37.5%
    Wasm2c (no barrier)  21.5%  20.8%
    Wasm2c (pinned reg)  16.5%  15.7%
    WAMR                 22.3%  18.2%
    LFI                   7.3%   6.4%

We assert the ordering and the relative factors, not the absolute values
(DESIGN.md §2).
"""

import pytest

from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf import format_geomean_table, geomean, overhead_pct
from repro.workloads import WASM_SUBSET

from .bench_fig4_wasm import COLUMNS, VARIANTS
from .conftest import metrics_for, suite_overheads


@pytest.mark.parametrize("model", [GCP_T2A, APPLE_M1], ids=lambda m: m.name)
def test_table4_geomeans(model):
    table = suite_overheads(WASM_SUBSET, VARIANTS, model)
    print()
    print(format_geomean_table(
        table, columns=COLUMNS,
        title=f"Table 4 — geomean overhead over native, {model.name}",
    ))
    means = {c: geomean([table[b][c] for b in table]) for c in COLUMNS}

    # The Table-4 ordering among the Wasm2c family.
    assert means["wasm2c"] > means["wasm2c-nobarrier"] \
        > means["wasm2c-pinned"]
    # LFI is the cheapest system in the table, by a wide margin.
    cheapest = min(means, key=means.get)
    assert cheapest == "LFI"
    assert means["LFI"] < 12.0
    # The paper's headline: LFI has less than half the overhead of the
    # best-tuned Wasm configuration.
    best_wasm = min(v for k, v in means.items() if k != "LFI")
    assert means["LFI"] * 2 < best_wasm

    # The table's percentages are the one shared overhead_pct formula
    # applied to the raw cycle counts (no duplicated math anywhere).
    name = next(iter(table))
    result = metrics_for(name, VARIANTS, model)
    native = result["native"]
    for column in COLUMNS:
        assert table[name][column] == pytest.approx(
            overhead_pct(native.cycles, result[column].cycles)
        )


def test_table4_benchmark(benchmark):
    """Time the geomean computation itself (cheap; the runs are cached)."""
    table = suite_overheads(WASM_SUBSET, VARIANTS, APPLE_M1)

    def compute():
        return {
            c: geomean([table[b][c] for b in table]) for c in COLUMNS
        }

    means = benchmark(compute)
    assert means["LFI"] > 0

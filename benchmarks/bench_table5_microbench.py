"""Table 5: isolation-domain-switch microbenchmarks.

Paper's measurements for reference (ns):

                 Apple M1              GCP T2A
    benchmark   LFI   Linux          LFI   Linux   gVisor
    syscall      22     129           26     160    12019
    pipe         46    1504           48    2494    22899
    yield        17       -           18       -        -

LFI rows are *measured* in our runtime on the cycle model; Linux/gVisor
come from the documented hardware cost models (DESIGN.md §2).
"""

import math

import pytest

from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf import (
    measure_pipe_ns,
    measure_syscall_ns,
    measure_yield_ns,
    run_table5,
)

PAPER = {
    "apple-m1": {"syscall": (22, 129), "pipe": (46, 1504), "yield": (17,)},
    "gcp-t2a": {"syscall": (26, 160), "pipe": (48, 2494), "yield": (18,)},
}


@pytest.mark.parametrize("model", [APPLE_M1, GCP_T2A], ids=lambda m: m.name)
def test_table5_microbenchmarks(model):
    rows = run_table5(model)
    print()
    print(f"Table 5 — isolation switch latency, {model.name}")
    print(f"{'benchmark':10s} {'LFI':>9s} {'Linux':>10s} {'gVisor':>11s}")
    for row in rows.values():
        linux = f"{row.linux_ns:9.0f}ns" if not math.isnan(row.linux_ns) \
            else "        -"
        gvisor = f"{row.gvisor_ns:10.0f}ns" if not math.isnan(row.gvisor_ns) \
            else "         -"
        print(f"{row.benchmark:10s} {row.lfi_ns:8.1f}ns {linux} {gvisor}")

    syscall, pipe, yld = rows["syscall"], rows["pipe"], rows["yield"]

    # LFI's syscall beats Linux's by the paper's ~6x factor.
    assert syscall.lfi_ns * 4 < syscall.linux_ns
    # The pipe advantage is even larger (paper: >30x).
    assert pipe.lfi_ns * 20 < pipe.linux_ns
    # gVisor is orders of magnitude slower still.
    assert syscall.gvisor_ns > 20 * syscall.linux_ns
    # The direct yield is the fastest switch of all — and far below the
    # ~400-cycle hardware-protection IPC floor the paper cites (§6.4).
    assert yld.lfi_ns < syscall.lfi_ns
    hardware_ipc_floor_ns = 400 / model.freq_ghz
    assert yld.lfi_ns < hardware_ipc_floor_ns / 2

    # Absolute values land in the paper's ballpark (same order, within 3x).
    paper = PAPER[model.name]
    assert paper["syscall"][0] / 3 < syscall.lfi_ns < paper["syscall"][0] * 3
    assert paper["pipe"][0] / 3 < pipe.lfi_ns < paper["pipe"][0] * 3
    assert paper["yield"][0] / 3 < yld.lfi_ns < paper["yield"][0] * 3


def test_yield_costs_about_fifty_cycles():
    """§5.3: the optimized yield costs roughly 50 cycles."""
    ns = measure_yield_ns(APPLE_M1)
    cycles = ns * APPLE_M1.freq_ghz
    assert 25 < cycles < 100, cycles


def test_table5_syscall_benchmark(benchmark):
    result = benchmark(measure_syscall_ns, APPLE_M1, 50)
    assert result > 0


def test_table5_pipe_benchmark(benchmark):
    result = benchmark(measure_pipe_ns, APPLE_M1, 20)
    assert result > 0


def test_table5_yield_benchmark(benchmark):
    result = benchmark(measure_yield_ns, APPLE_M1, 50)
    assert result > 0

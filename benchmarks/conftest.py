"""Shared infrastructure for the experiment benchmarks.

Every table and figure of the paper's evaluation has one file here (see
DESIGN.md §4).  Each bench (a) regenerates the paper's rows/series and
prints them, (b) asserts the qualitative *shape* the paper reports, and
(c) times one representative simulation through pytest-benchmark.

Runs are cached per session so that e.g. Figure 4 and Table 4 share work.
Scale with ``REPRO_BENCH_TARGET`` (dynamic instructions per run; default
60000 — larger values amortize cold caches and sharpen the numbers,
EXPERIMENTS.md was produced with 150000).
"""

from __future__ import annotations

import os
from typing import Dict, Sequence, Tuple

import pytest

from repro.core import O0, O1, O2, O2_NO_LOADS
from repro.emulator import APPLE_M1, GCP_T2A
from repro.perf import (
    Variant,
    kvm_variant,
    lfi_variant,
    measure_benchmark,
    native_variant,
    wasm_variant,
)

TARGET = int(os.environ.get("REPRO_BENCH_TARGET", "60000"))

_CACHE: Dict[Tuple, Dict[str, float]] = {}


def metrics_for(name: str, variants: Sequence[Variant], model,
                target: int = None) -> Dict[str, object]:
    """Cached full measure_benchmark result (RunMetrics + overheads)."""
    target = target or TARGET
    key = (name, tuple(v.name for v in variants), model.name, target)
    if key not in _CACHE:
        _CACHE[key] = measure_benchmark(
            name, list(variants), model, target_instructions=target
        )
    return _CACHE[key]


def overheads_for(name: str, variants: Sequence[Variant], model,
                  target: int = None) -> Dict[str, float]:
    """Cached benchmark-vs-variants overhead row."""
    return metrics_for(name, variants, model, target)["overheads"]


def suite_overheads(names, variants, model, target=None):
    return {
        name: overheads_for(name, variants, model, target) for name in names
    }


LFI_LEVELS = (
    lfi_variant(O0, "LFI O0"),
    lfi_variant(O1, "LFI O1"),
    lfi_variant(O2, "LFI O2"),
    lfi_variant(O2_NO_LOADS, "LFI O2, no loads"),
)

MACHINES = (APPLE_M1, GCP_T2A)


@pytest.fixture(scope="session")
def bench_target():
    return TARGET

"""Checkpoint/restore cost model (DESIGN.md §12).

Crash recovery is only worth its keep if restoring from a checkpoint is
substantially cheaper than re-running the lost prefix, and periodic
checkpointing is only affordable if an incremental capture costs
O(dirty pages) rather than O(working set).  Both claims are gated here
on a Table-4 kernel:

* **restore vs. re-run** — restoring a job checkpointed halfway through
  a kernel must beat cold spawn + re-execution to the same point by at
  least 3x wall clock (the gap widens with the prefix length; halfway is
  the conservative midpoint);
* **incremental capture** — after the first full capture, a capture
  taken with only a handful of dirtied pages must copy only those pages
  and run measurably cheaper than the full capture.

The pytest half asserts the same two shapes at test-sized targets; the
CLI half (``python benchmarks/bench_checkpoint.py``) produces the gated
JSON artifact (``BENCH_PR6.json``).
"""

import time

import pytest

from repro.checkpoint import CheckpointSession, capture_job, restore_job
from repro.obs import MetricsHub, Tracer
from repro.runtime import Runtime
from repro.toolchain import compile_lfi
from repro.workloads.spec import arena_bss_size, build_benchmark

KERNEL = "505.mcf"  # pointer-chasing Table-4 kernel with a real working set


def _compile_kernel(target):
    out = compile_lfi(build_benchmark(KERNEL, target),
                      bss_size=arena_bss_size(KERNEL))
    return out.elf


def _observed_runtime(timeslice):
    runtime = Runtime(model=None, timeslice=timeslice)
    tracer = Tracer(record=False)
    tracer.attach(runtime)
    hub = MetricsHub()
    hub.attach(tracer, runtime)
    return runtime, hub


def _run_to(elf, point, timeslice):
    """Cold path: fresh runtime, spawn, execute ``point`` instructions."""
    runtime, hub = _observed_runtime(timeslice)
    t0 = time.perf_counter()
    proc = runtime.spawn(elf)
    finished = runtime.run_bounded(proc, point)
    return runtime, proc, hub, finished, time.perf_counter() - t0


def _restore_from(blob_ckpt, timeslice):
    """Warm path: fresh runtime, restore the checkpoint, ready to run."""
    runtime, hub = _observed_runtime(timeslice)
    t0 = time.perf_counter()
    proc = restore_job(runtime, blob_ckpt, hub)
    return runtime, proc, hub, time.perf_counter() - t0


def _point(target, timeslice, repeats):
    """One benchmark point: checkpoint halfway, race restore vs. re-run."""
    elf = _compile_kernel(target)

    runtime, proc, hub, finished, _ = _run_to(elf, target // 2, timeslice)
    assert not finished, "halfway point must pause, not finish"
    session = CheckpointSession(runtime, proc, hub)
    t0 = time.perf_counter()
    full = session.capture(consumed_instructions=proc.instructions,
                           consumed_cycles=runtime.machine.cycles)
    full_capture_s = time.perf_counter() - t0

    # Dirty a small suffix of the working set and capture incrementally.
    runtime.run_bounded(proc, timeslice)
    t0 = time.perf_counter()
    incr = session.capture(consumed_instructions=proc.instructions,
                           consumed_cycles=runtime.machine.cycles)
    incr_capture_s = time.perf_counter() - t0

    cold_s = min(_run_to(elf, target // 2, timeslice)[4]
                 for _ in range(repeats))
    restore_s = min(_restore_from(full, timeslice)[3]
                    for _ in range(repeats))

    # The restored runtime must actually be the same program state:
    # finish both and compare results.
    r_rt, r_proc, _, _ = _restore_from(full, timeslice)
    r_rt.run()
    runtime2, proc2, _, _, _ = _run_to(elf, target * 4, timeslice)
    assert (r_proc.exit_code, r_rt.stdout_of(r_proc)) == \
        (proc2.exit_code, runtime2.stdout_of(proc2))

    return {
        "kernel": KERNEL,
        "target_instructions": target,
        "checkpoint_instructions": target // 2,
        "pages": full.total_pages,
        "bytes": len(full.to_bytes()),
        "cold_rerun_s": round(cold_s, 6),
        "restore_s": round(restore_s, 6),
        "restore_speedup": round(cold_s / restore_s, 2),
        "full_capture_s": round(full_capture_s, 6),
        "incr_capture_s": round(incr_capture_s, 6),
        "full_dirty_pages": full.dirty_pages,
        "incr_dirty_pages": incr.dirty_pages,
        "incr_capture_speedup": round(full_capture_s / incr_capture_s, 2),
    }


# -- pytest gates ----------------------------------------------------------


@pytest.fixture(scope="module")
def halfway():
    target = 40_000
    elf = _compile_kernel(target)
    runtime, proc, hub, finished, cold_s = _run_to(elf, target // 2, 1_000)
    assert not finished
    return elf, runtime, proc, hub, cold_s


def test_restore_beats_rerun(halfway):
    """Restoring a halfway checkpoint is >=3x cheaper than re-running."""
    elf, runtime, proc, hub, _ = halfway
    ckpt = capture_job(runtime, proc, hub,
                       consumed_instructions=proc.instructions)
    cold_s = min(_run_to(elf, 20_000, 1_000)[4] for _ in range(3))
    restore_s = min(_restore_from(ckpt, 1_000)[3] for _ in range(3))
    assert cold_s / restore_s >= 3.0


def test_incremental_capture_tracks_dirty_pages(halfway):
    """The second capture copies only pages the guest wrote in between."""
    elf, runtime, proc, hub, _ = halfway
    session = CheckpointSession(runtime, proc, hub)
    full = session.capture(consumed_instructions=proc.instructions)
    runtime.run_bounded(proc, 1_000)
    incr = session.capture(consumed_instructions=proc.instructions)
    assert full.dirty_pages == full.total_pages  # first capture: all pages
    assert 0 < incr.dirty_pages < incr.total_pages
    # Clean pages are shared by identity, not recopied.
    shared = sum(1 for key in full.pages
                 if incr.pages.get(key) is full.pages[key])
    assert shared == incr.total_pages - incr.dirty_pages


def test_capture_benchmark(benchmark, halfway):
    """pytest-benchmark: one incremental capture of a paused kernel."""
    _, runtime, proc, hub, _ = halfway
    session = CheckpointSession(runtime, proc, hub)
    session.capture(consumed_instructions=proc.instructions)
    ckpt = benchmark(session.capture,
                     consumed_instructions=proc.instructions)
    assert ckpt.total_pages > 0


# -- gated CLI -------------------------------------------------------------


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Checkpoint/restore cost benchmark (wall-clock gated)")
    parser.add_argument("--target", type=int, default=60_000,
                        help="dynamic instructions for the kernel run")
    parser.add_argument("--timeslice", type=int, default=1_000)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (min is reported)")
    parser.add_argument("--min-restore-speedup", type=float, default=3.0,
                        help="min restore-vs-rerun speedup at halfway")
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    point = _point(args.target, args.timeslice, args.repeats)
    print(f"kernel={point['kernel']}  "
          f"checkpoint@{point['checkpoint_instructions']:,} insts  "
          f"{point['pages']} pages  {point['bytes']:,} bytes")
    print(f"cold re-run:  {point['cold_rerun_s'] * 1e3:8.2f} ms")
    print(f"restore:      {point['restore_s'] * 1e3:8.2f} ms  "
          f"({point['restore_speedup']:.1f}x)")
    print(f"full capture: {point['full_capture_s'] * 1e3:8.2f} ms  "
          f"({point['full_dirty_pages']} dirty pages)")
    print(f"incr capture: {point['incr_capture_s'] * 1e3:8.2f} ms  "
          f"({point['incr_dirty_pages']} dirty pages, "
          f"{point['incr_capture_speedup']:.1f}x cheaper)")

    report = {"bench": "checkpoint-restore", "point": point}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    ok = True
    if point["restore_speedup"] < args.min_restore_speedup:
        print(f"FAIL: restore speedup {point['restore_speedup']:.2f}x "
              f"< {args.min_restore_speedup}x", file=sys.stderr)
        ok = False
    if point["incr_dirty_pages"] >= point["full_dirty_pages"]:
        print("FAIL: incremental capture did not shrink the dirty set",
              file=sys.stderr)
        ok = False
    if point["incr_capture_s"] >= point["full_capture_s"]:
        print("FAIL: incremental capture not cheaper than full capture",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Spectre hardening ablations: leakage matrix, overhead, and code size.

Three gates over the hardened rewriter levels of DESIGN.md §16:

* **leakage** — every gallery attack (Spectre-PHT, Spectre-RSB) must
  recover the planted secrets with nonzero transient leakage at the
  unhardened levels (O0/O1/O2) and leak *exactly zero* under both
  hardened levels (O2-fence, O2-mask);
* **overhead** — the emulated cycle overhead of the hardened levels over
  native, per Table-4 workload under the M1 cost model, gated on the
  geomean staying below ``--max-fence-overhead`` / ``--max-mask-overhead``;
* **code size** — static expansion from the extra ``dsb``/``csinv``/
  ``bic`` instructions, recorded per workload with the hardened guard
  counters (``fence_guards``, ``mask_guards``, ``demoted_returns``).

Usable three ways: as a script producing ``BENCH_PR10.json`` (the CI
``spectre-smoke`` job and the committed snapshot), as a pytest module,
and from ``python -m benchmarks.bench_spectre_ablations``.
"""

from __future__ import annotations

import argparse
import json

from repro.core import O0, O1, O2, O2_FENCE, O2_MASK
from repro.emulator import APPLE_M1
from repro.engine import SpeculationConfig
from repro.perf import geomean, lfi_variant, native_variant, run_variant
from repro.toolchain import compile_lfi
from repro.workloads import WASM_SUBSET
from repro.workloads.spec import arena_bss_size, build_benchmark
from repro.workloads.spectre import ATTACKS, measure_attack

UNHARDENED = (("O0", O0), ("O1", O1), ("O2", O2))
HARDENED = (("O2-fence", O2_FENCE), ("O2-mask", O2_MASK))


def measure_leakage(seed: int = 0):
    """The full attack x level matrix; raises on any gate violation."""
    spec = SpeculationConfig(seed=seed)
    matrix = {}
    for attack in sorted(ATTACKS):
        row = {}
        for label, options in UNHARDENED + HARDENED:
            result = measure_attack(attack, options=options, speculation=spec)
            row[label] = {
                "leakage": result.leakage,
                "recovered": list(result.recovered),
                "secrets": list(result.secrets),
                "windows": [len(log.windows) for log in result.logs],
                "mispredicts": [log.mispredicts for log in result.logs],
            }
            if options in (O2_FENCE, O2_MASK):
                assert result.leakage == 0, \
                    f"{attack}/{label}: hardened level leaks " \
                    f"({result.leakage} trace divergences)"
            else:
                assert result.leakage > 0, \
                    f"{attack}/{label}: attack no longer leaks"
                assert result.recovered == result.secrets, \
                    f"{attack}/{label}: recovered {result.recovered}, " \
                    f"planted {result.secrets}"
        matrix[attack] = row
    return matrix


def measure_overhead(names=None, target: int = 60_000):
    """Emulated cycle overhead of O2 vs the hardened levels, per workload."""
    names = sorted(names or WASM_SUBSET)
    variants = [native_variant(), lfi_variant(O2, "O2"),
                lfi_variant(O2_FENCE, "O2-fence"),
                lfi_variant(O2_MASK, "O2-mask")]
    workloads = {}
    for name in names:
        asm = build_benchmark(name, target_instructions=target)
        bss = arena_bss_size(name)
        cycles = {
            v.name: run_variant(asm, bss, v, APPLE_M1).cycles
            for v in variants
        }
        base = cycles["native"]
        workloads[name] = {
            v.name: 100.0 * (cycles[v.name] - base) / base
            for v in variants if v.name != "native"
        }
    levels = ("O2", "O2-fence", "O2-mask")
    return {
        "model": APPLE_M1.name,
        "target_instructions": target,
        "workloads": workloads,
        "geomean": {
            level: geomean([row[level] for row in workloads.values()])
            for level in levels
        },
    }


def measure_code_size(names=None, target: int = 60_000):
    """Static expansion and hardened-guard counters, per workload."""
    names = sorted(names or WASM_SUBSET)
    levels = (("O2", O2), ("O2-fence", O2_FENCE), ("O2-mask", O2_MASK))
    workloads = {}
    for name in names:
        asm = build_benchmark(name, target_instructions=target)
        row = {}
        for label, options in levels:
            stats = compile_lfi(asm, options=options).rewrite.stats
            row[label] = {
                "input_instructions": stats.input_instructions,
                "output_instructions": stats.output_instructions,
                "added_instructions": stats.added_instructions,
                "code_size_overhead_pct": 100.0 * stats.code_size_overhead,
                "fence_guards": stats.fence_guards,
                "mask_guards": stats.mask_guards,
                "demoted_returns": stats.demoted_returns,
            }
        # The hardened levels only ever *add* instructions over O2.
        for label in ("O2-fence", "O2-mask"):
            assert row[label]["output_instructions"] \
                >= row["O2"]["output_instructions"], \
                f"{name}/{label}: hardened output shrank below O2"
        workloads[name] = row
    return {
        "workloads": workloads,
        "geomean_overhead_pct": {
            label: geomean([
                max(row[label]["code_size_overhead_pct"], 1e-9)
                for row in workloads.values()])
            for label, _ in levels
        },
    }


def measure_ablations(names=None, target: int = 60_000, seed: int = 0):
    spec = SpeculationConfig(seed=seed)
    return {
        "bench": "spectre_ablations",
        "leakage": measure_leakage(seed=seed),
        "overhead": measure_overhead(names, target=target),
        "code_size": measure_code_size(names, target=target),
        "speculation": {
            "seed": spec.seed,
            "window": spec.window,
            "pht_entries": spec.pht_entries,
            "rsb_depth": spec.rsb_depth,
        },
    }


# -- pytest entry points ------------------------------------------------------


def test_hardened_levels_contain_the_gallery():
    report = measure_ablations(target=20_000)
    # Leakage gates are asserted inside measure_leakage; here the perf
    # gates: hardening costs something, but not the farm.
    overheads = report["overhead"]["geomean"]
    assert overheads["O2"] < overheads["O2-fence"] <= 80.0
    assert overheads["O2"] < overheads["O2-mask"] <= 100.0


# -- script entry point -------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Spectre hardening ablations: leakage/overhead/code size")
    parser.add_argument("--target", type=int, default=60_000,
                        help="dynamic instructions per workload run")
    parser.add_argument("--seed", type=int, default=0,
                        help="branch-predictor seed for the attack runs")
    parser.add_argument("-o", "--out", default="BENCH_PR10.json")
    parser.add_argument("--max-fence-overhead", type=float, default=80.0,
                        help="fail if the O2-fence geomean exceeds this pct")
    parser.add_argument("--max-mask-overhead", type=float, default=100.0,
                        help="fail if the O2-mask geomean exceeds this pct")
    args = parser.parse_args(argv)

    report = measure_ablations(target=args.target, seed=args.seed)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    levels = [label for label, _ in UNHARDENED + HARDENED]
    print(f"{'attack':<8}" + "".join(f" {level:>10}" for level in levels))
    for attack, row in sorted(report["leakage"].items()):
        print(f"{attack:<8}" + "".join(
            f" {row[level]['leakage']:>10}" for level in levels))

    print(f"\n{'workload':<16} {'O2':>8} {'O2-fence':>9} {'O2-mask':>8}")
    for name, row in sorted(report["overhead"]["workloads"].items()):
        print(f"{name:<16} {row['O2']:>7.2f}% {row['O2-fence']:>8.2f}% "
              f"{row['O2-mask']:>7.2f}%")
    over = report["overhead"]["geomean"]
    size = report["code_size"]["geomean_overhead_pct"]
    print(f"{'geomean':<16} {over['O2']:>7.2f}% {over['O2-fence']:>8.2f}% "
          f"{over['O2-mask']:>7.2f}%")
    print(f"{'code size':<16} {size['O2']:>7.2f}% {size['O2-fence']:>8.2f}% "
          f"{size['O2-mask']:>7.2f}%")

    failed = []
    if over["O2-fence"] > args.max_fence_overhead:
        failed.append(f"O2-fence geomean {over['O2-fence']:.2f}% "
                      f"> {args.max_fence_overhead}%")
    if over["O2-mask"] > args.max_mask_overhead:
        failed.append(f"O2-mask geomean {over['O2-mask']:.2f}% "
                      f"> {args.max_mask_overhead}%")
    for line in failed:
        print(f"FAILED: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
